"""Sharded multi-process serving: one worker process per core.

The single-process :class:`~repro.serve.server.AirFingerServer` saturates
around one core of pipeline work (the load generator measures
sessions/core); past that, scale is horizontal.  This module runs **N
worker processes**, each with its own event loop, session manager,
metrics registry and telemetry plane, and a parent-side
:class:`FleetControlServer` that makes the fleet look like one server:

* **Routing is shard-by-tenant**: :func:`shard_for_tenant` hashes the
  tenant id with CRC-32 (``zlib.crc32`` — Python's builtin ``hash`` is
  salted per process, so it must never pick a shard) onto a stable
  worker, keeping a tenant's sessions co-resident.  Where the platform
  has ``SO_REUSEPORT`` the workers can instead share one port and let
  the kernel balance raw connections; the port-per-shard listing in the
  control server's ``hello_ack`` is the portable fallback and the only
  mode in which tenant affinity holds.
* **Observability is merged**: the control server polls every worker's
  ``stats`` over the ordinary wire protocol, merges the per-shard
  :class:`~repro.obs.metrics.MetricsSnapshot`\\ s (additive counters and
  histograms; gauges last-writer-wins except the additive set below),
  and feeds the merged view to its own
  :class:`~repro.obs.telemetry.TelemetryPlane` — so ``airfinger top``,
  the SLO burn-rate alerter and ``watch`` subscribers see the fleet as
  one registry.  Control-plane sessions appear under tenant ``_fleet``.
* **Sessions migrate**: :meth:`ShardCluster.migrate` checkpoints a live
  session off one worker and restores it on another (see
  :mod:`repro.serve.checkpoint`) with zero lost events.
"""

from __future__ import annotations

import asyncio
import contextlib
import multiprocessing
import socket
import time
import zlib
from dataclasses import dataclass, field

from repro.obs.metrics import MetricsRegistry, MetricsSnapshot, set_registry
from repro.obs.telemetry import TelemetryPlane
from repro.serve import protocol
from repro.serve.client import ServeClient
from repro.serve.server import AirFingerServer
from repro.serve.session import ServeConfig, SessionManager

__all__ = [
    "shard_for_tenant",
    "ShardConfig",
    "ShardCluster",
    "FleetControlServer",
    "FleetMetricsView",
]

#: Unlabeled gauges that are per-shard *sums*, not alternatives — the
#: merged view adds them up instead of letting the last shard win.
ADDITIVE_GAUGES = ("serve.sessions_open",)


def shard_for_tenant(tenant: str, n_shards: int) -> int:
    """The stable worker index owning *tenant*'s sessions.

    CRC-32 of the UTF-8 tenant id modulo the shard count: deterministic
    across processes, hosts and Python releases (unlike ``hash``, which
    is salted per interpreter and would scatter a tenant differently on
    every restart).
    """
    if n_shards <= 0:
        raise ValueError(f"n_shards must be >= 1, got {n_shards}")
    return zlib.crc32(str(tenant).encode("utf-8")) % n_shards


@dataclass
class ShardConfig:
    """Fleet shape for :class:`ShardCluster`."""

    #: worker process count (>= 1); one core each is the scaling unit
    shards: int = 4
    host: str = "127.0.0.1"
    #: with ``reuse_port``: the single shared data port (0 picks one);
    #: otherwise each worker binds its own ephemeral port
    port: int = 0
    #: share one port via ``SO_REUSEPORT`` (kernel-balanced; tenant
    #: affinity is lost) instead of port-per-shard routing
    reuse_port: bool = False
    #: the parent control server's bind port (0 = ephemeral)
    control_port: int = 0
    serve: ServeConfig = field(default_factory=ServeConfig)
    telemetry_interval_s: float = 1.0
    #: how long to wait for every worker to report its bound port
    start_timeout_s: float = 30.0

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError(f"shards must be >= 1, got {self.shards}")
        if self.reuse_port and not hasattr(socket, "SO_REUSEPORT"):
            raise ValueError(
                "reuse_port requested but this platform has no "
                "SO_REUSEPORT; use port-per-shard routing instead")


def _worker_main(shard_index: int, host: str, port: int, reuse_port: bool,
                 serve_config: ServeConfig, telemetry_interval_s: float,
                 pipe) -> None:
    """One shard worker: fresh registry + manager + server, own loop.

    Top-level by design so the function is importable under any
    multiprocessing start method, not just fork.  Reports the bound port
    back over *pipe* once listening, then serves until terminated.
    """
    registry = MetricsRegistry()
    set_registry(registry)  # pipeline/server series land per-worker
    manager = SessionManager(serve_config, metrics=registry)
    server = AirFingerServer(
        manager, host=host, port=port, reuse_port=reuse_port,
        telemetry_interval_s=telemetry_interval_s)

    async def main() -> None:
        await server.start()
        pipe.send({"shard": shard_index, "host": host, "port": server.port})
        pipe.close()
        try:
            await server._server.serve_forever()
        finally:
            await server.stop()

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        pass


class FleetMetricsView:
    """A registry-shaped view merging local series with shard snapshots.

    Quacks enough like a :class:`MetricsRegistry` for the telemetry
    plane: ``snapshot()`` returns the control process's own registry
    merged with the most recent fleet merge (so alerter bookkeeping and
    client RTT series live alongside worker counters), and the metric
    constructors delegate to the local registry.  :meth:`update` swaps
    in a new fleet merge; gauges named in :data:`ADDITIVE_GAUGES` are
    summed across shards instead of last-writer-wins.
    """

    def __init__(self, local: MetricsRegistry | None = None) -> None:
        self.local = local if local is not None else MetricsRegistry()
        self._remote = MetricsSnapshot()

    def update(self, shard_snapshots: list[MetricsSnapshot]) -> None:
        merged = MetricsSnapshot()
        additive: dict[str, float] = {}
        for snap in shard_snapshots:
            merged = merged.merged(snap)
            for key in ADDITIVE_GAUGES:
                if key in snap.gauges:
                    additive[key] = (additive.get(key, 0.0)
                                     + snap.gauges[key])
        merged.gauges.update(additive)
        self._remote = merged

    def snapshot(self) -> MetricsSnapshot:
        return self.local.snapshot().merged(self._remote)

    # registry-constructor surface, delegated to the local registry
    def counter(self, name: str, **labels):
        return self.local.counter(name, **labels)

    def gauge(self, name: str, **labels):
        return self.local.gauge(name, **labels)

    def histogram(self, name: str, buckets=None, **labels):
        if buckets is None:
            return self.local.histogram(name, **labels)
        return self.local.histogram(name, buckets=buckets, **labels)


class FleetControlServer(AirFingerServer):
    """The parent-side front-end making N shard workers look like one.

    Speaks the ordinary serve protocol.  Differences from a plain
    server: its ``hello_ack`` advertises the shard listing (clients
    route data connections with :func:`shard_for_tenant`), its
    ``stats`` reply merges every worker's snapshot, and its telemetry
    plane samples the merged view — one ``airfinger top`` against this
    port watches the whole fleet.  It still serves data sessions itself
    (useful for probes), booked under its own registry.
    """

    def __init__(self, shards: list[dict], host: str = "127.0.0.1",
                 port: int = 0, config: ServeConfig | None = None,
                 telemetry_interval_s: float = 1.0,
                 timeline_path=None) -> None:
        view = FleetMetricsView()
        manager = SessionManager(config, metrics=view.local)
        plane = TelemetryPlane(metrics=view,
                               interval_s=telemetry_interval_s)
        super().__init__(manager, host=host, port=port, telemetry=plane,
                         timeline_path=timeline_path)
        self.fleet = view
        self.shard_listing = [
            {"shard": int(s["shard"]), "host": str(s["host"]),
             "port": int(s["port"])} for s in shards]
        self._shard_clients: dict[int, ServeClient] = {}

    # -- protocol overrides -------------------------------------------
    def _hello_ack_message(self, session_id: str) -> dict:
        return protocol.hello_ack(
            session_id,
            heartbeat_interval_s=self.config.heartbeat_interval_s,
            max_batch_frames=self.config.max_batch_frames,
            shards=self.shard_listing)

    async def _stats_payload(self) -> dict:
        await self.refresh_fleet()
        snapshot = self.manager.stats()
        snapshot["metrics"] = self.fleet.snapshot().to_dict()
        snapshot["shards"] = self.shard_listing
        return snapshot

    async def _telemetry_tick(self) -> dict:
        # a dead worker must not stall the tick; it just drops out of
        # the merge until it answers again
        with contextlib.suppress(Exception):
            await self.refresh_fleet()
        return self.telemetry.tick()

    # -- fleet polling ------------------------------------------------
    async def refresh_fleet(self) -> None:
        """Poll every worker's stats and swap in a fresh merged view."""
        snapshots = []
        for entry in self.shard_listing:
            snap = await self._shard_snapshot(entry)
            if snap is not None:
                snapshots.append(snap)
        self.fleet.update(snapshots)

    async def _shard_snapshot(self, entry: dict) -> MetricsSnapshot | None:
        """One worker's snapshot; reconnects once if the control session
        was idle-evicted (worker reapers close silent connections)."""
        index = entry["shard"]
        for _attempt in range(2):
            client = self._shard_clients.get(index)
            try:
                if client is None:
                    client = await ServeClient.connect(
                        entry["host"], entry["port"],
                        "_fleet", f"ctl{index}",
                        metrics=self.fleet.local)
                    self._shard_clients[index] = client
                stats = await client.stats(timeout_s=10.0)
                return MetricsSnapshot.from_dict(stats.get("metrics", {}))
            except (ConnectionError, OSError, TimeoutError,
                    protocol.ProtocolError):
                self._shard_clients.pop(index, None)
                if client is not None:
                    with contextlib.suppress(Exception):
                        client._writer.close()
        return None

    async def stop(self) -> None:
        for client in self._shard_clients.values():
            with contextlib.suppress(Exception):
                client._writer.close()
        self._shard_clients.clear()
        await super().stop()


class ShardCluster:
    """Lifecycle owner for the worker fleet + control front-end.

    ::

        async with ShardCluster(ShardConfig(shards=4)) as cluster:
            listing = cluster.shard_listing      # route data sessions
            control = cluster.control            # merged stats/telemetry
            await cluster.migrate("acme", "dev3", to_shard=2)
    """

    def __init__(self, config: ShardConfig | None = None) -> None:
        self.config = config if config is not None else ShardConfig()
        self._processes: list[multiprocessing.Process] = []
        self._placeholder: socket.socket | None = None
        self.shard_listing: list[dict] = []
        self.control: FleetControlServer | None = None

    # ------------------------------------------------------------------
    async def start(self) -> None:
        config = self.config
        port = config.port
        if config.reuse_port and port == 0:
            # reserve a concrete shared port: a bound (never listening)
            # SO_REUSEPORT socket pins the number without stealing
            # connections from the workers that listen on it
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
            sock.bind((config.host, 0))
            port = sock.getsockname()[1]
            self._placeholder = sock
        ctx = multiprocessing.get_context()
        pipes = []
        for index in range(config.shards):
            parent_end, child_end = ctx.Pipe(duplex=False)
            worker_port = port if config.reuse_port else 0
            proc = ctx.Process(
                target=_worker_main,
                args=(index, config.host, worker_port, config.reuse_port,
                      config.serve, config.telemetry_interval_s,
                      child_end),
                daemon=True, name=f"airfinger-shard-{index}")
            proc.start()
            child_end.close()
            pipes.append((index, parent_end))
            self._processes.append(proc)
        self.shard_listing = []
        deadline = time.monotonic() + config.start_timeout_s
        for index, pipe in pipes:
            entry = await self._await_report(index, pipe, deadline)
            self.shard_listing.append(entry)
        self.control = FleetControlServer(
            self.shard_listing, host=config.host,
            port=config.control_port, config=config.serve,
            telemetry_interval_s=config.telemetry_interval_s)
        await self.control.start()

    async def _await_report(self, index: int, pipe, deadline: float) -> dict:
        while True:
            if pipe.poll(0):
                entry = pipe.recv()
                pipe.close()
                return entry
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"shard {index} never reported its port "
                    f"(alive={self._processes[index].is_alive()})")
            await asyncio.sleep(0.02)

    async def stop(self) -> None:
        if self.control is not None:
            await self.control.stop()
            self.control = None
        for proc in self._processes:
            if proc.is_alive():
                proc.terminate()
        for proc in self._processes:
            proc.join(timeout=10)
            if proc.is_alive():
                proc.kill()
                proc.join(timeout=10)
        self._processes.clear()
        if self._placeholder is not None:
            self._placeholder.close()
            self._placeholder = None

    async def __aenter__(self) -> "ShardCluster":
        await self.start()
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.stop()

    # ------------------------------------------------------------------
    def shard_of(self, tenant: str) -> dict:
        """The listing entry owning *tenant* under hash routing."""
        return self.shard_listing[
            shard_for_tenant(tenant, len(self.shard_listing))]

    async def migrate(self, tenant: str, session: str, to_shard: int,
                      from_shard: int | None = None) -> dict:
        """Move one live session between workers; returns the payload.

        Checkpoints (capture + detach, closing the device connection)
        on the source worker and restores on the destination — streaming
        state, queued frames and counters all survive, so the device
        reconnects to the new shard and the event stream continues with
        zero lost events.
        """
        if from_shard is None:
            from_shard = shard_for_tenant(tenant, len(self.shard_listing))
        src = self.shard_listing[from_shard]
        dst = self.shard_listing[to_shard]
        ctl = await ServeClient.connect(src["host"], src["port"],
                                        "_fleet", "migrate-src")
        try:
            state = await ctl.checkpoint(tenant, session)
        finally:
            with contextlib.suppress(Exception):
                await ctl.bye(timeout_s=5.0)
        ctl = await ServeClient.connect(dst["host"], dst["port"],
                                        "_fleet", "migrate-dst")
        try:
            await ctl.restore(state)
        finally:
            with contextlib.suppress(Exception):
                await ctl.bye(timeout_s=5.0)
        return state
