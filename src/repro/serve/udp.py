"""UDP datagram transport for the serving protocol.

Thousands of battery-powered devices streaming 100 Hz sensor frames do
not want a TCP connection each: head-of-line blocking turns one lost
packet into a latency spike for every frame behind it, and connection
state is pure overhead for a fire-and-forget sensor feed.  This module
carries the *same* JSON messages as :mod:`repro.serve.protocol` over
UDP — one message per datagram, no length prefix (the datagram boundary
is the frame) — with **per-datagram session addressing**: since there is
no connection to hang identity on, every data-plane message carries its
``tenant``/``session`` fields and the server replies to the datagram's
source address (last seen wins, so a device re-appearing behind a new
NAT port keeps its session).

Loss and reordering need no protocol machinery at all: a dropped
datagram drops a run of frame indices, and the pipeline already turns
index gaps into interpolation (short) or a
:class:`~repro.core.events.StreamGap` (long), while a reordered datagram
surfaces as out-of-order frames the engine counts and discards.  The
loopback suite pins both halves of that contract: with no loss the UDP
event stream is ``repr``-identical to TCP's, and under a seeded drop
schedule the only divergence is the gap events themselves.

What UDP deliberately does not guarantee here: event delivery.  Events
ride back as datagrams to the last known address; a lost event datagram
is gone (devices that need reliable event delivery use the TCP front-end
or subscribe elsewhere).  The serving metrics remain authoritative
either way — they are recorded server-side at dispatch.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import time

from repro.serve import protocol
from repro.serve.session import ServeSession, SessionManager

__all__ = [
    "MAX_DATAGRAM_BYTES",
    "EVENTS_PER_DATAGRAM",
    "encode_datagram",
    "decode_datagram",
    "UdpAirFingerServer",
    "UdpServeClient",
]

#: Refuse to build datagrams above this (safe under the common 64 KiB
#: UDP limit with headroom for IP/UDP headers and odd MTUs).
MAX_DATAGRAM_BYTES = 57344
#: Events per outgoing datagram; event payloads are ~200 bytes, so this
#: stays an order of magnitude under :data:`MAX_DATAGRAM_BYTES`.
EVENTS_PER_DATAGRAM = 120


def encode_datagram(message: dict) -> bytes:
    """One message as one datagram: the JSON body, no length prefix."""
    body = json.dumps(message, separators=(",", ":"),
                      allow_nan=False).encode("utf-8")
    if len(body) > MAX_DATAGRAM_BYTES:
        raise protocol.ProtocolError(
            f"datagram of {len(body)} bytes exceeds the "
            f"{MAX_DATAGRAM_BYTES}-byte limit")
    return body


def decode_datagram(data: bytes) -> dict:
    """The inverse of :func:`encode_datagram`."""
    try:
        message = json.loads(data)
    except ValueError as exc:
        raise protocol.ProtocolError(f"undecodable datagram: {exc}")
    if not isinstance(message, dict) or "type" not in message:
        raise protocol.ProtocolError(
            "datagram must be a JSON object with a 'type' field")
    return message


def _with_session(message: dict, tenant: str, session: str) -> dict:
    """Stamp the per-datagram session address onto *message*."""
    message["tenant"] = str(tenant)
    message["session"] = str(session)
    return message


class _ServerProtocol(asyncio.DatagramProtocol):
    def __init__(self, server: "UdpAirFingerServer") -> None:
        self.server = server

    def connection_made(self, transport) -> None:
        self.server._transport = transport

    def datagram_received(self, data: bytes, addr) -> None:
        self.server._on_datagram(data, addr)


class UdpAirFingerServer:
    """Datagram front-end over a shared :class:`SessionManager`.

    Speaks the serve protocol one-message-per-datagram.  ``hello``
    registers (or re-addresses) a session and is answered with a
    ``hello_ack``; ``frames`` enqueue onto the session's bounded queue
    and wake an asyncio pump that drains through the manager's batching
    dispatch, sending events back in bounded chunks; ``bye`` drains,
    flushes and answers the tail events plus a final ``bye``.  An idle
    reaper evicts silent sessions exactly like the TCP server.

    May share its :class:`SessionManager` with a TCP
    :class:`~repro.serve.server.AirFingerServer` — sessions are keyed by
    (tenant, session), not by transport.
    """

    def __init__(self, manager: SessionManager,
                 host: str = "127.0.0.1", port: int = 0,
                 reuse_port: bool = False,
                 wall_clock=time.time, mono_clock=time.monotonic) -> None:
        self.manager = manager
        self.host = host
        self.port = port
        self.reuse_port = reuse_port
        self._wall_clock = wall_clock
        self._mono_clock = mono_clock
        self._started_mono = 0.0
        self._transport: asyncio.DatagramTransport | None = None
        #: last datagram source address per live session key
        self._peers: dict[tuple[str, str], tuple] = {}
        self._pumps: dict[tuple[str, str], asyncio.Task] = {}
        self._reaper: asyncio.Task | None = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        loop = asyncio.get_running_loop()
        kwargs = {"reuse_port": True} if self.reuse_port else {}
        transport, _ = await loop.create_datagram_endpoint(
            lambda: _ServerProtocol(self),
            local_addr=(self.host, self.port), **kwargs)
        self._transport = transport
        self.port = transport.get_extra_info("sockname")[1]
        self._started_mono = self._mono_clock()
        self._reaper = asyncio.create_task(self._reap_idle())

    async def stop(self) -> None:
        if self._reaper is not None:
            self._reaper.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._reaper
            self._reaper = None
        for task in list(self._pumps.values()):
            task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await task
        self._pumps.clear()
        if self._transport is not None:
            self._transport.close()
            self._transport = None
        self._peers.clear()

    async def __aenter__(self) -> "UdpAirFingerServer":
        await self.start()
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.stop()

    @property
    def uptime_s(self) -> float:
        """Seconds since :meth:`start` (0.0 before it); monotonic."""
        if not self._started_mono:
            return 0.0
        return self._mono_clock() - self._started_mono

    # ------------------------------------------------------------------
    # datagram handling
    # ------------------------------------------------------------------
    def _on_datagram(self, data: bytes, addr) -> None:
        try:
            message = decode_datagram(data)
            self._handle(message, addr)
        except protocol.ProtocolError as exc:
            self._sendto(protocol.error_message("protocol", str(exc)),
                         addr)

    def _handle(self, message: dict, addr) -> None:
        kind = message.get("type")
        if kind == "hello":
            tenant, session_id = protocol.check_hello(message)
            session = self.manager.open(tenant, session_id)
            self._peers[session.key] = addr
            self._sendto(protocol.hello_ack(
                session_id,
                heartbeat_interval_s=(
                    self.manager.config.heartbeat_interval_s),
                max_batch_frames=self.manager.config.max_batch_frames),
                addr)
        elif kind == "frames":
            session = self._session_of(message)
            self._peers[session.key] = addr
            self.manager.enqueue(session, protocol.decode_frames(message))
            self._wake_pump(session)
        elif kind == "heartbeat":
            t = message.get("t")
            if t is not None:
                self._sendto(protocol.heartbeat(echo=t), addr)
        elif kind == "stats":
            snapshot = self.manager.stats()
            snapshot["metrics"] = (
                self.manager.metrics.snapshot().to_dict())
            mono = self._mono_clock()
            uptime = (mono - self._started_mono
                      if self._started_mono else 0.0)
            self._sendto(protocol.stats_reply(
                snapshot, server_time_s=self._wall_clock(),
                server_mono_s=mono, uptime_s=uptime), addr)
        elif kind == "bye":
            session = self._session_of(message)
            self._peers[session.key] = addr
            asyncio.get_running_loop().create_task(
                self._close_session(session, addr))
        else:
            raise protocol.ProtocolError(
                f"unexpected datagram type {kind!r}")

    def _session_of(self, message: dict) -> ServeSession:
        tenant = message.get("tenant")
        session_id = message.get("session")
        if not tenant or not session_id:
            raise protocol.ProtocolError(
                "datagram carries no tenant/session address")
        session = self.manager.get(str(tenant), str(session_id))
        if session is None:
            raise protocol.ProtocolError(
                f"unknown session {tenant!r}/{session_id!r} "
                f"(hello first; it may also have been evicted)")
        return session

    # ------------------------------------------------------------------
    # dispatch pump
    # ------------------------------------------------------------------
    def _wake_pump(self, session: ServeSession) -> None:
        task = self._pumps.get(session.key)
        if task is None or task.done():
            self._pumps[session.key] = asyncio.get_running_loop(
                ).create_task(self._pump(session))

    async def _pump(self, session: ServeSession) -> None:
        try:
            while session.pending and not session.closed:
                events = self.manager.dispatch(session)
                self._send_events(session, events)
                # yield between batches so fresh datagrams interleave
                await asyncio.sleep(0)
        finally:
            self._pumps.pop(session.key, None)

    async def _close_session(self, session: ServeSession, addr) -> None:
        pump = self._pumps.pop(session.key, None)
        if pump is not None and not pump.done():
            pump.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await pump
        tail = self.manager.close(session, reason="bye")
        self._send_events(session, tail, addr=addr)
        self._sendto(protocol.bye(), addr)
        self._peers.pop(session.key, None)

    async def _reap_idle(self) -> None:
        config = self.manager.config
        interval_s = min(config.idle_timeout_s / 4,
                         config.heartbeat_interval_s)
        while True:
            await asyncio.sleep(interval_s)
            for session, tail in self.manager.evict_idle():
                addr = self._peers.pop(session.key, None)
                pump = self._pumps.pop(session.key, None)
                if pump is not None and not pump.done():
                    pump.cancel()
                if addr is not None:
                    self._send_events(session, tail, addr=addr)
                    self._sendto(protocol.bye(), addr)

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------
    def _send_events(self, session: ServeSession, events: list,
                     addr=None) -> None:
        if not events:
            return
        if addr is None:
            addr = self._peers.get(session.key)
        if addr is None:
            return
        for i in range(0, len(events), EVENTS_PER_DATAGRAM):
            chunk = events[i:i + EVENTS_PER_DATAGRAM]
            self._sendto(protocol.events_message(chunk), addr)

    def _sendto(self, message: dict, addr) -> None:
        if self._transport is None:
            return
        with contextlib.suppress(OSError):
            self._transport.sendto(encode_datagram(message), addr)


# ---------------------------------------------------------------------------
# client
# ---------------------------------------------------------------------------

class _ClientProtocol(asyncio.DatagramProtocol):
    def __init__(self, client: "UdpServeClient") -> None:
        self.client = client

    def connection_made(self, transport) -> None:
        pass

    def datagram_received(self, data: bytes, addr) -> None:
        self.client._on_datagram(data)


class UdpServeClient:
    """One device session over the datagram transport.

    Mirrors :class:`~repro.serve.client.ServeClient` for the data plane:
    connect (hello/hello_ack with bounded resends — the hello itself may
    be lost), ``send_frames``, ``pump`` to absorb event datagrams, and a
    ``bye`` handshake returning every received event.

    ``send_filter`` injects deterministic datagram loss for tests: it is
    called with each outgoing *frames* datagram's ordinal and the frame
    batch, and a falsy return drops the datagram before it touches the
    socket — exactly what a lossy radio link would do to it.
    """

    def __init__(self, transport: asyncio.DatagramTransport,
                 hello_ack: dict, send_filter=None,
                 clock=time.perf_counter) -> None:
        self._transport = transport
        self.hello_ack = hello_ack
        self.tenant = ""
        self.session = ""
        self._send_filter = send_filter
        self._clock = clock
        self._incoming: asyncio.Queue[dict] = asyncio.Queue()
        #: every decoded pipeline event received so far, in wire order
        self.events: list = []
        self.heartbeats = 0
        self.rtts_s: list[float] = []
        self._stats: dict | None = None
        self._bye_seen = False
        self._frames_datagrams = 0
        self.dropped_datagrams = 0

    @classmethod
    async def connect(cls, host: str, port: int, tenant: str,
                      session: str, timeout_s: float = 10.0,
                      send_filter=None, retries: int = 5
                      ) -> "UdpServeClient":
        """Resolve the endpoint and complete the hello handshake.

        Retries the hello up to *retries* times (the handshake datagrams
        themselves may be lost); each attempt waits ``timeout_s /
        retries``.
        """
        loop = asyncio.get_running_loop()
        transport, proto = await loop.create_datagram_endpoint(
            lambda: _ClientProtocol(None), remote_addr=(host, port))
        client = cls(transport, {}, send_filter=send_filter)
        proto.client = client  # wire up before any datagram can arrive
        client.tenant = str(tenant)
        client.session = str(session)
        per_try = max(timeout_s / max(retries, 1), 0.05)
        for _attempt in range(max(retries, 1)):
            transport.sendto(encode_datagram(
                protocol.hello(tenant, session)))
            try:
                message = await asyncio.wait_for(client._incoming.get(),
                                                 timeout=per_try)
            except asyncio.TimeoutError:
                continue
            if message.get("type") == "error":
                raise protocol.ProtocolError(
                    f"handshake rejected: {message.get('detail')}")
            if message.get("type") == "hello_ack":
                client.hello_ack = message
                return client
            client._absorb(message)
        transport.close()
        raise TimeoutError("hello_ack timed out over UDP")

    # ------------------------------------------------------------------
    def _on_datagram(self, data: bytes) -> None:
        try:
            self._incoming.put_nowait(decode_datagram(data))
        except protocol.ProtocolError:
            pass  # corrupt datagram: UDP promises nothing; drop it

    def _absorb(self, message: dict) -> None:
        kind = message.get("type")
        if kind == "events":
            self.events.extend(protocol.decode_events(message))
        elif kind == "heartbeat":
            self.heartbeats += 1
            echo = message.get("echo")
            if echo is not None:
                self.rtts_s.append(
                    max(self._clock() - float(echo), 0.0))
        elif kind == "stats_reply":
            self._stats = message.get("metrics")
        elif kind == "bye":
            self._bye_seen = True
        elif kind == "error":
            raise protocol.ProtocolError(
                f"server error: {message.get('detail')}")

    async def _drain(self, timeout_s: float) -> None:
        try:
            message = await asyncio.wait_for(self._incoming.get(),
                                             timeout=timeout_s)
        except asyncio.TimeoutError:
            return
        self._absorb(message)
        while True:
            try:
                self._absorb(self._incoming.get_nowait())
            except asyncio.QueueEmpty:
                return

    # ------------------------------------------------------------------
    def _sendto(self, message: dict) -> None:
        self._transport.sendto(encode_datagram(message))

    async def send_frames(self, frames) -> None:
        """Ship one frame batch as one datagram (subject to the filter)."""
        frames = list(frames)
        ordinal = self._frames_datagrams
        self._frames_datagrams += 1
        if self._send_filter is not None and not self._send_filter(
                ordinal, frames):
            self.dropped_datagrams += 1
            return
        self._sendto(_with_session(
            protocol.frames_message(frames), self.tenant, self.session))

    async def pump(self, timeout_s: float = 0.001) -> None:
        """Opportunistically absorb any datagrams already received."""
        await self._drain(timeout_s)

    async def ping(self, timeout_s: float = 10.0) -> float:
        """One heartbeat round trip; returns the RTT in seconds."""
        seen = len(self.rtts_s)
        self._sendto(protocol.heartbeat(t=self._clock()))
        deadline = asyncio.get_running_loop().time() + timeout_s
        while len(self.rtts_s) == seen:
            remaining = deadline - asyncio.get_running_loop().time()
            if remaining <= 0:
                raise TimeoutError("heartbeat echo timed out")
            await self._drain(remaining)
        return self.rtts_s[-1]

    async def stats(self, timeout_s: float = 10.0) -> dict:
        """Fetch the server's stats snapshot (includes metrics)."""
        self._stats = None
        self._sendto(protocol.stats_request())
        deadline = asyncio.get_running_loop().time() + timeout_s
        while self._stats is None:
            remaining = deadline - asyncio.get_running_loop().time()
            if remaining <= 0:
                raise TimeoutError("stats reply timed out")
            await self._drain(remaining)
        return self._stats

    async def bye(self, timeout_s: float = 30.0, retries: int = 5) -> list:
        """Graceful close; returns every event received in this session.

        The ``bye`` datagram is resent on timeout (it may be lost), and
        all event datagrams arriving before the server's answering
        ``bye`` are absorbed — the flush tail rides ahead of it.
        """
        per_try = max(timeout_s / max(retries, 1), 0.05)
        for _attempt in range(max(retries, 1)):
            self._sendto(_with_session(
                protocol.bye(), self.tenant, self.session))
            deadline = asyncio.get_running_loop().time() + per_try
            while not self._bye_seen:
                remaining = deadline - asyncio.get_running_loop().time()
                if remaining <= 0:
                    break
                try:
                    await self._drain(remaining)
                except protocol.ProtocolError:
                    # "unknown session": a bye resend after the server
                    # already closed — the handshake is complete
                    self._bye_seen = True
            if self._bye_seen:
                break
        self._transport.close()
        return self.events
