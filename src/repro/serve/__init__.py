"""Multi-stream gesture serving: sessions, wire protocol, asyncio server.

This package turns the single-stream :class:`~repro.core.pipeline.AirFinger`
engine into a serving system: a :class:`~repro.serve.session.SessionManager`
multiplexes N concurrent device streams through per-session engine
instances with bounded queues and explicit backpressure, an asyncio
front-end (:class:`~repro.serve.server.AirFingerServer`) speaks the
versioned length-framed protocol of :mod:`repro.serve.protocol`, and the
load generator (:mod:`repro.serve.loadgen`) measures sessions/core, p99
frame latency and deadline-miss rate against a live server.  The server
also runs a live :class:`~repro.obs.telemetry.TelemetryPlane` by
default — ``watch`` subscribers (``airfinger top``, the loadgen's
``--telemetry-json`` timeline) receive periodic rate/quantile/health/
alert pushes.

See ``docs/SERVING.md`` for the architecture and the serving guarantees
(event fidelity over the wire, drop-oldest backpressure surfacing as
:class:`~repro.core.events.StreamGap` events, idle eviction).
"""

from repro.serve.client import ServeClient
from repro.serve.loadgen import (
    LoadConfig,
    LoadReport,
    make_device_frames,
    run_load,
)
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    MessageDecoder,
    ProtocolError,
    encode_message,
)
from repro.serve.server import AirFingerServer
from repro.serve.session import ServeConfig, ServeSession, SessionManager

__all__ = [
    "PROTOCOL_VERSION",
    "AirFingerServer",
    "LoadConfig",
    "LoadReport",
    "MessageDecoder",
    "ProtocolError",
    "ServeClient",
    "ServeConfig",
    "ServeSession",
    "SessionManager",
    "encode_message",
    "make_device_frames",
    "run_load",
]
