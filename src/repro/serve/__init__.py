"""Multi-stream gesture serving: sessions, wire protocol, asyncio server.

This package turns the single-stream :class:`~repro.core.pipeline.AirFinger`
engine into a serving system: a :class:`~repro.serve.session.SessionManager`
multiplexes N concurrent device streams through per-session engine
instances with bounded queues and explicit backpressure, an asyncio
front-end (:class:`~repro.serve.server.AirFingerServer`) speaks the
versioned length-framed protocol of :mod:`repro.serve.protocol`, and the
load generator (:mod:`repro.serve.loadgen`) measures sessions/core, p99
frame latency and deadline-miss rate against a live server.  The server
also runs a live :class:`~repro.obs.telemetry.TelemetryPlane` by
default — ``watch`` subscribers (``airfinger top``, the loadgen's
``--telemetry-json`` timeline) receive periodic rate/quantile/health/
alert pushes.

Beyond one process: :mod:`repro.serve.shard` runs a worker process per
core behind a :class:`~repro.serve.shard.FleetControlServer` that merges
stats and telemetry, :mod:`repro.serve.udp` carries the same messages as
datagrams for connectionless devices, and :mod:`repro.serve.checkpoint`
serializes live session state so streams migrate across workers
mid-gesture with zero lost events.

See ``docs/SERVING.md`` for the architecture and the serving guarantees
(event fidelity over the wire, drop-oldest backpressure surfacing as
:class:`~repro.core.events.StreamGap` events, idle eviction).
"""

from repro.serve.checkpoint import (
    checkpoint_session,
    restore_session,
)
from repro.serve.client import ServeClient
from repro.serve.loadgen import (
    LoadConfig,
    LoadReport,
    Pacer,
    make_device_frames,
    run_load,
)
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    MessageDecoder,
    ProtocolError,
    encode_message,
)
from repro.serve.server import AirFingerServer
from repro.serve.session import ServeConfig, ServeSession, SessionManager
from repro.serve.shard import (
    FleetControlServer,
    ShardCluster,
    ShardConfig,
    shard_for_tenant,
)
from repro.serve.udp import UdpAirFingerServer, UdpServeClient

__all__ = [
    "PROTOCOL_VERSION",
    "AirFingerServer",
    "FleetControlServer",
    "LoadConfig",
    "LoadReport",
    "MessageDecoder",
    "Pacer",
    "ProtocolError",
    "ServeClient",
    "ServeConfig",
    "ServeSession",
    "SessionManager",
    "ShardCluster",
    "ShardConfig",
    "UdpAirFingerServer",
    "UdpServeClient",
    "checkpoint_session",
    "encode_message",
    "make_device_frames",
    "restore_session",
    "run_load",
    "shard_for_tenant",
]
