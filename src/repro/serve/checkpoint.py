"""Session checkpoint/restore: migrate a live stream across workers.

A :class:`~repro.serve.session.ServeSession` is mostly *small* streaming
state: the segmenter's threshold history and envelope, the SBC and
prefilter windows, the channel guard's health buffers, a short raw/delta
history ring and a handful of scalars — a few kilobytes of plain data.
This module serializes exactly that state (plus the still-queued frames)
into a JSON-safe payload, so a shard front-end can move a session to
another worker **mid-gesture** with zero lost events: an open segment,
a half-warmed threshold and a masked channel all survive the hop.

Exactness is the contract, not approximation: every float crosses the
wire through JSON's shortest-round-trip repr (bit-exact for float64),
deques are restored in order under the destination engine's own
``maxlen``, and the segmenter's threshold ring is copied in its rotated
layout.  The golden migrate-mid-stream test pins the result — a session
checkpointed between two arbitrary frames and restored on a second
manager must produce the byte-identical event ``repr`` sequence of an
unmigrated run.

What is *not* serialized: models and configuration.  The destination
manager's ``engine_factory`` must build engines equivalent to the
source's — that is a deployment invariant of a homogeneous shard fleet —
and a ``config_digest`` guards against accidental mismatches (restoring
onto a manager whose engines disagree raises instead of silently
diverging).
"""

from __future__ import annotations

import hashlib
from collections import deque

import numpy as np

from repro.acquisition.stream import RssFrame
from repro.core.calibration import ChannelGuard
from repro.core.pipeline import AirFinger
from repro.core.segmentation import Segment
from repro.serve.session import ServeSession, SessionManager

__all__ = [
    "CHECKPOINT_SCHEMA",
    "config_digest",
    "engine_state",
    "load_engine_state",
    "checkpoint_session",
    "restore_session",
]

#: Bump on any change to the payload layout; restore rejects mismatches.
CHECKPOINT_SCHEMA = 1


def config_digest(engine: AirFinger) -> str:
    """Fingerprint of the engine configuration a checkpoint depends on.

    Covers the full :class:`AirFingerConfig` (every window/threshold the
    serialized state is sized against) plus the pipeline wrapper knobs
    that change event output.  Dataclass ``repr`` is deterministic and
    floats repr shortest-round-trip, so equal configs digest equally
    across processes and hosts.
    """
    text = "|".join((
        repr(engine.config),
        repr(engine.live_update_every),
        repr(engine.gate_fraction),
        repr(engine.channel_guard),
    ))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]


# ---------------------------------------------------------------------------
# engine state
# ---------------------------------------------------------------------------

def engine_state(engine: AirFinger) -> dict:
    """The engine's complete streaming state as JSON-safe plain data."""
    seg = engine._segmenter
    state: dict = {
        "segmenter": {
            # the ring is copied in its rotated layout: every valid slot
            # as-is plus the cursor, so refresh order is bit-preserved
            "hist": [float(v) for v in seg._hist_buf[:seg._hist_len]],
            "hist_pos": seg._hist_pos,
            "threshold": float(seg._threshold),
            "since_refresh": seg._since_refresh,
            "index": seg._index,
            "open_start": seg._open_start,
            "pending": ([seg._pending.start, seg._pending.end]
                        if seg._pending is not None else None),
            "gap": seg._gap,
            "env": [float(v) for v in seg._env_buffer],
            "env_sum": float(seg._env_sum),
        },
        "sbc": {
            "buffer": [float(v) for v in engine._combined_sbc._buffer],
            "count": engine._combined_sbc._count,
        },
        "prefilters": [
            {"buffer": [float(v) for v in f._buffer], "sum": float(f._sum)}
            for f in engine._prefilters],
        "raw": [[float(v) for v in row] for row in engine._raw],
        "delta": [float(v) for v in engine._delta],
        "fed": engine._fed,
        "last_time_s": float(engine._last_time_s),
        "live_cooldown": engine._live_cooldown,
        "live_track_open": engine._live_track_open,
        "anchor": engine._anchor,
        "pos": engine._pos,
        "last_values": ([float(v) for v in engine._last_values]
                        if engine._last_values is not None else None),
        "hold": [float(v) for v in engine._hold],
    }
    guard = engine._guard
    if guard is not None:
        state["guard"] = {
            "n_channels": guard.n_channels,
            "buffers": [[float(v) for v in buf]
                        for buf in guard._buffers],
            "masked": list(guard._masked),
            "reasons": list(guard._reasons),
            "healthy_streak": list(guard._healthy_streak),
            "hold": [float(v) for v in guard._hold],
            "since_check": guard._since_check,
        }
    else:
        state["guard"] = None
    return state


def load_engine_state(engine: AirFinger, state: dict) -> AirFinger:
    """Restore :func:`engine_state` output onto a freshly-built engine.

    *engine* must come from an equivalently-configured factory (the
    caller checks :func:`config_digest`); its streaming state is
    overwritten wholesale.
    """
    seg = engine._segmenter
    s = state["segmenter"]
    hist = s["hist"]
    seg._hist_buf[:len(hist)] = np.asarray(hist, dtype=np.float64)
    seg._hist_len = len(hist)
    seg._hist_pos = int(s["hist_pos"])
    seg._threshold = float(s["threshold"])
    seg._since_refresh = int(s["since_refresh"])
    seg._index = int(s["index"])
    seg._open_start = (int(s["open_start"])
                       if s["open_start"] is not None else None)
    seg._pending = (Segment(int(s["pending"][0]), int(s["pending"][1]))
                    if s["pending"] is not None else None)
    seg._gap = int(s["gap"])
    seg._env_buffer.clear()
    seg._env_buffer.extend(float(v) for v in s["env"])
    seg._env_sum = float(s["env_sum"])

    sbc = engine._combined_sbc
    sbc._buffer.clear()
    sbc._buffer.extend(float(v) for v in state["sbc"]["buffer"])
    sbc._count = int(state["sbc"]["count"])

    from repro.core.sbc import StreamingMovingAverage
    prefilters = []
    for entry in state["prefilters"]:
        f = StreamingMovingAverage(engine.config.prefilter_samples)
        f._buffer.extend(float(v) for v in entry["buffer"])
        f._sum = float(entry["sum"])
        prefilters.append(f)
    engine._prefilters = prefilters

    engine._raw.clear()
    engine._raw.extend(tuple(float(v) for v in row)
                       for row in state["raw"])
    engine._delta.clear()
    engine._delta.extend(float(v) for v in state["delta"])
    engine._fed = int(state["fed"])
    engine._last_time_s = float(state["last_time_s"])
    engine._live_cooldown = int(state["live_cooldown"])
    engine._live_track_open = bool(state["live_track_open"])
    engine._anchor = (int(state["anchor"])
                      if state["anchor"] is not None else None)
    engine._pos = int(state["pos"])
    engine._last_values = (tuple(float(v) for v in state["last_values"])
                           if state["last_values"] is not None else None)
    engine._hold = [float(v) for v in state["hold"]]

    g = state["guard"]
    if g is None:
        engine._guard = None
    else:
        # same construction as the pipeline's first-frame path, so the
        # restored guard shares its config-derived thresholds
        guard = ChannelGuard(
            n_channels=int(g["n_channels"]),
            window=engine.config.guard_window_samples,
            check_every=engine.config.guard_check_every_samples,
            recovery_checks=engine.config.guard_recovery_checks)
        for buf, values in zip(guard._buffers, g["buffers"]):
            buf.extend(float(v) for v in values)
        guard._masked = [bool(v) for v in g["masked"]]
        guard._reasons = [str(v) for v in g["reasons"]]
        guard._healthy_streak = [int(v) for v in g["healthy_streak"]]
        guard._hold = [float(v) for v in g["hold"]]
        guard._since_check = int(g["since_check"])
        engine._guard = guard
    return engine


# ---------------------------------------------------------------------------
# session state
# ---------------------------------------------------------------------------

def checkpoint_session(manager: SessionManager,
                       session: ServeSession) -> dict:
    """Capture *session* for migration and detach it from *manager*.

    The payload carries the engine state, every still-queued frame (in
    the same ``[index, time_s, [values...]]`` layout the wire protocol
    uses) and the lifetime counters.  Nothing is dispatched or flushed:
    an open segment stays open and finishes on the destination worker.
    """
    payload = {
        "schema": CHECKPOINT_SCHEMA,
        "tenant": session.tenant,
        "session": session.session_id,
        "config_digest": config_digest(session.engine),
        "engine": engine_state(session.engine),
        "queue": [[f.index, f.time_s, list(f.values)]
                  for f, _enq in session.queue],
        "frames_in": session.frames_in,
        "events_out": session.events_out,
        "dropped": session.dropped,
    }
    manager.detach(session)
    return payload


def restore_session(manager: SessionManager, payload: dict) -> ServeSession:
    """Adopt a checkpointed session on *manager*; the inverse of
    :func:`checkpoint_session`.

    Builds a fresh engine from the manager's factory, verifies the
    config digest (a fleet whose workers serve different configs must
    fail loudly, not drift), loads the streaming state and re-queues the
    in-flight frames — their latency clock restarts at restore time on
    the destination's injected clock.
    """
    if not isinstance(payload, dict):
        raise ValueError("checkpoint payload must be a dict")
    schema = payload.get("schema")
    if schema != CHECKPOINT_SCHEMA:
        raise ValueError(
            f"unsupported checkpoint schema {schema!r} "
            f"(this worker speaks {CHECKPOINT_SCHEMA})")
    engine = manager.new_engine()
    digest = config_digest(engine)
    if payload["config_digest"] != digest:
        raise ValueError(
            f"engine config mismatch: checkpoint was taken under "
            f"{payload['config_digest']}, this manager builds {digest}")
    load_engine_state(engine, payload["engine"])
    session = manager.adopt(
        payload["tenant"], payload["session"], engine,
        frames_in=int(payload.get("frames_in", 0)),
        events_out=int(payload.get("events_out", 0)),
        dropped=int(payload.get("dropped", 0)))
    now = session.last_active_s
    queue: deque = session.queue
    for index, time_s, values in payload.get("queue", []):
        queue.append((RssFrame(index=int(index), time_s=float(time_s),
                               values=tuple(float(v) for v in values)),
                      now))
    if session.queue_gauge is not None:
        session.queue_gauge.set(len(queue))
    return session
