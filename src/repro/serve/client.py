"""Minimal asyncio client for the serving protocol.

Used by the load generator, the loopback fidelity tests, and anyone who
wants to talk to an ``airfinger serve`` process from Python.  One
:class:`ServeClient` is one device session: connect + handshake, send
frame batches, collect decoded pipeline events as they stream back, and
close with a graceful ``bye`` that returns the server's flush tail.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from typing import Iterable

from repro.acquisition.stream import RssFrame
from repro.obs import MetricsRegistry, get_registry
from repro.serve import protocol

__all__ = ["ServeClient", "HEARTBEAT_RTT_BUCKETS_MS"]

#: Millisecond buckets for ``serve.heartbeat_rtt_ms`` — loopback RTTs
#: sit well under 1 ms; WAN paths reach the hundreds.
HEARTBEAT_RTT_BUCKETS_MS: tuple[float, ...] = (
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0,
    100.0, 250.0, 500.0, 1000.0)


class ServeClient:
    """One protocol session against a running server.

    ::

        client = await ServeClient.connect(host, port, "tenant", "dev0")
        await client.send_frames(frames)
        events = await client.bye()     # drain-tail; client.events has all
    """

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter, hello_ack: dict,
                 metrics: MetricsRegistry | None = None,
                 clock=time.perf_counter) -> None:
        self._reader = reader
        self._writer = writer
        self._decoder = protocol.MessageDecoder()
        self.hello_ack = hello_ack
        self._metrics = metrics if metrics is not None else get_registry()
        #: monotonic clock stamping ping `t` and differencing the echo;
        #: RTT never touches the wall clock, so an NTP step mid-ping
        #: cannot produce a negative (or hours-long) round trip
        self._clock = clock
        self._h_rtt = self._metrics.histogram(
            "serve.heartbeat_rtt_ms", buckets=HEARTBEAT_RTT_BUCKETS_MS)
        #: every decoded pipeline event received so far, in wire order
        self.events: list = []
        #: monotonic receive time of each events message (latency probes)
        self.heartbeats = 0
        #: measured heartbeat round-trip times, seconds, oldest first
        self.rtts_s: list[float] = []
        #: telemetry ticks received on a ``watch`` subscription
        self.telemetry: deque[dict] = deque(maxlen=1024)
        #: server stamps from the last ``stats_reply`` (v2 servers):
        #: ``server_time_s`` is wall (display only); ``server_mono_s`` /
        #: ``uptime_s`` are the monotonic stamps to diff rates from
        self.server_time_s: float | None = None
        self.server_mono_s: float | None = None
        self.uptime_s: float | None = None
        self._bye_seen = False
        self._stats: dict | None = None
        self._checkpoint: dict | None = None
        self._restore_ack: dict | None = None

    @property
    def shards(self) -> list[dict]:
        """Shard advertisement from the ``hello_ack`` (fleet front-ends)."""
        return list(self.hello_ack.get("shards", []))

    @classmethod
    async def connect(cls, host: str, port: int, tenant: str,
                      session: str, timeout_s: float = 10.0,
                      metrics: MetricsRegistry | None = None,
                      clock=time.perf_counter) -> "ServeClient":
        """Open a connection and complete the hello handshake."""
        reader, writer = await asyncio.open_connection(host, port)
        writer.write(protocol.encode_message(
            protocol.hello(tenant, session)))
        await writer.drain()
        decoder = protocol.MessageDecoder()
        deadline = asyncio.get_running_loop().time() + timeout_s
        while True:
            remaining = deadline - asyncio.get_running_loop().time()
            data = await asyncio.wait_for(reader.read(65536),
                                          timeout=max(remaining, 0.001))
            if not data:
                raise ConnectionError("server closed during handshake")
            messages = decoder.feed(data)
            if not messages:
                continue
            first = messages[0]
            if first.get("type") == "error":
                raise protocol.ProtocolError(
                    f"handshake rejected: {first.get('detail')}")
            if first.get("type") != "hello_ack":
                raise protocol.ProtocolError(
                    f"expected hello_ack, got {first.get('type')!r}")
            client = cls(reader, writer, first, metrics=metrics,
                         clock=clock)
            for message in messages[1:]:
                client._absorb(message)
            return client

    # ------------------------------------------------------------------
    def _absorb(self, message: dict) -> None:
        kind = message.get("type")
        if kind == "events":
            self.events.extend(protocol.decode_events(message))
        elif kind == "heartbeat":
            self.heartbeats += 1
            echo = message.get("echo")
            if echo is not None:
                # the echo carries OUR monotonic reading back, so RTT
                # needs no clock agreement with the server (and no wall
                # clock at all)
                rtt_s = max(self._clock() - float(echo), 0.0)
                self.rtts_s.append(rtt_s)
                self._h_rtt.observe(rtt_s * 1e3)
        elif kind == "telemetry":
            self.telemetry.append(message.get("telemetry", {}))
        elif kind == "stats_reply":
            self._stats = message.get("metrics")
            self.server_time_s = message.get("server_time_s")
            self.server_mono_s = message.get("server_mono_s")
            self.uptime_s = message.get("uptime_s")
        elif kind == "checkpoint_reply":
            self._checkpoint = message
        elif kind == "restore_reply":
            self._restore_ack = message
        elif kind == "bye":
            self._bye_seen = True
        elif kind == "error":
            raise protocol.ProtocolError(
                f"server error: {message.get('detail')}")

    async def _read_some(self, timeout_s: float) -> bool:
        """Absorb one read; False when the server closed the stream."""
        try:
            data = await asyncio.wait_for(self._reader.read(65536),
                                          timeout=timeout_s)
        except asyncio.TimeoutError:
            return True
        if not data:
            return False
        for message in self._decoder.feed(data):
            self._absorb(message)
        return True

    # ------------------------------------------------------------------
    async def send_frames(self, frames: Iterable[RssFrame]) -> None:
        """Ship one frame batch."""
        self._writer.write(protocol.encode_message(
            protocol.frames_message(frames)))
        await self._writer.drain()

    async def pump(self, timeout_s: float = 0.001) -> None:
        """Opportunistically absorb any events already on the wire."""
        await self._read_some(timeout_s)

    async def ping(self, timeout_s: float = 10.0) -> float:
        """Measure one heartbeat round-trip; returns the RTT in seconds.

        Sends a timestamped heartbeat, waits for the server's echo, and
        records the RTT into the ``serve.heartbeat_rtt_ms`` histogram
        (also appended to :attr:`rtts_s`).
        """
        seen = len(self.rtts_s)
        self._writer.write(protocol.encode_message(
            protocol.heartbeat(t=self._clock())))
        await self._writer.drain()
        deadline = asyncio.get_running_loop().time() + timeout_s
        while len(self.rtts_s) == seen:
            remaining = deadline - asyncio.get_running_loop().time()
            if remaining <= 0:
                raise TimeoutError("heartbeat echo timed out")
            if not await self._read_some(remaining):
                raise ConnectionError("server closed before echo")
        return self.rtts_s[-1]

    async def watch(self, interval_s: float | None = None) -> None:
        """Subscribe to the server's periodic ``telemetry`` pushes.

        Received ticks accumulate in :attr:`telemetry` as the client
        reads (``pump``/:meth:`next_telemetry`).  ``interval_s <= 0``
        cancels the subscription.
        """
        self._writer.write(protocol.encode_message(
            protocol.watch(interval_s)))
        await self._writer.drain()

    async def next_telemetry(self, timeout_s: float = 10.0) -> dict:
        """Block until one telemetry tick arrives; returns its payload."""
        if self.telemetry:
            return self.telemetry.popleft()
        deadline = asyncio.get_running_loop().time() + timeout_s
        while not self.telemetry:
            remaining = deadline - asyncio.get_running_loop().time()
            if remaining <= 0:
                raise TimeoutError("telemetry push timed out")
            if not await self._read_some(remaining):
                raise ConnectionError("server closed while watching")
        return self.telemetry.popleft()

    async def stats(self, timeout_s: float = 10.0) -> dict:
        """Fetch the server's stats snapshot (includes metrics)."""
        self._stats = None
        self._writer.write(protocol.encode_message(
            protocol.stats_request()))
        await self._writer.drain()
        deadline = asyncio.get_running_loop().time() + timeout_s
        while self._stats is None:
            remaining = deadline - asyncio.get_running_loop().time()
            if remaining <= 0:
                raise TimeoutError("stats reply timed out")
            if not await self._read_some(remaining):
                raise ConnectionError("server closed before stats reply")
        return self._stats

    async def checkpoint(self, tenant: str, session: str,
                         timeout_s: float = 30.0) -> dict:
        """Capture + detach a session on the server; returns its state.

        The migration control call: on success the session is gone from
        the server and the returned payload restores it elsewhere via
        :meth:`restore`.  Raises :class:`protocol.ProtocolError` if the
        server reports no such live session.
        """
        self._checkpoint = None
        self._writer.write(protocol.encode_message(
            protocol.checkpoint_request(tenant, session)))
        await self._writer.drain()
        deadline = asyncio.get_running_loop().time() + timeout_s
        while self._checkpoint is None:
            remaining = deadline - asyncio.get_running_loop().time()
            if remaining <= 0:
                raise TimeoutError("checkpoint reply timed out")
            if not await self._read_some(remaining):
                raise ConnectionError("server closed before checkpoint")
        reply = self._checkpoint
        if reply.get("state") is None:
            raise protocol.ProtocolError(
                f"checkpoint refused: {reply.get('error')}")
        return reply["state"]

    async def restore(self, state: dict, timeout_s: float = 30.0) -> str:
        """Adopt a checkpointed session on this server; returns its id."""
        self._restore_ack = None
        self._writer.write(protocol.encode_message(
            protocol.restore_request(state)))
        await self._writer.drain()
        deadline = asyncio.get_running_loop().time() + timeout_s
        while self._restore_ack is None:
            remaining = deadline - asyncio.get_running_loop().time()
            if remaining <= 0:
                raise TimeoutError("restore reply timed out")
            if not await self._read_some(remaining):
                raise ConnectionError("server closed before restore ack")
        reply = self._restore_ack
        if reply.get("session") is None:
            raise protocol.ProtocolError(
                f"restore refused: {reply.get('error')}")
        return reply["session"]

    async def bye(self, timeout_s: float = 30.0) -> list:
        """Graceful close: returns every event received in this session.

        Sends ``bye``, then reads until the server's answering ``bye``
        (which follows the final drain + flush tail) or the stream ends.
        """
        self._writer.write(protocol.encode_message(protocol.bye()))
        await self._writer.drain()
        deadline = asyncio.get_running_loop().time() + timeout_s
        while not self._bye_seen:
            remaining = deadline - asyncio.get_running_loop().time()
            if remaining <= 0:
                raise TimeoutError("bye handshake timed out")
            if not await self._read_some(remaining):
                break
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass
        return self.events
