"""Load generator: N simulated 100 Hz devices against one serve process.

Each simulated device opens its own protocol session and paces synthetic
sensor frames at the configured rate using **absolute** send deadlines
(so scheduling jitter never silently lowers the offered load), while a
concurrent read keeps draining recognition events.  At the end of the
run every device closes with a graceful ``bye`` — the server flushes its
pipeline and returns the tail — and a final control connection pulls the
server's metrics snapshot.

The :class:`LoadReport` distils the run into the numbers the CI gate
checks: sessions per core, p99 enqueue→processed frame latency, the
deadline-miss rate against the serving SLO, and the backpressure drop
count.  Event-count fidelity is asserted separately by replaying the
same frames through an in-process engine (zero lost events — see
``benchmarks/test_serve_throughput.py``).

All devices replay the same synthesized capture (one
:class:`~repro.datasets.generator.CampaignGenerator` stream, generated
once), so the offered load is deterministic for a given seed and the
per-session event streams are directly comparable.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field

from repro.acquisition.stream import RssFrame, stream_frames
from repro.datasets import CampaignConfig, CampaignGenerator
from repro.faults import FaultSchedule, FrameDropFault
from repro.obs import MetricsSnapshot
from repro.obs.telemetry import TimelineWriter, summarize_timeline
from repro.serve.client import ServeClient
from repro.serve.shard import shard_for_tenant

__all__ = ["LoadConfig", "LoadReport", "Pacer", "make_device_frames",
           "run_load"]


@dataclass(frozen=True)
class LoadConfig:
    """Shape of one load run."""

    host: str = "127.0.0.1"
    port: int = 0
    sessions: int = 64
    duration_s: float = 5.0
    rate_hz: float = 100.0
    frames_per_send: int = 10
    tenant: str = "loadgen"
    #: spread devices across this many tenants (``tenant-0`` …); >1 is
    #: what exercises shard-by-tenant routing under a fleet front-end
    tenants: int = 1
    seed: int = 2020
    #: 0 disables fault injection; >0 scales a seeded frame-drop
    #: schedule applied to the shared device capture, so the offered
    #: load carries index gaps (an SLO breach the telemetry must catch)
    fault_intensity: float = 0.0

    def __post_init__(self) -> None:
        if self.sessions < 1:
            raise ValueError("sessions must be >= 1")
        if self.tenants < 1:
            raise ValueError("tenants must be >= 1")
        if not 0.0 <= self.fault_intensity:
            raise ValueError("fault_intensity must be >= 0")
        if self.duration_s <= 0:
            raise ValueError("duration_s must be > 0")
        if self.rate_hz <= 0:
            raise ValueError("rate_hz must be > 0")
        if self.frames_per_send < 1:
            raise ValueError("frames_per_send must be >= 1")

    def device_tenant(self, device: int) -> str:
        """The tenant id device *device* belongs to."""
        if self.tenants <= 1:
            return self.tenant
        return f"{self.tenant}-{device % self.tenants}"


class Pacer:
    """Absolute-deadline batch pacing with drift accounting.

    Batch ``k`` is scheduled at exactly ``start + k * period`` — every
    deadline is computed from the *anchor*, never from the previous
    send, so per-batch lateness can never accumulate into cumulative
    drift: a device that falls 3 ms behind on one batch has the full
    period (not period − 3 ms… shrinking forever) to catch up, and at
    1 000 sessions the offered load stays exactly ``rate_hz`` per
    device no matter how the scheduler jitters individual sends.

    What absolute pacing *cannot* hide is booked instead of ignored:
    :meth:`mark_send` compares each send against its scheduled slot and
    tallies ``late_batches`` / ``max_lag_s``, which the load report
    surfaces — a run whose sender lagged its own schedule is measuring
    a lower offered load than configured, and the gate needs to see it.

    The clock is injected so unit tests drive virtual time.
    """

    __slots__ = ("period_s", "start_s", "batches", "late_batches",
                 "max_lag_s", "lag_tolerance_s", "_clock")

    def __init__(self, period_s: float, clock=time.monotonic,
                 start_s: float | None = None,
                 lag_tolerance_s: float | None = None) -> None:
        if period_s <= 0:
            raise ValueError(f"period_s must be > 0, got {period_s}")
        self.period_s = float(period_s)
        self._clock = clock
        self.start_s = clock() if start_s is None else float(start_s)
        self.batches = 0
        self.late_batches = 0
        self.max_lag_s = 0.0
        #: a send within 1% of a period of its slot counts as on time
        self.lag_tolerance_s = (self.period_s * 0.01
                                if lag_tolerance_s is None
                                else float(lag_tolerance_s))

    def mark_send(self) -> float:
        """Book the send happening *now* against its scheduled slot.

        Returns the lag in seconds (> 0 means the send started late).
        """
        scheduled = self.start_s + self.batches * self.period_s
        lag = self._clock() - scheduled
        if lag > self.lag_tolerance_s:
            self.late_batches += 1
        if lag > self.max_lag_s:
            self.max_lag_s = lag
        return lag

    def next_deadline(self) -> float:
        """Advance one batch; returns the next send's absolute deadline.

        Always ``start + n * period`` — anchored, drift-free.
        """
        self.batches += 1
        return self.start_s + self.batches * self.period_s


@dataclass
class LoadReport:
    """What one load run measured (JSON-ready via :meth:`to_dict`)."""

    sessions: int
    duration_s: float
    rate_hz: float
    frames_sent: int
    events_received: int
    backpressure_drops: float
    deadline_misses: float
    frame_latency_p50_s: float | None
    frame_latency_p95_s: float | None
    frame_latency_p99_s: float | None
    latency_slo_s: float | None
    wall_s: float
    cpu_s: float
    per_session_events: list[int] = field(default_factory=list)
    fault_intensity: float = 0.0
    heartbeat_rtt_p50_ms: float | None = None
    heartbeat_rtt_p99_ms: float | None = None
    telemetry_ticks: int = 0
    alerts_fired: int = 0
    #: sender-side schedule fidelity (see :class:`Pacer`): batches that
    #: started late against their absolute slot, and the worst lag
    late_batches: int = 0
    max_send_lag_s: float = 0.0
    #: tenants the devices were spread across (sharded runs route these)
    tenants: int = 1

    @property
    def deadline_miss_rate(self) -> float:
        """Fraction of processed frames over the serving SLO."""
        if self.frames_sent == 0:
            return 0.0
        return self.deadline_misses / self.frames_sent

    @property
    def sessions_per_core(self) -> float:
        """How many such sessions one saturated core would sustain.

        The run used ``cpu_s`` of CPU to serve ``sessions`` devices for
        ``wall_s`` seconds; at 100% utilisation the same core supports
        ``sessions * wall_s / cpu_s`` of them.
        """
        if self.cpu_s <= 0:
            return float("inf")
        return self.sessions * self.wall_s / self.cpu_s

    def to_dict(self) -> dict:
        """Plain-data payload for the CI artifact."""
        return {
            "sessions": self.sessions,
            "duration_s": self.duration_s,
            "rate_hz": self.rate_hz,
            "frames_sent": self.frames_sent,
            "events_received": self.events_received,
            "backpressure_drops": self.backpressure_drops,
            "deadline_misses": self.deadline_misses,
            "deadline_miss_rate": self.deadline_miss_rate,
            "frame_latency_p50_s": self.frame_latency_p50_s,
            "frame_latency_p95_s": self.frame_latency_p95_s,
            "frame_latency_p99_s": self.frame_latency_p99_s,
            "latency_slo_s": self.latency_slo_s,
            "wall_s": self.wall_s,
            "cpu_s": self.cpu_s,
            "sessions_per_core": self.sessions_per_core,
            "per_session_events": list(self.per_session_events),
            "fault_intensity": self.fault_intensity,
            "heartbeat_rtt_p50_ms": self.heartbeat_rtt_p50_ms,
            "heartbeat_rtt_p99_ms": self.heartbeat_rtt_p99_ms,
            "telemetry_ticks": self.telemetry_ticks,
            "alerts_fired": self.alerts_fired,
            "late_batches": self.late_batches,
            "max_send_lag_s": self.max_send_lag_s,
            "tenants": self.tenants,
        }


def make_device_frames(config: LoadConfig) -> list[RssFrame]:
    """The deterministic frame sequence every simulated device replays.

    Long enough to cover ``duration_s`` at ``rate_hz``; devices cycle
    through it (re-anchoring indices) if the run outlasts the capture.
    """
    n_needed = int(config.duration_s * config.rate_hz) + 1
    generator = CampaignGenerator(config=CampaignConfig(
        n_users=1, n_sessions=1, repetitions=1, seed=config.seed))
    sample = generator.stream(0, ["click", "circle", "scroll_up"],
                              idle_s=0.5, lead_in_s=0.5)
    if config.fault_intensity > 0:
        schedule = FaultSchedule(
            faults=(FrameDropFault(),),
            seed=config.seed).at(config.fault_intensity)
        # dropped frames keep their original indices, so the gaps ride
        # the wire into the server's pipeline as StreamGap breaches
        capture = list(schedule.stream(sample.recording, "loadgen"))
    else:
        capture = list(stream_frames(sample.recording))
    frames: list[RssFrame] = []
    base = 0
    while len(frames) < n_needed:
        frames.extend(RssFrame(index=base + f.index, time_s=f.time_s,
                               values=f.values) for f in capture)
        # re-anchor past the highest ORIGINAL index: a faulted capture
        # holds fewer frames than indices, and reusing len(capture)
        # would overlap cycles
        base += capture[-1].index + 1
    return frames[:n_needed]


def _device_endpoint(config: LoadConfig, port: int,
                     shards: list[dict] | None,
                     tenant: str) -> tuple[str, int]:
    """Where this device connects: the shard owning its tenant, or the
    single server."""
    if not shards:
        return config.host, port
    entry = shards[shard_for_tenant(tenant, len(shards))]
    return entry["host"], entry["port"]


async def _drive_device(config: LoadConfig, port: int, device: int,
                        frames: list[RssFrame],
                        shards: list[dict] | None = None
                        ) -> tuple[ServeClient, Pacer]:
    """One device: paced sends at rate_hz, opportunistic event reads.

    Devices are phase-staggered across up to a second — real devices are
    never clock-synchronized, and since every simulated device replays
    the *same* capture, a lock-stepped fleet would hit each expensive
    gesture-segment region simultaneously and measure a thundering herd
    instead of steady-state load.
    """
    loop = asyncio.get_running_loop()
    send_period_s = config.frames_per_send / config.rate_hz
    stagger_s = min(1.0, config.duration_s / 4)
    phase_s = (device / config.sessions) * stagger_s
    if phase_s > 0:
        await asyncio.sleep(phase_s)
    tenant = config.device_tenant(device)
    host, device_port = _device_endpoint(config, port, shards, tenant)
    client = await ServeClient.connect(
        host, device_port, tenant, f"dev{device:03d}")
    # one timed heartbeat per device: RTT lands in serve.heartbeat_rtt_ms
    await client.ping()
    pacer = Pacer(send_period_s, clock=loop.time)
    cursor = 0
    while cursor < len(frames):
        batch = frames[cursor:cursor + config.frames_per_send]
        cursor += len(batch)
        pacer.mark_send()
        await client.send_frames(batch)
        # absolute pacing: late batches do not stretch the run
        next_deadline = pacer.next_deadline()
        while True:
            remaining = next_deadline - loop.time()
            if remaining <= 0:
                break
            await client.pump(timeout_s=remaining)
    await client.bye()
    return client, pacer


async def _watch_telemetry(client: ServeClient, ticks: list[dict],
                           writer: "TimelineWriter | None") -> None:
    """Drain telemetry pushes into *ticks* (and the timeline) forever."""
    while True:
        tick = await client.next_telemetry(timeout_s=3600.0)
        ticks.append(tick)
        if writer is not None:
            writer.write(tick)


async def run_load(config: LoadConfig, port: int | None = None,
                   latency_slo_s: float | None = None,
                   return_events: bool = False,
                   telemetry_path=None,
                   watch_interval_s: float | None = None,
                   shards: list[dict] | None = None):
    """Run the full fleet against ``host:port``; returns the report.

    ``shards`` (a ``[{"shard", "host", "port"}, ...]`` listing, e.g.
    from a fleet ``hello_ack``) routes each device's data connection to
    the shard owning its tenant; the control/telemetry connections still
    go to ``host:port`` — point that at the
    :class:`~repro.serve.shard.FleetControlServer` and the report's
    counters come from the merged fleet snapshot.

    ``port`` overrides ``config.port`` (tests bind port 0 and pass the
    real one in).  ``latency_slo_s`` is recorded in the report for gate
    evaluation; when served in-process the caller knows it from the
    :class:`~repro.serve.session.ServeConfig`.  With ``return_events``
    the result is ``(report, per_device_events)`` — the decoded event
    list of every device, for fidelity gates that compare the wire
    output against an in-process replay.

    ``telemetry_path`` subscribes a dedicated ``watch`` connection for
    the whole run and appends every pushed tick to that JSONL timeline
    (``watch_interval_s`` tunes the push cadence); the report then
    carries ``telemetry_ticks`` and the number of distinct alert
    episodes observed.  This requires telemetry enabled server-side.
    """
    if port is None:
        port = config.port
    frames = make_device_frames(config)
    ticks: list[dict] = []
    watcher: ServeClient | None = None
    watch_task: asyncio.Task | None = None
    writer: TimelineWriter | None = None
    if telemetry_path is not None or watch_interval_s is not None:
        watcher = await ServeClient.connect(config.host, port,
                                            config.tenant, "telemetry-watch")
        await watcher.watch(watch_interval_s)
        if telemetry_path is not None:
            writer = TimelineWriter(telemetry_path)
        watch_task = asyncio.create_task(
            _watch_telemetry(watcher, ticks, writer))
    wall_start = time.perf_counter()
    cpu_start = time.process_time()
    results = await asyncio.gather(*[
        _drive_device(config, port, device, frames, shards=shards)
        for device in range(config.sessions)])
    wall_s = time.perf_counter() - wall_start
    cpu_s = time.process_time() - cpu_start
    clients = [client for client, _pacer in results]
    pacers = [pacer for _client, pacer in results]
    if watch_task is not None:
        watch_task.cancel()
        try:
            await watch_task
        except (asyncio.CancelledError, Exception):
            pass
        if writer is not None:
            writer.close()
        try:
            await watcher.bye(timeout_s=5.0)
        except Exception:
            pass

    # one control connection for the server-side counters
    control = await ServeClient.connect(config.host, port,
                                        config.tenant, "control")
    stats = await control.stats()
    await control.bye()
    snapshot = MetricsSnapshot.from_dict(stats.get("metrics", {}))
    drops = sum(v for k, v in snapshot.counters.items()
                if k.startswith("serve.backpressure_drops"))
    misses = snapshot.counters.get("serve.deadline_miss", 0.0)
    latency_key = "serve.frame_latency_seconds"
    has_latency = latency_key in snapshot.histograms

    report = LoadReport(
        sessions=config.sessions,
        duration_s=config.duration_s,
        rate_hz=config.rate_hz,
        frames_sent=len(frames) * config.sessions,
        events_received=sum(len(c.events) for c in clients),
        backpressure_drops=drops,
        deadline_misses=misses,
        frame_latency_p50_s=(snapshot.quantile(latency_key, 0.50)
                             if has_latency else None),
        frame_latency_p95_s=(snapshot.quantile(latency_key, 0.95)
                             if has_latency else None),
        frame_latency_p99_s=(snapshot.quantile(latency_key, 0.99)
                             if has_latency else None),
        latency_slo_s=latency_slo_s,
        wall_s=wall_s,
        cpu_s=cpu_s,
        per_session_events=[len(c.events) for c in clients],
        fault_intensity=config.fault_intensity,
        heartbeat_rtt_p50_ms=_rtt_quantile(clients, 0.50),
        heartbeat_rtt_p99_ms=_rtt_quantile(clients, 0.99),
        telemetry_ticks=len(ticks),
        alerts_fired=summarize_timeline(ticks)["alerts"]["fired"],
        late_batches=sum(p.late_batches for p in pacers),
        max_send_lag_s=max((p.max_lag_s for p in pacers), default=0.0),
        tenants=config.tenants)
    if return_events:
        return report, [c.events for c in clients]
    return report


def _rtt_quantile(clients: list[ServeClient], q: float) -> float | None:
    """Nearest-rank quantile (ms) of every device's measured RTTs."""
    rtts = sorted(r for c in clients for r in c.rtts_s)
    if not rtts:
        return None
    rank = min(len(rtts) - 1, max(0, int(q * len(rtts))))
    return rtts[rank] * 1e3
