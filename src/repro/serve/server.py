"""Asyncio ingestion front-end for the gesture serving layer.

One :class:`AirFingerServer` multiplexes N device connections over a
single event loop into a shared :class:`~repro.serve.session.SessionManager`.
Per connection:

* the **reader task** does the hello handshake, then decodes incoming
  messages and enqueues sensor frames onto the session's bounded queue
  (backpressure drops are booked by the manager and surface downstream
  as :class:`~repro.core.events.StreamGap` events);
* the **pump task** waits on a wake event the reader sets after every
  frame batch, drains the queue through the manager's batching dispatch,
  and writes the resulting events back — consecutive wakes coalesce, so
  a client sending faster than the pipeline drains gets fewer, larger
  ``feed_block`` batches instead of an unbounded task pile-up;
* a ``bye`` triggers a final drain + engine flush, the tail events, and
  a ``bye`` echo before the connection closes.

A background reaper evicts sessions idle past
``ServeConfig.idle_timeout_s``, delivering their flush tail before
closing the transport, and the pump sends protocol heartbeats during
output silence.  All pipeline work runs inline on the loop — sessions
are CPU-bound and share one core per server process; horizontal scale is
one process per core (the load generator measures exactly this:
sessions/core).
"""

from __future__ import annotations

import asyncio
import contextlib

from repro.serve import protocol
from repro.serve.session import ServeConfig, ServeSession, SessionManager

__all__ = ["AirFingerServer"]


class _Connection:
    """Per-connection plumbing shared by the reader and pump tasks."""

    __slots__ = ("reader", "writer", "session", "wake", "closing",
                 "said_bye")

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter) -> None:
        self.reader = reader
        self.writer = writer
        self.session: ServeSession | None = None
        self.wake = asyncio.Event()
        self.closing = False
        self.said_bye = False


class AirFingerServer:
    """TCP server speaking the :mod:`repro.serve.protocol` wire format.

    Parameters
    ----------
    manager:
        The session manager doing the actual work; one per server.
    host / port:
        Bind address.  ``port=0`` picks a free port (tests); the bound
        port is available as :attr:`port` after :meth:`start`.
    """

    def __init__(self, manager: SessionManager,
                 host: str = "127.0.0.1", port: int = 0) -> None:
        self.manager = manager
        self.host = host
        self.port = port
        self._server: asyncio.AbstractServer | None = None
        self._reaper: asyncio.Task | None = None
        #: live connections by session key, for eviction delivery
        self._connections: dict[tuple[str, str], _Connection] = {}

    @property
    def config(self) -> ServeConfig:
        return self.manager.config

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind and start accepting connections (+ the idle reaper)."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        self._reaper = asyncio.create_task(self._reap_idle())

    async def stop(self) -> None:
        """Stop accepting, cancel the reaper, close live connections."""
        if self._reaper is not None:
            self._reaper.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._reaper
            self._reaper = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for conn in list(self._connections.values()):
            conn.closing = True
            conn.wake.set()
            with contextlib.suppress(Exception):
                conn.writer.close()
        self._connections.clear()

    async def serve_forever(self) -> None:
        """Run until cancelled (the ``airfinger serve`` entry point)."""
        if self._server is None:
            await self.start()
        try:
            await self._server.serve_forever()
        finally:
            await self.stop()

    async def __aenter__(self) -> "AirFingerServer":
        await self.start()
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.stop()

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        conn = _Connection(reader, writer)
        pump: asyncio.Task | None = None
        try:
            if not await self._handshake(conn):
                return
            pump = asyncio.create_task(self._pump(conn))
            await self._read_loop(conn)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # peer vanished; eviction reaps the session later
        except protocol.ProtocolError as exc:
            await self._send_error(conn, "protocol", str(exc))
        except Exception as exc:
            # engine/session failure: tell the peer why before closing
            # instead of vanishing mid-conversation
            await self._send_error(
                conn, "internal", f"{type(exc).__name__}: {exc}")
            raise
        finally:
            conn.closing = True
            conn.wake.set()
            if pump is not None:
                with contextlib.suppress(asyncio.CancelledError):
                    await pump
            if (conn.session is not None and self._connections.get(
                    conn.session.key) is conn):
                del self._connections[conn.session.key]
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def _handshake(self, conn: _Connection) -> bool:
        decoder = protocol.MessageDecoder()
        while True:
            data = await conn.reader.read(65536)
            if not data:
                return False
            messages = decoder.feed(data)
            if messages:
                break
        try:
            tenant, session_id = protocol.check_hello(messages[0])
        except protocol.ProtocolError as exc:
            await self._send_error(conn, "handshake", str(exc))
            return False
        conn.session = self.manager.open(tenant, session_id)
        self._connections[conn.session.key] = conn
        await self._send(conn, protocol.hello_ack(
            session_id,
            heartbeat_interval_s=self.config.heartbeat_interval_s,
            max_batch_frames=self.config.max_batch_frames))
        # frames may trail the hello in the same read
        for message in messages[1:]:
            await self._handle_message(conn, message)
        return True

    async def _read_loop(self, conn: _Connection) -> None:
        decoder = protocol.MessageDecoder()
        while not conn.closing:
            data = await conn.reader.read(65536)
            if not data:
                return
            for message in decoder.feed(data):
                await self._handle_message(conn, message)
                if conn.closing:
                    return

    async def _handle_message(self, conn: _Connection,
                              message: dict) -> None:
        kind = message.get("type")
        session = conn.session
        if kind == "frames":
            self.manager.enqueue(session, protocol.decode_frames(message))
            conn.wake.set()
        elif kind == "heartbeat":
            pass
        elif kind == "stats":
            snapshot = self.manager.stats()
            snapshot["metrics"] = (
                self.manager.metrics.snapshot().to_dict())
            await self._send(conn, protocol.stats_reply(snapshot))
        elif kind == "bye":
            conn.said_bye = True
            conn.closing = True
            conn.wake.set()
        else:
            raise protocol.ProtocolError(f"unexpected message type {kind!r}")

    # ------------------------------------------------------------------
    # output pump
    # ------------------------------------------------------------------
    async def _pump(self, conn: _Connection) -> None:
        """Dispatch queued frames and write events until the reader ends."""
        session = conn.session
        heartbeat_s = self.config.heartbeat_interval_s
        while True:
            try:
                await asyncio.wait_for(conn.wake.wait(), timeout=heartbeat_s)
            except asyncio.TimeoutError:
                with contextlib.suppress(ConnectionError):
                    await self._send(conn, protocol.heartbeat())
                continue
            conn.wake.clear()
            while session.pending:
                events = self.manager.dispatch(session)
                if events:
                    with contextlib.suppress(ConnectionError):
                        await self._send(
                            conn, protocol.events_message(events))
                # yield so the reader can enqueue (and so other sessions'
                # pumps interleave between batches)
                await asyncio.sleep(0)
            if conn.closing:
                break
        if conn.said_bye and not session.closed:
            tail = self.manager.close(session, reason="bye")
            with contextlib.suppress(ConnectionError):
                if tail:
                    await self._send(conn, protocol.events_message(tail))
                await self._send(conn, protocol.bye())

    # ------------------------------------------------------------------
    # idle eviction
    # ------------------------------------------------------------------
    async def _reap_idle(self) -> None:
        interval_s = min(self.config.idle_timeout_s / 4,
                         self.config.heartbeat_interval_s)
        while True:
            await asyncio.sleep(interval_s)
            for session, tail in self.manager.evict_idle():
                conn = self._connections.pop(session.key, None)
                if conn is None:
                    continue
                conn.closing = True
                conn.wake.set()
                with contextlib.suppress(ConnectionError):
                    if tail:
                        await self._send(
                            conn, protocol.events_message(tail))
                    await self._send(conn, protocol.bye())
                with contextlib.suppress(Exception):
                    conn.writer.close()

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------
    @staticmethod
    async def _send(conn: _Connection, message: dict) -> None:
        conn.writer.write(protocol.encode_message(message))
        await conn.writer.drain()

    async def _send_error(self, conn: _Connection, code: str,
                          detail: str) -> None:
        with contextlib.suppress(Exception):
            await self._send(conn, protocol.error_message(code, detail))
