"""Asyncio ingestion front-end for the gesture serving layer.

One :class:`AirFingerServer` multiplexes N device connections over a
single event loop into a shared :class:`~repro.serve.session.SessionManager`.
Per connection:

* the **reader task** does the hello handshake, then decodes incoming
  messages and enqueues sensor frames onto the session's bounded queue
  (backpressure drops are booked by the manager and surface downstream
  as :class:`~repro.core.events.StreamGap` events);
* the **pump task** waits on a wake event the reader sets after every
  frame batch, drains the queue through the manager's batching dispatch,
  and writes the resulting events back — consecutive wakes coalesce, so
  a client sending faster than the pipeline drains gets fewer, larger
  ``feed_block`` batches instead of an unbounded task pile-up;
* a ``bye`` triggers a final drain + engine flush, the tail events, and
  a ``bye`` echo before the connection closes.

A background reaper evicts sessions idle past
``ServeConfig.idle_timeout_s``, delivering their flush tail before
closing the transport, and the pump sends protocol heartbeats during
output silence.  A second background task drives the
:class:`~repro.obs.telemetry.TelemetryPlane` (on by default): every
``telemetry_interval_s`` it samples the manager's registry, evaluates
SLO burn rates and health, optionally appends the tick to a JSONL
timeline, and pushes it to every connection subscribed via ``watch``.
All pipeline work runs inline on the loop — sessions
are CPU-bound and share one core per server process; horizontal scale is
one process per core (the load generator measures exactly this:
sessions/core).
"""

from __future__ import annotations

import asyncio
import contextlib
import time

from repro.obs.telemetry import TelemetryPlane, TimelineWriter
from repro.serve import protocol
from repro.serve.session import ServeConfig, ServeSession, SessionManager

__all__ = ["AirFingerServer"]


class _Connection:
    """Per-connection plumbing shared by the reader and pump tasks."""

    __slots__ = ("reader", "writer", "session", "wake", "closing",
                 "said_bye", "watch_every", "watch_phase")

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter) -> None:
        self.reader = reader
        self.writer = writer
        self.session: ServeSession | None = None
        self.wake = asyncio.Event()
        self.closing = False
        self.said_bye = False
        #: push every Nth telemetry tick (0 = not subscribed)
        self.watch_every = 0
        self.watch_phase = 0


class AirFingerServer:
    """TCP server speaking the :mod:`repro.serve.protocol` wire format.

    Parameters
    ----------
    manager:
        The session manager doing the actual work; one per server.
    host / port:
        Bind address.  ``port=0`` picks a free port (tests); the bound
        port is available as :attr:`port` after :meth:`start`.
    telemetry:
        ``True`` (default) builds a :class:`TelemetryPlane` over the
        manager's registry; pass a pre-configured plane (custom policy,
        thresholds, clocks) or ``False``/``None`` to disable live
        telemetry — ``watch`` then fails with a protocol error.
    telemetry_interval_s:
        Sampling cadence of the default-built plane.
    timeline_path:
        When set, every telemetry tick is appended to this JSONL file
        (replayable with ``airfinger telemetry``).
    reuse_port:
        Bind with ``SO_REUSEPORT`` so several server processes share one
        port and the kernel balances incoming connections across them
        (the shard front-end's preferred mode on platforms that have it).
    wall_clock / mono_clock:
        Injectable time sources.  The wall clock (``time.time``) only
        ever stamps ``server_time_s`` for human display and cross-host
        correlation; every duration — uptime, rates — derives from the
        monotonic clock, so an NTP step never bends a measurement.
        Tests inject both to pin that contract.
    """

    def __init__(self, manager: SessionManager,
                 host: str = "127.0.0.1", port: int = 0,
                 telemetry: TelemetryPlane | bool | None = True,
                 telemetry_interval_s: float = 1.0,
                 timeline_path=None, reuse_port: bool = False,
                 wall_clock=time.time, mono_clock=time.monotonic) -> None:
        self.manager = manager
        self.host = host
        self.port = port
        self.reuse_port = reuse_port
        self._wall_clock = wall_clock
        self._mono_clock = mono_clock
        if telemetry is True:
            telemetry = TelemetryPlane(metrics=manager.metrics,
                                       interval_s=telemetry_interval_s)
        elif telemetry is False:
            telemetry = None
        self.telemetry: TelemetryPlane | None = telemetry
        self.timeline_path = timeline_path
        self._timeline: TimelineWriter | None = None
        self._server: asyncio.AbstractServer | None = None
        self._reaper: asyncio.Task | None = None
        self._telemetry_task: asyncio.Task | None = None
        self._started_wall = 0.0
        self._started_mono = 0.0
        #: live connections by session key, for eviction delivery
        self._connections: dict[tuple[str, str], _Connection] = {}

    @property
    def config(self) -> ServeConfig:
        return self.manager.config

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind and start accepting connections (+ background tasks)."""
        kwargs = {"reuse_port": True} if self.reuse_port else {}
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port, **kwargs)
        self.port = self._server.sockets[0].getsockname()[1]
        self._started_wall = self._wall_clock()
        self._started_mono = self._mono_clock()
        self._reaper = asyncio.create_task(self._reap_idle())
        if self.telemetry is not None:
            if self.timeline_path is not None:
                self._timeline = TimelineWriter(self.timeline_path)
            self._telemetry_task = asyncio.create_task(
                self._telemetry_loop())

    @property
    def uptime_s(self) -> float:
        """Seconds since :meth:`start` (0.0 before it); monotonic."""
        if not self._started_mono:
            return 0.0
        return self._mono_clock() - self._started_mono

    def clock_stamps(self) -> tuple[float, float, float]:
        """``(server_time_s, server_mono_s, uptime_s)`` read coherently.

        One read per clock: the wall stamp is display-only, while the
        monotonic stamp and the uptime derive from the *same* monotonic
        reading — so two ``stats_reply`` messages always diff into a
        positive elapsed time, no matter what NTP did to the wall clock
        in between.
        """
        wall = self._wall_clock()
        mono = self._mono_clock()
        uptime = mono - self._started_mono if self._started_mono else 0.0
        return wall, mono, uptime

    async def stop(self) -> None:
        """Stop accepting, cancel background tasks, close connections."""
        for task_attr in ("_reaper", "_telemetry_task"):
            task = getattr(self, task_attr)
            if task is not None:
                task.cancel()
                with contextlib.suppress(asyncio.CancelledError):
                    await task
                setattr(self, task_attr, None)
        if self._timeline is not None:
            self._timeline.close()
            self._timeline = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for conn in list(self._connections.values()):
            conn.closing = True
            conn.wake.set()
            with contextlib.suppress(Exception):
                conn.writer.close()
        self._connections.clear()

    async def serve_forever(self) -> None:
        """Run until cancelled (the ``airfinger serve`` entry point)."""
        if self._server is None:
            await self.start()
        try:
            await self._server.serve_forever()
        finally:
            await self.stop()

    async def __aenter__(self) -> "AirFingerServer":
        await self.start()
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.stop()

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        conn = _Connection(reader, writer)
        pump: asyncio.Task | None = None
        try:
            if not await self._handshake(conn):
                return
            pump = asyncio.create_task(self._pump(conn))
            await self._read_loop(conn)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # peer vanished; eviction reaps the session later
        except protocol.ProtocolError as exc:
            await self._send_error(conn, "protocol", str(exc))
        except Exception as exc:
            # engine/session failure: tell the peer why before closing
            # instead of vanishing mid-conversation
            await self._send_error(
                conn, "internal", f"{type(exc).__name__}: {exc}")
            raise
        finally:
            conn.closing = True
            conn.wake.set()
            if pump is not None:
                with contextlib.suppress(asyncio.CancelledError):
                    await pump
            if (conn.session is not None and self._connections.get(
                    conn.session.key) is conn):
                del self._connections[conn.session.key]
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def _handshake(self, conn: _Connection) -> bool:
        decoder = protocol.MessageDecoder()
        while True:
            data = await conn.reader.read(65536)
            if not data:
                return False
            messages = decoder.feed(data)
            if messages:
                break
        try:
            tenant, session_id = protocol.check_hello(messages[0])
        except protocol.ProtocolError as exc:
            await self._send_error(conn, "handshake", str(exc))
            return False
        conn.session = self.manager.open(tenant, session_id)
        self._connections[conn.session.key] = conn
        await self._send(conn, self._hello_ack_message(session_id))
        # frames may trail the hello in the same read
        for message in messages[1:]:
            await self._handle_message(conn, message)
        return True

    def _hello_ack_message(self, session_id: str) -> dict:
        """The handshake answer; fleet front-ends add a shard listing."""
        return protocol.hello_ack(
            session_id,
            heartbeat_interval_s=self.config.heartbeat_interval_s,
            max_batch_frames=self.config.max_batch_frames)

    async def _read_loop(self, conn: _Connection) -> None:
        decoder = protocol.MessageDecoder()
        while not conn.closing:
            data = await conn.reader.read(65536)
            if not data:
                return
            for message in decoder.feed(data):
                await self._handle_message(conn, message)
                if conn.closing:
                    return

    async def _handle_message(self, conn: _Connection,
                              message: dict) -> None:
        kind = message.get("type")
        session = conn.session
        if kind == "frames":
            self.manager.enqueue(session, protocol.decode_frames(message))
            conn.wake.set()
        elif kind == "heartbeat":
            # a timestamped ping wants its `t` echoed back (client RTT)
            t = message.get("t")
            if t is not None:
                await self._send(conn, protocol.heartbeat(echo=t))
        elif kind == "stats":
            snapshot = await self._stats_payload()
            wall, mono, uptime = self.clock_stamps()
            await self._send(conn, protocol.stats_reply(
                snapshot, server_time_s=wall, server_mono_s=mono,
                uptime_s=uptime))
        elif kind == "watch":
            self._handle_watch(conn, message)
        elif kind == "checkpoint":
            await self._handle_checkpoint(conn, message)
        elif kind == "restore":
            await self._handle_restore(conn, message)
        elif kind == "bye":
            conn.said_bye = True
            conn.closing = True
            conn.wake.set()
        else:
            raise protocol.ProtocolError(f"unexpected message type {kind!r}")

    async def _stats_payload(self) -> dict:
        """The ``stats_reply`` body; fleet front-ends merge shards here."""
        snapshot = self.manager.stats()
        snapshot["metrics"] = self.manager.metrics.snapshot().to_dict()
        return snapshot

    # ------------------------------------------------------------------
    # migration control
    # ------------------------------------------------------------------
    async def _handle_checkpoint(self, conn: _Connection,
                                 message: dict) -> None:
        """Capture + detach a session; reply its serialized state."""
        from repro.serve import checkpoint as ckpt
        tenant = message.get("tenant")
        session_id = message.get("session")
        target = self.manager.get(str(tenant), str(session_id))
        if target is None:
            await self._send(conn, protocol.checkpoint_reply(
                None, error=f"no live session {tenant!r}/{session_id!r}"))
            return
        # drop the device connection first so no frame can slip into the
        # session between capture and detach
        owner = self._connections.pop(target.key, None)
        if owner is not None and owner is not conn:
            owner.closing = True
            owner.wake.set()
            with contextlib.suppress(Exception):
                owner.writer.close()
        state = ckpt.checkpoint_session(self.manager, target)
        await self._send(conn, protocol.checkpoint_reply(state))

    async def _handle_restore(self, conn: _Connection,
                              message: dict) -> None:
        """Adopt a checkpointed session shipped by a shard peer."""
        from repro.serve import checkpoint as ckpt
        state = message.get("state")
        try:
            session = ckpt.restore_session(self.manager, state)
        except (ValueError, KeyError, TypeError) as exc:
            await self._send(conn, protocol.restore_reply(
                None, error=f"restore failed: {exc}"))
            return
        await self._send(conn, protocol.restore_reply(session.session_id))

    # ------------------------------------------------------------------
    # output pump
    # ------------------------------------------------------------------
    async def _pump(self, conn: _Connection) -> None:
        """Dispatch queued frames and write events until the reader ends."""
        session = conn.session
        heartbeat_s = self.config.heartbeat_interval_s
        while True:
            try:
                await asyncio.wait_for(conn.wake.wait(), timeout=heartbeat_s)
            except asyncio.TimeoutError:
                with contextlib.suppress(ConnectionError):
                    await self._send(conn, protocol.heartbeat())
                continue
            conn.wake.clear()
            while session.pending:
                events = self.manager.dispatch(session)
                if events:
                    with contextlib.suppress(ConnectionError):
                        await self._send(
                            conn, protocol.events_message(events))
                # yield so the reader can enqueue (and so other sessions'
                # pumps interleave between batches)
                await asyncio.sleep(0)
            if conn.closing:
                break
        if conn.said_bye and not session.closed:
            tail = self.manager.close(session, reason="bye")
            with contextlib.suppress(ConnectionError):
                if tail:
                    await self._send(conn, protocol.events_message(tail))
                await self._send(conn, protocol.bye())

    # ------------------------------------------------------------------
    # idle eviction
    # ------------------------------------------------------------------
    async def _reap_idle(self) -> None:
        interval_s = min(self.config.idle_timeout_s / 4,
                         self.config.heartbeat_interval_s)
        while True:
            await asyncio.sleep(interval_s)
            for session, tail in self.manager.evict_idle():
                conn = self._connections.pop(session.key, None)
                if conn is None:
                    continue
                conn.closing = True
                conn.wake.set()
                with contextlib.suppress(ConnectionError):
                    if tail:
                        await self._send(
                            conn, protocol.events_message(tail))
                    await self._send(conn, protocol.bye())
                with contextlib.suppress(Exception):
                    conn.writer.close()

    # ------------------------------------------------------------------
    # telemetry
    # ------------------------------------------------------------------
    def _handle_watch(self, conn: _Connection, message: dict) -> None:
        if self.telemetry is None:
            raise protocol.ProtocolError(
                "telemetry is disabled on this server; watch unavailable")
        interval = message.get("interval_s")
        if interval is not None and float(interval) <= 0:
            conn.watch_every = 0
            return
        tick_s = self.telemetry.interval_s
        # never push faster than the plane samples; round a slower
        # request to the nearest whole number of ticks
        every = 1 if interval is None else max(
            1, round(float(interval) / tick_s))
        conn.watch_every = every
        conn.watch_phase = 0

    async def _telemetry_tick(self) -> dict:
        """One telemetry sample; fleet front-ends refresh shards first."""
        return self.telemetry.tick()

    async def _telemetry_loop(self) -> None:
        plane = self.telemetry
        while True:
            await asyncio.sleep(plane.interval_s)
            tick = await self._telemetry_tick()
            if self._timeline is not None:
                self._timeline.write(tick)
            message = None
            for conn in list(self._connections.values()):
                if conn.watch_every <= 0 or conn.closing:
                    continue
                conn.watch_phase += 1
                if conn.watch_phase < conn.watch_every:
                    continue
                conn.watch_phase = 0
                if message is None:
                    message = protocol.telemetry_message(tick)
                with contextlib.suppress(ConnectionError, OSError):
                    await self._send(conn, message)

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------
    @staticmethod
    async def _send(conn: _Connection, message: dict) -> None:
        conn.writer.write(protocol.encode_message(message))
        await conn.writer.drain()

    async def _send_error(self, conn: _Connection, code: str,
                          detail: str) -> None:
        with contextlib.suppress(Exception):
            await self._send(conn, protocol.error_message(code, detail))
