"""The versioned, length-framed wire protocol of the serving layer.

One gesture-serving connection speaks a simple framed protocol over any
ordered byte stream (TCP here; the framing is transport-agnostic):

* every message is a 4-byte big-endian length prefix followed by a JSON
  body (UTF-8).  JSON keeps float fidelity — Python serializes floats
  with ``repr``, which is shortest-round-trip, so event payloads survive
  the wire bit-exactly;
* the first message on a connection MUST be a ``hello`` carrying the
  protocol name, version, tenant and session id; the server answers
  ``hello_ack`` (or a terminal ``error`` on a name/version mismatch);
* sensor data flows client → server as ``frames`` batches (per-frame
  ``[index, time_s, [values...]]`` triples — index gaps survive the wire,
  which is how dropped packets surface as pipeline ``StreamGap``
  events); recognition output flows server → client as ``events``
  batches; ``heartbeat`` flows both ways during silence;
* ``stats`` asks the server for its ``repro.obs`` snapshot
  (``stats_reply``, stamped with the server's clocks — see the contract
  below), ``watch`` subscribes the connection to periodic ``telemetry``
  pushes from the server's
  :class:`~repro.obs.telemetry.TelemetryPlane` (rates, sliding
  quantiles, health states, firing alerts — what ``airfinger top``
  renders), and ``bye`` closes the session cleanly: the server drains
  the queue, flushes the pipeline, sends the tail events and a final
  ``bye``;
* ``checkpoint``/``checkpoint_reply`` and ``restore``/``restore_reply``
  are the shard-migration control pair: a checkpoint captures one
  session's streaming-engine state (:mod:`repro.serve.checkpoint`) and
  detaches it, a restore adopts that state on another worker.

**Clock contract (v2 stats stamps).**  ``server_time_s`` is the
server's *wall* clock — display and cross-host log correlation only; an
NTP step can bend it either way.  ``server_mono_s`` and ``uptime_s``
come from the server's *monotonic* clock (one coherent reading per
reply), so every duration or rate a client derives from two replies
must subtract the monotonic stamps, never the wall stamps.  The
heartbeat ``t``/``echo`` RTT mechanism is likewise wall-free: the echo
carries the *sender's own* monotonic reading back, so RTT needs no
clock agreement at all.

Protocol v2 added the ``watch``/``telemetry`` pair, the optional
``t``/``echo`` heartbeat fields (RTT measurement) and the stats clock
stamps; later additions within v2 (``server_mono_s``, the
checkpoint/restore control pair, the ``shards`` field of ``hello_ack``)
are additive as well — a v2 peer ignores their absence.

:func:`encode_event`/:func:`decode_event` round-trip every pipeline
event dataclass (:class:`SegmentEvent`, :class:`GestureEvent`,
:class:`ScrollUpdate`, :class:`StreamGap`, :class:`ChannelMaskEvent`)
exactly — the loopback fidelity suite pins ``repr`` equality between
events received over a serve session and an in-process
:meth:`AirFinger.feed_frames <repro.core.pipeline.AirFinger.feed_frames>`
replay.
"""

from __future__ import annotations

import json
import struct
from typing import Iterable, Iterator

from repro.acquisition.stream import FrameBlock, RssFrame
from repro.core.events import (
    ChannelMaskEvent,
    GestureEvent,
    ScrollUpdate,
    SegmentEvent,
    StreamGap,
)

__all__ = [
    "PROTOCOL_NAME",
    "PROTOCOL_VERSION",
    "MAX_MESSAGE_BYTES",
    "ProtocolError",
    "encode_message",
    "MessageDecoder",
    "hello",
    "hello_ack",
    "check_hello",
    "frames_message",
    "decode_frames",
    "events_message",
    "decode_events",
    "encode_event",
    "decode_event",
    "iter_decoded_events",
    "heartbeat",
    "stats_request",
    "stats_reply",
    "checkpoint_request",
    "checkpoint_reply",
    "restore_request",
    "restore_reply",
    "watch",
    "telemetry_message",
    "bye",
    "error_message",
]

#: Protocol identity carried (and checked) in every ``hello``.
PROTOCOL_NAME = "airfinger-serve"
#: Bump on any wire-incompatible change; the handshake rejects mismatches.
#: v2: watch/telemetry, heartbeat RTT echo, stats time/uptime stamps.
PROTOCOL_VERSION = 2
#: Upper bound on one framed message; a peer announcing more is corrupt
#: (or hostile) and the decoder refuses to buffer it.
MAX_MESSAGE_BYTES = 8 * 1024 * 1024

_HEADER = struct.Struct("!I")


class ProtocolError(ValueError):
    """A peer violated the wire protocol (framing, handshake, payload)."""


# ---------------------------------------------------------------------------
# framing
# ---------------------------------------------------------------------------

def encode_message(message: dict) -> bytes:
    """Frame *message* as ``length || JSON``; the inverse of the decoder."""
    body = json.dumps(message, separators=(",", ":"),
                      allow_nan=False).encode("utf-8")
    if len(body) > MAX_MESSAGE_BYTES:
        raise ProtocolError(
            f"message of {len(body)} bytes exceeds the "
            f"{MAX_MESSAGE_BYTES}-byte frame limit")
    return _HEADER.pack(len(body)) + body


class MessageDecoder:
    """Incremental frame reassembler for one connection.

    Feed it whatever the transport hands you — single bytes, half
    messages, ten messages at once — and it yields every completed
    message in order.  State is just one ``bytearray``.
    """

    __slots__ = ("_buffer",)

    def __init__(self) -> None:
        self._buffer = bytearray()

    @property
    def bytes_buffered(self) -> int:
        """Bytes received but not yet part of a complete message."""
        return len(self._buffer)

    def feed(self, data: bytes) -> list[dict]:
        """Absorb *data*; return every message it completed."""
        self._buffer.extend(data)
        messages: list[dict] = []
        while True:
            if len(self._buffer) < _HEADER.size:
                return messages
            (length,) = _HEADER.unpack_from(self._buffer)
            if length > MAX_MESSAGE_BYTES:
                raise ProtocolError(
                    f"peer announced a {length}-byte frame "
                    f"(limit {MAX_MESSAGE_BYTES}); stream is corrupt")
            end = _HEADER.size + length
            if len(self._buffer) < end:
                return messages
            body = bytes(self._buffer[_HEADER.size:end])
            del self._buffer[:end]
            try:
                message = json.loads(body)
            except ValueError as exc:
                raise ProtocolError(f"undecodable message body: {exc}")
            if not isinstance(message, dict) or "type" not in message:
                raise ProtocolError(
                    "message must be a JSON object with a 'type' field")
            messages.append(message)


# ---------------------------------------------------------------------------
# handshake
# ---------------------------------------------------------------------------

def hello(tenant: str, session: str,
          sample_rate_hz: float | None = None) -> dict:
    """The client's opening message: who it is and what it speaks."""
    message = {"type": "hello", "protocol": PROTOCOL_NAME,
               "version": PROTOCOL_VERSION,
               "tenant": str(tenant), "session": str(session)}
    if sample_rate_hz is not None:
        message["sample_rate_hz"] = float(sample_rate_hz)
    return message


def hello_ack(session: str, heartbeat_interval_s: float,
              max_batch_frames: int,
              shards: list[dict] | None = None) -> dict:
    """The server's handshake answer, advertising its tuning knobs.

    A fleet control front-end additionally advertises ``shards`` — one
    ``{"shard": i, "host": ..., "port": ...}`` entry per worker — so a
    client can route its data connection with
    :func:`repro.serve.shard.shard_for_tenant`.  Additive: single-process
    servers omit the field.
    """
    message = {"type": "hello_ack", "protocol": PROTOCOL_NAME,
               "version": PROTOCOL_VERSION, "session": str(session),
               "heartbeat_interval_s": float(heartbeat_interval_s),
               "max_batch_frames": int(max_batch_frames)}
    if shards is not None:
        message["shards"] = [
            {"shard": int(s["shard"]), "host": str(s["host"]),
             "port": int(s["port"])} for s in shards]
    return message


def check_hello(message: dict) -> tuple[str, str]:
    """Validate a ``hello``; returns ``(tenant, session)``.

    Raises :class:`ProtocolError` on a wrong message type, protocol name
    or version — version negotiation is deliberately absent (one version
    per deployment; the ack tells the client what the server runs).
    """
    if message.get("type") != "hello":
        raise ProtocolError(
            f"expected hello, got {message.get('type')!r}")
    if message.get("protocol") != PROTOCOL_NAME:
        raise ProtocolError(
            f"unknown protocol {message.get('protocol')!r} "
            f"(this server speaks {PROTOCOL_NAME!r})")
    if message.get("version") != PROTOCOL_VERSION:
        raise ProtocolError(
            f"protocol version {message.get('version')!r} unsupported "
            f"(this server speaks v{PROTOCOL_VERSION})")
    tenant = message.get("tenant")
    session = message.get("session")
    if not tenant or not isinstance(tenant, str):
        raise ProtocolError("hello carries no tenant id")
    if not session or not isinstance(session, str):
        raise ProtocolError("hello carries no session id")
    return tenant, session


# ---------------------------------------------------------------------------
# sensor frames
# ---------------------------------------------------------------------------

def frames_message(frames: Iterable[RssFrame] | FrameBlock) -> dict:
    """Pack a frame batch as ``[[index, time_s, [values...]], ...]``."""
    if isinstance(frames, FrameBlock):
        frames = frames.frames()
    payload = [[f.index, f.time_s, list(f.values)] for f in frames]
    return {"type": "frames", "frames": payload}


def decode_frames(message: dict) -> list[RssFrame]:
    """Rebuild the :class:`RssFrame` batch of a ``frames`` message."""
    try:
        return [RssFrame(index=int(index), time_s=float(time_s),
                         values=tuple(float(v) for v in values))
                for index, time_s, values in message["frames"]]
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"malformed frames payload: {exc}")


# ---------------------------------------------------------------------------
# pipeline events
# ---------------------------------------------------------------------------

def _encode_segment(segment: SegmentEvent) -> dict:
    return {"start_index": segment.start_index,
            "end_index": segment.end_index,
            "start_time_s": segment.start_time_s,
            "end_time_s": segment.end_time_s}


def _decode_segment(payload: dict) -> SegmentEvent:
    return SegmentEvent(
        start_index=int(payload["start_index"]),
        end_index=int(payload["end_index"]),
        start_time_s=float(payload["start_time_s"]),
        end_time_s=float(payload["end_time_s"]))


def encode_event(event) -> dict:
    """One pipeline event as a JSON-ready dict with a ``kind`` tag."""
    if isinstance(event, GestureEvent):
        return {"kind": "gesture", "label": event.label,
                "confidence": event.confidence,
                "segment": _encode_segment(event.segment),
                "accepted": event.accepted}
    if isinstance(event, ScrollUpdate):
        return {"kind": "scroll", "direction": event.direction,
                "velocity_mm_s": event.velocity_mm_s,
                "displacement_mm": event.displacement_mm,
                "time_s": event.time_s, "final": event.final,
                "segment": _encode_segment(event.segment)}
    if isinstance(event, StreamGap):
        return {"kind": "stream_gap", "start_index": event.start_index,
                "end_index": event.end_index,
                "duration_s": event.duration_s, "time_s": event.time_s}
    if isinstance(event, ChannelMaskEvent):
        return {"kind": "channel_mask", "channel": event.channel,
                "masked": event.masked, "reason": event.reason,
                "index": event.index, "time_s": event.time_s}
    if isinstance(event, SegmentEvent):
        return {"kind": "segment", **_encode_segment(event)}
    raise ProtocolError(f"cannot encode event of type {type(event).__name__}")


def decode_event(payload: dict):
    """The inverse of :func:`encode_event`; exact dataclass round-trip."""
    try:
        kind = payload["kind"]
        if kind == "segment":
            return _decode_segment(payload)
        if kind == "gesture":
            return GestureEvent(
                label=str(payload["label"]),
                confidence=float(payload["confidence"]),
                segment=_decode_segment(payload["segment"]),
                accepted=bool(payload["accepted"]))
        if kind == "scroll":
            return ScrollUpdate(
                direction=int(payload["direction"]),
                velocity_mm_s=float(payload["velocity_mm_s"]),
                displacement_mm=float(payload["displacement_mm"]),
                time_s=float(payload["time_s"]),
                final=bool(payload["final"]),
                segment=_decode_segment(payload["segment"]))
        if kind == "stream_gap":
            return StreamGap(
                start_index=int(payload["start_index"]),
                end_index=int(payload["end_index"]),
                duration_s=float(payload["duration_s"]),
                time_s=float(payload["time_s"]))
        if kind == "channel_mask":
            return ChannelMaskEvent(
                channel=int(payload["channel"]),
                masked=bool(payload["masked"]),
                reason=str(payload["reason"]),
                index=int(payload["index"]),
                time_s=float(payload["time_s"]))
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"malformed event payload: {exc}")
    raise ProtocolError(f"unknown event kind {kind!r}")


def events_message(events: Iterable) -> dict:
    """Pack recognition events for the client."""
    return {"type": "events", "events": [encode_event(e) for e in events]}


def decode_events(message: dict) -> list:
    """Rebuild the event batch of an ``events`` message."""
    try:
        payloads = message["events"]
    except KeyError as exc:
        raise ProtocolError(f"malformed events message: {exc}")
    return [decode_event(p) for p in payloads]


def iter_decoded_events(messages: Iterable[dict]) -> Iterator:
    """Flatten the events of every ``events`` message in *messages*."""
    for message in messages:
        if message.get("type") == "events":
            yield from decode_events(message)


# ---------------------------------------------------------------------------
# control
# ---------------------------------------------------------------------------

def heartbeat(t: float | None = None, echo: float | None = None) -> dict:
    """Keep-alive; either peer may send one during silence.

    ``t`` is the sender's clock reading; a peer receiving a heartbeat
    with ``t`` answers one carrying it back as ``echo``, which is how
    :class:`~repro.serve.client.ServeClient` measures round-trip time
    into ``serve.heartbeat_rtt_ms`` without any clock agreement.
    """
    message: dict = {"type": "heartbeat"}
    if t is not None:
        message["t"] = float(t)
    if echo is not None:
        message["echo"] = float(echo)
    return message


def stats_request() -> dict:
    """Ask the server for its metrics snapshot."""
    return {"type": "stats"}


def stats_reply(snapshot: dict, server_time_s: float | None = None,
                uptime_s: float | None = None,
                server_mono_s: float | None = None) -> dict:
    """The server's metrics snapshot (a ``MetricsSnapshot.to_dict()``).

    Clock contract (see the module docstring): ``server_time_s`` is the
    wall clock, display only; ``server_mono_s`` and ``uptime_s`` are one
    coherent monotonic reading, the only stamps safe to subtract — two
    replies diff into rates via their monotonic stamps no matter how the
    wall clock stepped in between.  Pre-v2 replies lack all three.
    """
    message = {"type": "stats_reply", "metrics": snapshot}
    if server_time_s is not None:
        message["server_time_s"] = float(server_time_s)
    if uptime_s is not None:
        message["uptime_s"] = float(uptime_s)
    if server_mono_s is not None:
        message["server_mono_s"] = float(server_mono_s)
    return message


def checkpoint_request(tenant: str, session: str) -> dict:
    """Ask the server to capture + detach one session for migration."""
    return {"type": "checkpoint", "tenant": str(tenant),
            "session": str(session)}


def checkpoint_reply(state: dict | None,
                     error: str | None = None) -> dict:
    """The captured session state (or an error; the session is gone
    from the source worker only on success)."""
    message: dict = {"type": "checkpoint_reply", "state": state}
    if error is not None:
        message["error"] = str(error)
    return message


def restore_request(state: dict) -> dict:
    """Ship a checkpointed session state to its destination worker."""
    return {"type": "restore", "state": state}


def restore_reply(session: str | None, error: str | None = None) -> dict:
    """Acknowledge a restore; carries the adopted session id."""
    message: dict = {"type": "restore_reply", "session": session}
    if error is not None:
        message["error"] = str(error)
    return message


def watch(interval_s: float | None = None) -> dict:
    """Subscribe this connection to periodic ``telemetry`` pushes.

    ``interval_s`` requests a push cadence (the server rounds it to a
    multiple of its own telemetry tick and never pushes faster than it
    samples); omit it to receive every tick.  ``interval_s <= 0``
    cancels the subscription.
    """
    message: dict = {"type": "watch"}
    if interval_s is not None:
        message["interval_s"] = float(interval_s)
    return message


def telemetry_message(payload: dict) -> dict:
    """One telemetry tick pushed to a ``watch`` subscriber.

    *payload* is a :meth:`repro.obs.telemetry.TelemetryPlane.tick`
    dict — already sanitized to finite floats, so it survives the
    ``allow_nan=False`` framing.
    """
    return {"type": "telemetry", "telemetry": payload}


def bye() -> dict:
    """Graceful close: the server flushes the pipeline and echoes ``bye``."""
    return {"type": "bye"}


def error_message(code: str, detail: str) -> dict:
    """Terminal error; the sender closes the connection after it."""
    return {"type": "error", "code": str(code), "detail": str(detail)}
