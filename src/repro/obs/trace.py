"""Dependency-free span tracing: per-stage timelines across processes.

Where :mod:`repro.obs.metrics` answers "how fast is this stage *on
average*", this module answers "which frame blew the 10 ms deadline, in
which stage, and what else was running".  A :class:`Tracer` records
:class:`Span` objects (name, trace/span/parent ids, wall + monotonic
timestamps, attributes, point-in-time events) into a bounded in-memory
ring buffer; exporters turn the buffer into a Chrome/Perfetto
trace-event JSON file (loadable at ``ui.perfetto.dev``) or a structured
JSONL event log.

Design notes
------------
* Everything is stdlib-only and never touches a numpy RNG stream, so the
  campaign determinism contract holds with tracing on or off.
* Sampling is decided **per trace** at the root span (``REPRO_TRACE``:
  ``0``/``off`` (default), ``1``/``always``, or a ratio in ``(0, 1)``).
  Child spans inherit the root's decision; with tracing fully off,
  :meth:`Tracer.span` returns a shared null scope and costs one flag
  check.
* A :class:`TraceContext` is a plain picklable value object; shipping it
  into a worker process and calling :meth:`Tracer.attach` there makes
  the worker's spans children of the parent process's span — this is how
  :class:`~repro.datasets.parallel.ParallelCampaignGenerator` chunks
  appear under the campaign's root plan span.
* Spans store both wall-clock (``time.time``, comparable across
  processes — the Chrome export timeline) and monotonic
  (``time.perf_counter``, drift-free within a process) timestamps.
"""

from __future__ import annotations

import itertools
import json
import os
import random
import threading
import time
from collections import deque
from dataclasses import dataclass, field

__all__ = [
    "Span",
    "SpanEvent",
    "TraceContext",
    "Tracer",
    "chrome_trace_events",
    "chrome_trace_json",
    "get_tracer",
    "load_trace",
    "render_trace_summary",
    "set_tracer",
    "spans_to_jsonl",
    "summarize_trace",
]

#: Default ring-buffer capacity (finished spans kept in memory).
DEFAULT_MAX_SPANS = 65536

_ID_COUNTER = itertools.count(1)


def _new_span_id() -> str:
    """A span id unique within and across processes (pid + counter)."""
    return f"{os.getpid():x}-{next(_ID_COUNTER):x}"


def _new_trace_id() -> str:
    return os.urandom(8).hex()


def parse_sample(mode: str | float | None) -> float:
    """Normalize a ``REPRO_TRACE`` value to a sampling ratio in [0, 1]."""
    if mode is None:
        return 0.0
    if isinstance(mode, (int, float)) and not isinstance(mode, bool):
        ratio = float(mode)
    else:
        text = str(mode).strip().lower()
        if text in ("", "0", "off", "false", "no"):
            return 0.0
        if text in ("1", "always", "on", "true", "yes"):
            return 1.0
        try:
            ratio = float(text)
        except ValueError:
            raise ValueError(
                f"REPRO_TRACE must be 0/off, 1/always, or a ratio, "
                f"got {mode!r}") from None
    if not 0.0 <= ratio <= 1.0:
        raise ValueError(f"trace sample ratio must be in [0, 1], got {ratio}")
    return ratio


@dataclass(frozen=True)
class TraceContext:
    """The picklable link between a span and its (possibly remote) children.

    Carries everything a worker process needs to parent its spans under
    the originating span: the trace id, the parent span id, and the
    root's sampling decision (authoritative — a worker records spans for
    a sampled context even if its own tracer is off).
    """

    trace_id: str
    span_id: str
    sampled: bool = True

    def to_dict(self) -> dict:
        """Plain-builtins payload for crossing process boundaries."""
        return {"trace_id": self.trace_id, "span_id": self.span_id,
                "sampled": self.sampled}

    @classmethod
    def from_dict(cls, payload: dict) -> "TraceContext":
        """Rebuild a context from :meth:`to_dict` output."""
        return cls(trace_id=str(payload["trace_id"]),
                   span_id=str(payload["span_id"]),
                   sampled=bool(payload.get("sampled", True)))


@dataclass
class SpanEvent:
    """A point-in-time annotation on a span (e.g. a deadline miss)."""

    name: str
    wall_s: float
    mono_s: float
    attrs: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {"name": self.name, "wall_s": self.wall_s,
                "mono_s": self.mono_s, "attrs": dict(self.attrs)}

    @classmethod
    def from_dict(cls, payload: dict) -> "SpanEvent":
        return cls(name=payload["name"], wall_s=float(payload["wall_s"]),
                   mono_s=float(payload["mono_s"]),
                   attrs=dict(payload.get("attrs", {})))


@dataclass
class Span:
    """One timed operation.  All fields are builtins, so spans pickle."""

    name: str
    trace_id: str
    span_id: str
    parent_id: str | None
    start_wall_s: float
    start_mono_s: float
    end_mono_s: float | None = None
    attrs: dict = field(default_factory=dict)
    events: list = field(default_factory=list)
    pid: int = field(default_factory=os.getpid)
    tid: int = field(default_factory=threading.get_ident)

    @property
    def duration_s(self) -> float:
        """Measured duration (0 while the span is still open)."""
        if self.end_mono_s is None:
            return 0.0
        return self.end_mono_s - self.start_mono_s

    @property
    def end_wall_s(self) -> float:
        """Wall-clock end, derived from the monotonic duration."""
        return self.start_wall_s + self.duration_s

    def set_attr(self, **attrs) -> None:
        """Attach attributes to the span."""
        self.attrs.update(attrs)

    def add_event(self, name: str, **attrs) -> SpanEvent:
        """Record a point-in-time event on this span."""
        event = SpanEvent(name=name, wall_s=time.time(),
                          mono_s=time.perf_counter(), attrs=attrs)
        self.events.append(event)
        return event

    def to_dict(self) -> dict:
        """Plain-builtins payload (JSONL line / cross-process shipping)."""
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_wall_s": self.start_wall_s,
            "start_mono_s": self.start_mono_s,
            "duration_s": self.duration_s,
            "pid": self.pid,
            "tid": self.tid,
            "attrs": dict(self.attrs),
            "events": [e.to_dict() for e in self.events],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Span":
        """Rebuild a span from :meth:`to_dict` output."""
        start_mono = float(payload.get("start_mono_s", 0.0))
        return cls(
            name=payload["name"],
            trace_id=payload["trace_id"],
            span_id=payload["span_id"],
            parent_id=payload.get("parent_id"),
            start_wall_s=float(payload["start_wall_s"]),
            start_mono_s=start_mono,
            end_mono_s=start_mono + float(payload.get("duration_s", 0.0)),
            attrs=dict(payload.get("attrs", {})),
            events=[SpanEvent.from_dict(e)
                    for e in payload.get("events", [])],
            pid=int(payload.get("pid", 0)),
            tid=int(payload.get("tid", 0)))


class _NullSpan:
    """The do-nothing span handed out when tracing is off/unsampled."""

    __slots__ = ()

    def set_attr(self, **attrs) -> None:
        pass

    def add_event(self, name: str, **attrs) -> None:
        pass


_NULL_SPAN = _NullSpan()


class _OffScope:
    """Shared zero-state scope for the fully-off fast path."""

    __slots__ = ()

    def __enter__(self) -> _NullSpan:
        return _NULL_SPAN

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_OFF_SCOPE = _OffScope()


class _UnsampledScope:
    """Scope for spans inside an unsampled trace: keeps the stack honest."""

    __slots__ = ("_tracer",)

    def __init__(self, tracer: "Tracer") -> None:
        self._tracer = tracer

    def __enter__(self) -> _NullSpan:
        return _NULL_SPAN

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._tracer._pop(_NULL_SPAN)
        return False


class _SpanScope:
    """Context manager finishing one live span."""

    __slots__ = ("_tracer", "span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self.span = span

    def __enter__(self) -> Span:
        return self.span

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self.span.attrs.setdefault("error", exc_type.__name__)
        self._tracer._finish(self.span)
        return False


class Tracer:
    """Span factory + bounded in-memory store for one process.

    Parameters
    ----------
    sample:
        Sampling mode: ``0``/``"off"``, ``1``/``"always"``, or a ratio in
        ``(0, 1)``.  ``None`` reads ``REPRO_TRACE`` (default off).
    max_spans:
        Ring-buffer capacity; the oldest finished spans are evicted once
        the buffer is full, bounding memory for arbitrarily long runs.
    seed:
        Seed for the ratio sampler (stdlib :mod:`random`; never touches
        numpy RNG streams).
    """

    def __init__(self, sample: str | float | None = None,
                 max_spans: int = DEFAULT_MAX_SPANS,
                 seed: int | None = None) -> None:
        if sample is None:
            sample = os.environ.get("REPRO_TRACE", "0")
        self._sample = parse_sample(sample)
        if max_spans < 1:
            raise ValueError("max_spans must be >= 1")
        self.max_spans = int(max_spans)
        self._store: deque[Span] = deque(maxlen=self.max_spans)
        self._local = threading.local()
        self._rand = random.Random(seed)

    # ------------------------------------------------------------------
    # state helpers
    # ------------------------------------------------------------------
    @property
    def sample(self) -> float:
        """The configured sampling ratio."""
        return self._sample

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _remote(self) -> TraceContext | None:
        return getattr(self._local, "remote", None)

    @property
    def active(self) -> bool:
        """Whether a span started now could possibly be recorded.

        The hot-path guard: with tracing off and no attached remote
        context this is a couple of attribute reads.
        """
        if self._sample > 0.0:
            return True
        remote = self._remote()
        return remote is not None and remote.sampled

    def current_span(self) -> Span | None:
        """The innermost live sampled span on this thread, if any."""
        stack = self._stack()
        if stack and isinstance(stack[-1], Span):
            return stack[-1]
        return None

    def current_context(self) -> TraceContext | None:
        """A :class:`TraceContext` for the current span (or attached remote).

        Returns ``None`` when nothing is being traced — callers can skip
        shipping context to workers entirely in that case.
        """
        span = self.current_span()
        if span is not None:
            return TraceContext(trace_id=span.trace_id,
                                span_id=span.span_id, sampled=True)
        remote = self._remote()
        if remote is not None and remote.sampled:
            return remote
        return None

    # ------------------------------------------------------------------
    # span lifecycle
    # ------------------------------------------------------------------
    def span(self, name: str, **attrs) -> "_SpanScope | _OffScope | _UnsampledScope":
        """A context manager opening a span named *name*.

        Yields the live :class:`Span` (or a null span when off); on exit
        the span is finished and appended to the ring buffer.
        """
        remote = self._remote()
        if self._sample <= 0.0 and remote is None:
            return _OFF_SCOPE
        stack = self._stack()
        if stack:
            parent = stack[-1]
            if not isinstance(parent, Span):      # inside an unsampled trace
                stack.append(_NULL_SPAN)
                return _UnsampledScope(self)
            trace_id, parent_id = parent.trace_id, parent.span_id
        elif remote is not None:
            if not remote.sampled:
                stack.append(_NULL_SPAN)
                return _UnsampledScope(self)
            trace_id, parent_id = remote.trace_id, remote.span_id
        else:
            if not self._decide():
                stack.append(_NULL_SPAN)
                return _UnsampledScope(self)
            trace_id, parent_id = _new_trace_id(), None
        span = Span(name=name, trace_id=trace_id, span_id=_new_span_id(),
                    parent_id=parent_id, start_wall_s=time.time(),
                    start_mono_s=time.perf_counter(), attrs=attrs)
        stack.append(span)
        return _SpanScope(self, span)

    def _decide(self) -> bool:
        if self._sample >= 1.0:
            return True
        if self._sample <= 0.0:
            return False
        return self._rand.random() < self._sample

    def _finish(self, span: Span) -> None:
        span.end_mono_s = time.perf_counter()
        self._pop(span)
        self._store.append(span)

    def _pop(self, expected) -> None:
        stack = self._stack()
        if stack and stack[-1] is expected:
            stack.pop()
        elif expected in stack:                   # mis-nested exit
            while stack and stack.pop() is not expected:
                pass

    def record(self, name: str, start_mono_s: float, end_mono_s: float,
               **attrs) -> Span | None:
        """Record an already-measured interval as a child of the current span.

        Lets hot paths that time stages with raw ``perf_counter`` reads
        emit spans without restructuring their control flow.  Returns the
        stored span, or ``None`` when tracing is off/unsampled.
        """
        parent = self.current_span()
        if parent is not None:
            trace_id, parent_id = parent.trace_id, parent.span_id
        else:
            remote = self._remote()
            if remote is None or not remote.sampled:
                return None
            trace_id, parent_id = remote.trace_id, remote.span_id
        now_mono = time.perf_counter()
        span = Span(name=name, trace_id=trace_id, span_id=_new_span_id(),
                    parent_id=parent_id,
                    start_wall_s=time.time() - (now_mono - start_mono_s),
                    start_mono_s=start_mono_s, end_mono_s=end_mono_s,
                    attrs=attrs)
        self._store.append(span)
        return span

    # ------------------------------------------------------------------
    # cross-process propagation
    # ------------------------------------------------------------------
    def attach(self, context: TraceContext | None):
        """Context manager parenting this thread's spans under *context*.

        Used inside worker processes: the parent ships its
        :meth:`current_context`, the worker attaches it, and every span
        the worker opens becomes a child of the parent's span — even if
        the worker's own sampling mode is off (the root's decision is
        authoritative).
        """
        return _AttachScope(self, context)

    def adopt(self, spans) -> None:
        """Fold spans (objects or :meth:`Span.to_dict` payloads) into the store."""
        for span in spans:
            if isinstance(span, dict):
                span = Span.from_dict(span)
            self._store.append(span)

    # ------------------------------------------------------------------
    # store access
    # ------------------------------------------------------------------
    def finished_spans(self) -> list[Span]:
        """A snapshot list of the finished spans currently buffered."""
        return list(self._store)

    def drain(self) -> list[Span]:
        """Remove and return every buffered span (worker shipping)."""
        spans = list(self._store)
        self._store.clear()
        return spans

    def clear(self) -> None:
        """Drop every buffered span."""
        self._store.clear()


class _AttachScope:
    __slots__ = ("_tracer", "_context", "_previous")

    def __init__(self, tracer: Tracer, context: TraceContext | None) -> None:
        self._tracer = tracer
        self._context = context
        self._previous = None

    def __enter__(self) -> TraceContext | None:
        self._previous = getattr(self._tracer._local, "remote", None)
        self._tracer._local.remote = self._context
        return self._context

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._tracer._local.remote = self._previous
        return False


# ---------------------------------------------------------------------------
# exporters
# ---------------------------------------------------------------------------

def _span_payloads(spans) -> list[dict]:
    return [s.to_dict() if isinstance(s, Span) else dict(s) for s in spans]


def chrome_trace_events(spans) -> list[dict]:
    """Chrome trace-event list for *spans* (complete ``"X"`` events).

    Each span becomes one complete event on the wall-clock timeline
    (microseconds), carrying its trace/span/parent ids in ``args`` so the
    tree can be rebuilt from the file; span events become instant
    (``"i"``) events.  Worker processes appear as separate ``pid`` rows.
    """
    events: list[dict] = []
    pids: set[int] = set()
    for payload in _span_payloads(spans):
        pid = int(payload.get("pid", 0))
        tid = int(payload.get("tid", 0)) % 2**31     # perfetto wants int32
        pids.add(pid)
        args = dict(payload.get("attrs", {}))
        args["trace_id"] = payload["trace_id"]
        args["span_id"] = payload["span_id"]
        if payload.get("parent_id"):
            args["parent_id"] = payload["parent_id"]
        events.append({
            "name": payload["name"],
            "cat": "repro",
            "ph": "X",
            "ts": payload["start_wall_s"] * 1e6,
            "dur": payload.get("duration_s", 0.0) * 1e6,
            "pid": pid,
            "tid": tid,
            "args": args,
        })
        for event in payload.get("events", []):
            ev = event.to_dict() if isinstance(event, SpanEvent) else event
            events.append({
                "name": ev["name"],
                "cat": "repro.event",
                "ph": "i",
                "s": "t",
                "ts": ev["wall_s"] * 1e6,
                "pid": pid,
                "tid": tid,
                "args": {**ev.get("attrs", {}),
                         "span_id": payload["span_id"],
                         "trace_id": payload["trace_id"]},
            })
    for pid in sorted(pids):
        events.append({"name": "process_name", "ph": "M", "pid": pid,
                       "args": {"name": f"repro pid {pid}"}})
    return events


def chrome_trace_json(spans, indent: int | None = None) -> str:
    """The Chrome/Perfetto trace JSON document for *spans*."""
    return json.dumps({"traceEvents": chrome_trace_events(spans),
                       "displayTimeUnit": "ms"}, indent=indent)


def spans_to_jsonl(spans) -> str:
    """Structured JSONL event log: one line per span, one per span event.

    Span lines carry ``kind: "span"`` with trace/span/parent ids, attrs,
    and both wall + monotonic timestamps; event lines carry
    ``kind: "event"`` pointing back at their span.
    """
    lines = []
    for payload in _span_payloads(spans):
        events = payload.pop("events", [])
        lines.append(json.dumps({"kind": "span", **payload},
                                sort_keys=True))
        for event in events:
            ev = event.to_dict() if isinstance(event, SpanEvent) else event
            lines.append(json.dumps(
                {"kind": "event", "trace_id": payload["trace_id"],
                 "span_id": payload["span_id"], **ev}, sort_keys=True))
    return "\n".join(lines) + ("\n" if lines else "")


# ---------------------------------------------------------------------------
# trace-file loading + summarizing (the `airfinger trace` view)
# ---------------------------------------------------------------------------

def load_trace(path) -> list[dict]:
    """Span payload dicts from a saved trace (Chrome JSON or JSONL).

    Accepts either exporter's output; the Chrome form is rebuilt from the
    ids embedded in each event's ``args``.
    """
    text = open(path, "r", encoding="utf-8").read()
    doc = None
    if text.lstrip().startswith("{"):
        try:
            doc = json.loads(text)        # whole-file JSON = Chrome form;
        except json.JSONDecodeError:      # per-line JSON = JSONL form
            doc = None
    if isinstance(doc, dict) and "traceEvents" in doc:
        spans: dict[str, dict] = {}
        events: list[dict] = []
        for ev in doc.get("traceEvents", []):
            args = dict(ev.get("args", {}))
            if ev.get("ph") == "X":
                span_id = args.pop("span_id", None)
                spans[span_id] = {
                    "name": ev["name"],
                    "trace_id": args.pop("trace_id", ""),
                    "span_id": span_id,
                    "parent_id": args.pop("parent_id", None),
                    "start_wall_s": ev.get("ts", 0.0) / 1e6,
                    "start_mono_s": ev.get("ts", 0.0) / 1e6,
                    "duration_s": ev.get("dur", 0.0) / 1e6,
                    "pid": ev.get("pid", 0),
                    "tid": ev.get("tid", 0),
                    "attrs": args,
                    "events": [],
                }
            elif ev.get("ph") == "i":
                events.append(ev)
        for ev in events:
            args = dict(ev.get("args", {}))
            span_id = args.pop("span_id", None)
            args.pop("trace_id", None)
            record = {"name": ev["name"], "wall_s": ev.get("ts", 0.0) / 1e6,
                      "mono_s": ev.get("ts", 0.0) / 1e6, "attrs": args}
            if span_id in spans:
                spans[span_id]["events"].append(record)
        return list(spans.values())
    payloads: dict[str, dict] = {}
    orphan_events: list[dict] = []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        record = json.loads(line)
        kind = record.pop("kind", "span")
        if kind == "span":
            record.setdefault("events", [])
            payloads[record["span_id"]] = record
        else:
            orphan_events.append(record)
    for record in orphan_events:
        span_id = record.pop("span_id", None)
        record.pop("trace_id", None)
        if span_id in payloads:
            payloads[span_id]["events"].append(record)
    return list(payloads.values())


def _child_union_s(parent: dict, kids: list[dict]) -> float:
    """Wall time covered by *kids* inside *parent*, counted once.

    Children of one span can overlap on the wall timeline — parallel
    worker chunks all hang off the same ``campaign.plan`` span — so
    summing their durations over-subtracts and drives the parent's
    exclusive time to zero.  Clip every child interval to the parent and
    merge overlaps before measuring.
    """
    start = float(parent.get("start_wall_s", 0.0))
    end = start + float(parent.get("duration_s", 0.0))
    intervals = []
    for c in kids:
        lo = max(float(c.get("start_wall_s", 0.0)), start)
        hi = min(float(c.get("start_wall_s", 0.0))
                 + float(c.get("duration_s", 0.0)), end)
        if hi > lo:
            intervals.append((lo, hi))
    intervals.sort()
    covered = 0.0
    cur_lo = cur_hi = None
    for lo, hi in intervals:
        if cur_hi is None or lo > cur_hi:
            if cur_hi is not None:
                covered += cur_hi - cur_lo
            cur_lo, cur_hi = lo, hi
        elif hi > cur_hi:
            cur_hi = hi
    if cur_hi is not None:
        covered += cur_hi - cur_lo
    return covered


def summarize_trace(spans) -> dict:
    """Aggregate statistics of a span set.

    Returns a dict with per-name totals (count, inclusive ``total_s``,
    exclusive ``self_s`` = inclusive minus the wall-time union of direct
    children), the critical path of the longest trace (greedy descent
    into the largest child), and every span event named
    ``deadline_miss``.
    """
    payloads = _span_payloads(spans)
    children: dict[str, list[dict]] = {}
    for p in payloads:
        parent = p.get("parent_id")
        if parent:
            children.setdefault(parent, []).append(p)
    by_name: dict[str, dict] = {}
    for p in payloads:
        dur = float(p.get("duration_s", 0.0))
        child_s = _child_union_s(p, children.get(p["span_id"], []))
        entry = by_name.setdefault(
            p["name"], {"count": 0, "total_s": 0.0, "self_s": 0.0})
        entry["count"] += 1
        entry["total_s"] += dur
        entry["self_s"] += max(dur - child_s, 0.0)

    roots = [p for p in payloads if not p.get("parent_id")]
    critical: list[dict] = []
    if roots:
        node = max(roots, key=lambda p: float(p.get("duration_s", 0.0)))
        while node is not None:
            critical.append({"name": node["name"],
                             "duration_s": float(node.get("duration_s", 0.0))})
            kids = children.get(node["span_id"])
            node = (max(kids, key=lambda p: float(p.get("duration_s", 0.0)))
                    if kids else None)

    misses = []
    for p in payloads:
        for ev in p.get("events", []):
            if ev.get("name") == "deadline_miss":
                misses.append({"span": p["name"], "wall_s": ev.get("wall_s"),
                               **dict(ev.get("attrs", {}))})
    trace_ids = sorted({p.get("trace_id", "") for p in payloads})
    return {
        "n_spans": len(payloads),
        "trace_ids": trace_ids,
        "by_name": {k: dict(v) for k, v in sorted(
            by_name.items(), key=lambda kv: -kv[1]["self_s"])},
        "critical_path": critical,
        "deadline_misses": misses,
    }


def render_trace_summary(summary: dict, top: int = 10) -> str:
    """Human-readable tables for a :func:`summarize_trace` result."""
    lines = [f"spans: {summary['n_spans']}   "
             f"traces: {len(summary['trace_ids'])}", ""]
    lines += ["Top spans by self-time", "----------------------"]
    names = list(summary["by_name"].items())[:top]
    if names:
        width = max(len(n) for n, _ in names) + 2
        total_self = sum(e["self_s"] for e in summary["by_name"].values())
        lines.append(f"{'span':<{width}} {'count':>7} {'incl':>10} "
                     f"{'self':>10} {'self%':>6}")
        for name, entry in names:
            share = entry["self_s"] / total_self if total_self > 0 else 0.0
            lines.append(f"{name:<{width}} {entry['count']:>7} "
                         f"{entry['total_s']:>9.4f}s "
                         f"{entry['self_s']:>9.4f}s {share:>5.1%}")
    else:
        lines.append("(no spans)")
    lines += ["", "Critical path", "-------------"]
    if summary["critical_path"]:
        for depth, hop in enumerate(summary["critical_path"]):
            lines.append(f"{'  ' * depth}{hop['name']}  "
                         f"{hop['duration_s']:.4f}s")
    else:
        lines.append("(no root span)")
    lines += ["", f"Deadline-miss events: {len(summary['deadline_misses'])}"]
    for miss in summary["deadline_misses"][:top]:
        stage = miss.get("stage", "?")
        frame = miss.get("frame_index", "?")
        frame_s = miss.get("frame_s")
        cost = f"{float(frame_s) * 1e3:.2f} ms" if frame_s is not None else "?"
        lines.append(f"  frame {frame}: {cost} (slowest stage: {stage})")
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# process-global default tracer (REPRO_TRACE configures sampling)
# ---------------------------------------------------------------------------

_GLOBAL_TRACER = Tracer()


def get_tracer() -> Tracer:
    """The process-global tracer every instrumented component records to."""
    return _GLOBAL_TRACER


def set_tracer(tracer: Tracer) -> Tracer:
    """Swap the process-global tracer (returns the previous one)."""
    global _GLOBAL_TRACER
    previous = _GLOBAL_TRACER
    _GLOBAL_TRACER = tracer
    return previous
