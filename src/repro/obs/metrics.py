"""Dependency-free metrics primitives: counters, gauges, histograms, timers.

Everything here is stdlib-only on purpose — the instrumentation rides the
hot paths (the 100 Hz streaming engine, batched campaign capture), crosses
process boundaries as pickled snapshots, and must never perturb the
bit-exact determinism contract of the generators.  Values are recorded
through a :class:`MetricsRegistry`; a registry's :meth:`~MetricsRegistry.snapshot`
is a plain-data :class:`MetricsSnapshot` that can be merged, serialized to
JSON, or rendered to Prometheus text format (:mod:`repro.obs.export`).

Design notes
------------
* A metric's identity is its name plus a sorted tuple of label pairs, so
  ``registry.counter("pipeline.events", type="gesture")`` and
  ``type="scroll_final"`` are distinct series.
* Histograms use **fixed** bucket upper bounds.  Quantiles (p50/p95/p99)
  are estimated by linear interpolation inside the bucket holding the
  target rank, clamped to the observed min/max — the standard
  fixed-bucket estimator, accurate to bucket resolution.
* Disabling a registry (``enabled = False`` or ``REPRO_OBS=0``) turns
  every record operation into a flag check and nothing else.
* Recording is **thread-safe**: every metric guards its read-modify-write
  updates with a per-metric lock, and the registry guards series
  creation, ``snapshot`` and ``merge`` with its own lock — the threaded/
  async serving layer (:mod:`repro.serve`) increments shared series from
  concurrent contexts and may not lose updates.  An uncontended lock
  acquisition is tens of nanoseconds, which keeps the <5% overhead gate
  (``benchmarks/test_obs_overhead.py``) intact.
"""

from __future__ import annotations

import json
import math
import os
import threading
import time
from dataclasses import dataclass, field

__all__ = [
    "DEFAULT_LATENCY_BUCKETS_S",
    "Counter",
    "Gauge",
    "Histogram",
    "StageTimer",
    "MetricsRegistry",
    "MetricsSnapshot",
    "get_registry",
    "parse_series_key",
    "set_registry",
]

#: Default latency buckets (seconds): 1 µs .. 10 s, roughly logarithmic.
DEFAULT_LATENCY_BUCKETS_S: tuple[float, ...] = (
    1e-6, 2.5e-6, 5e-6,
    1e-5, 2.5e-5, 5e-5,
    1e-4, 2.5e-4, 5e-4,
    1e-3, 2.5e-3, 5e-3,
    1e-2, 2.5e-2, 5e-2,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


def escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus text exposition rules."""
    return (str(value).replace("\\", r"\\").replace('"', r'\"')
            .replace("\n", r"\n"))


def _series_key(name: str, labels: dict[str, str]) -> str:
    """Canonical series key: ``name`` or ``name{k="v",...}`` (sorted).

    Label values are escaped at key-build time, so the key doubles as the
    Prometheus series suffix and parses unambiguously at the first ``{``.
    """
    if not labels:
        return name
    inner = ",".join(f'{k}="{escape_label_value(v)}"'
                     for k, v in sorted(labels.items()))
    return f"{name}{{{inner}}}"


def parse_series_key(key: str) -> tuple[str, dict[str, str]]:
    """Split a series key back into ``(name, labels)``.

    The inverse of the key builder: ``name{k="v",...}`` keys produced by
    the registry parse losslessly (label values are unescaped), and keys
    without labels return an empty dict.  The telemetry plane uses this
    to group ``serve.*`` series per tenant/session without the registry
    having to keep a parallel label index.
    """
    brace = key.find("{")
    if brace < 0:
        return key, {}
    if not key.endswith("}"):
        raise ValueError(f"malformed series key {key!r}")
    name = key[:brace]
    inner = key[brace + 1:-1]
    labels: dict[str, str] = {}
    i = 0
    while i < len(inner):
        eq = inner.find('="', i)
        if eq < 0:
            raise ValueError(f"malformed series key {key!r}")
        label = inner[i:eq]
        # scan for the closing quote, honouring backslash escapes
        j = eq + 2
        out: list[str] = []
        while j < len(inner):
            ch = inner[j]
            if ch == "\\" and j + 1 < len(inner):
                nxt = inner[j + 1]
                out.append("\n" if nxt == "n" else nxt)
                j += 2
                continue
            if ch == '"':
                break
            out.append(ch)
            j += 1
        else:
            raise ValueError(f"malformed series key {key!r}")
        labels[label] = "".join(out)
        i = j + 1
        if i < len(inner) and inner[i] == ",":
            i += 1
    return name, labels


class Counter:
    """A monotonically increasing count (thread-safe)."""

    __slots__ = ("_registry", "_lock", "value")

    def __init__(self, registry: "MetricsRegistry") -> None:
        self._registry = registry
        self._lock = threading.Lock()
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add *amount* (must be >= 0) to the counter."""
        if not self._registry.enabled:
            return
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        # `self.value += amount` is a read-modify-write; without the lock
        # two threads interleaving it lose one of the increments
        with self._lock:
            self.value += amount


class Gauge:
    """A value that can go up and down (e.g. last batch size); thread-safe."""

    __slots__ = ("_registry", "_lock", "value")

    def __init__(self, registry: "MetricsRegistry") -> None:
        self._registry = registry
        self._lock = threading.Lock()
        self.value = 0.0

    def set(self, value: float) -> None:
        """Set the gauge to *value*."""
        if self._registry.enabled:
            with self._lock:
                self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Add *amount* (may be negative)."""
        if self._registry.enabled:
            with self._lock:
                self.value += amount


class Histogram:
    """Fixed-bucket distribution of observations (latencies, sizes).

    ``bounds`` are the inclusive upper edges of the buckets; one implicit
    overflow bucket catches everything above the last bound.  NaN/inf
    observations are dropped (they would poison ``sum`` and the min/max
    comparisons) and tallied in :attr:`invalid` instead.
    """

    __slots__ = ("_registry", "_lock", "bounds", "counts", "sum", "count",
                 "min", "max", "invalid")

    def __init__(self, registry: "MetricsRegistry",
                 bounds: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS_S) -> None:
        bounds = tuple(float(b) for b in bounds)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError("bucket bounds must be strictly increasing")
        self._registry = registry
        self._lock = threading.Lock()
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)   # +1: overflow bucket
        self.sum = 0.0
        self.count = 0
        self.min: float | None = None
        self.max: float | None = None
        self.invalid = 0

    def observe(self, value: float) -> None:
        """Record one observation (NaN/inf counts as invalid, not data)."""
        if not self._registry.enabled:
            return
        value = float(value)
        if not math.isfinite(value):
            with self._lock:
                self.invalid += 1
            return
        # linear scan is faster than bisect for the small head buckets the
        # hot paths hit; fall through to the overflow slot
        idx = len(self.bounds)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                idx = i
                break
        with self._lock:
            self.counts[idx] += 1
            self.sum += value
            self.count += 1
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value

    def observe_many(self, value: float, n: int) -> None:
        """Record *n* observations of the same *value* in O(1).

        The block-mode pipeline amortizes one wall-clock measurement over
        every frame of a block; tallying the per-frame average *n* times
        keeps ``count`` (and rate math downstream) comparable with the
        per-frame path without paying *n* bucket scans.
        """
        if not self._registry.enabled or n <= 0:
            return
        value = float(value)
        if not math.isfinite(value):
            with self._lock:
                self.invalid += n
            return
        idx = len(self.bounds)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                idx = i
                break
        with self._lock:
            self.counts[idx] += n
            self.sum += value * n
            self.count += n
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value

    def quantile(self, q: float) -> float | None:
        """Estimated *q*-quantile (0..1), or None with no observations."""
        return _bucket_quantile(self.bounds, self.counts, self.count,
                                self.min, self.max, q)

    @property
    def p50(self) -> float | None:
        """Estimated median."""
        return self.quantile(0.50)

    @property
    def p95(self) -> float | None:
        """Estimated 95th percentile."""
        return self.quantile(0.95)

    @property
    def p99(self) -> float | None:
        """Estimated 99th percentile."""
        return self.quantile(0.99)


def _bucket_quantile(bounds: tuple[float, ...], counts: list[int],
                     count: int, lo: float | None, hi: float | None,
                     q: float) -> float | None:
    """Fixed-bucket quantile estimate shared by Histogram and snapshots."""
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    if count == 0 or lo is None or hi is None:
        return None
    rank = q * count
    cumulative = 0.0
    for i, bucket_count in enumerate(counts):
        if bucket_count == 0:
            continue
        prev_cumulative = cumulative
        cumulative += bucket_count
        if cumulative < rank:
            continue
        lower = bounds[i - 1] if i > 0 else 0.0
        upper = bounds[i] if i < len(bounds) else hi
        fraction = (rank - prev_cumulative) / bucket_count
        estimate = lower + fraction * (upper - lower)
        return min(max(estimate, lo), hi)
    return hi


class StageTimer:
    """Context manager timing one stage into a latency histogram.

    ::

        with registry.timer("pipeline.stage_seconds", stage="tracking") as t:
            result = tracker.track(rss, gate)
        t.elapsed_s  # the measured wall time
    """

    __slots__ = ("_histogram", "_start", "elapsed_s")

    def __init__(self, histogram: Histogram) -> None:
        self._histogram = histogram
        self._start = 0.0
        self.elapsed_s = 0.0

    def __enter__(self) -> "StageTimer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.elapsed_s = time.perf_counter() - self._start
        self._histogram.observe(self.elapsed_s)

    @property
    def started_s(self) -> float:
        """The ``perf_counter`` reading at ``__enter__`` (span anchoring)."""
        return self._start


@dataclass
class MetricsSnapshot:
    """Plain-data view of a registry at one point in time.

    Every field holds only builtins, so snapshots pickle across process
    boundaries (worker pools ship them back to the parent) and serialize
    to JSON.  Histogram entries are dicts with keys ``bounds``, ``counts``,
    ``sum``, ``count``, ``min``, ``max``, ``invalid``.
    """

    counters: dict[str, float] = field(default_factory=dict)
    gauges: dict[str, float] = field(default_factory=dict)
    histograms: dict[str, dict] = field(default_factory=dict)

    def merged(self, other: "MetricsSnapshot") -> "MetricsSnapshot":
        """A new snapshot combining this one with *other* (additive)."""
        out = MetricsSnapshot(
            counters=dict(self.counters),
            gauges=dict(self.gauges),
            histograms={k: dict(v) for k, v in self.histograms.items()})
        for key, value in other.counters.items():
            out.counters[key] = out.counters.get(key, 0.0) + value
        out.gauges.update(other.gauges)   # last writer wins for gauges
        for key, data in other.histograms.items():
            mine = out.histograms.get(key)
            if mine is None:
                out.histograms[key] = dict(data)
                continue
            if tuple(mine["bounds"]) != tuple(data["bounds"]):
                raise ValueError(
                    f"cannot merge histogram {key!r}: bucket bounds differ "
                    f"({tuple(mine['bounds'])} vs {tuple(data['bounds'])})")
            merged = dict(mine)
            merged["counts"] = [a + b for a, b in
                                zip(mine["counts"], data["counts"])]
            merged["sum"] = mine["sum"] + data["sum"]
            merged["count"] = mine["count"] + data["count"]
            merged["min"] = _opt_min(mine["min"], data["min"])
            merged["max"] = _opt_max(mine["max"], data["max"])
            merged["invalid"] = (mine.get("invalid", 0)
                                 + data.get("invalid", 0))
            out.histograms[key] = merged
        return out

    def quantile(self, key: str, q: float) -> float | None:
        """Estimated quantile of histogram series *key*."""
        data = self.histograms[key]
        return _bucket_quantile(tuple(data["bounds"]), data["counts"],
                                data["count"], data["min"], data["max"], q)

    def to_dict(self) -> dict:
        """JSON-ready dict; histograms carry computed p50/p95/p99."""
        histograms = {}
        for key, data in self.histograms.items():
            entry = dict(data)
            entry["p50"] = self.quantile(key, 0.50)
            entry["p95"] = self.quantile(key, 0.95)
            entry["p99"] = self.quantile(key, 0.99)
            histograms[key] = entry
        return {"counters": dict(self.counters),
                "gauges": dict(self.gauges),
                "histograms": histograms}

    def to_json(self, indent: int = 2) -> str:
        """The snapshot as a JSON document."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def to_prometheus(self) -> str:
        """The snapshot in Prometheus text exposition format."""
        from repro.obs.export import prometheus_text
        return prometheus_text(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "MetricsSnapshot":
        """Rebuild a snapshot from :meth:`to_dict` output."""
        histograms = {}
        for key, data in payload.get("histograms", {}).items():
            histograms[key] = {
                "bounds": [float(b) for b in data["bounds"]],
                "counts": [int(c) for c in data["counts"]],
                "sum": float(data["sum"]),
                "count": int(data["count"]),
                "min": data["min"],
                "max": data["max"],
                "invalid": int(data.get("invalid", 0))}
        return cls(counters=dict(payload.get("counters", {})),
                   gauges=dict(payload.get("gauges", {})),
                   histograms=histograms)

    @classmethod
    def from_json(cls, text: str) -> "MetricsSnapshot":
        """Rebuild a snapshot from :meth:`to_json` output."""
        return cls.from_dict(json.loads(text))


def _opt_min(a: float | None, b: float | None) -> float | None:
    if a is None:
        return b
    if b is None:
        return a
    return min(a, b)


def _opt_max(a: float | None, b: float | None) -> float | None:
    if a is None:
        return b
    if b is None:
        return a
    return max(a, b)


class MetricsRegistry:
    """Get-or-create home of every metric series in one process.

    ``counter`` / ``gauge`` / ``histogram`` return the live metric object
    for (name, labels) — hot paths cache the handle once and hit only the
    record call per event.  ``snapshot()`` freezes the state into a
    picklable :class:`MetricsSnapshot`; ``merge(snapshot)`` folds a
    worker's snapshot into this registry.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = bool(enabled)
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    def counter(self, name: str, **labels: str) -> Counter:
        """The counter series (name, labels), created on first use."""
        key = _series_key(name, labels)
        metric = self._counters.get(key)
        if metric is None:
            # two racing creators must resolve to ONE live object, or the
            # loser's cached handle records into a dropped metric
            with self._lock:
                metric = self._counters.get(key)
                if metric is None:
                    metric = self._counters[key] = Counter(self)
        return metric

    def gauge(self, name: str, **labels: str) -> Gauge:
        """The gauge series (name, labels), created on first use."""
        key = _series_key(name, labels)
        metric = self._gauges.get(key)
        if metric is None:
            with self._lock:
                metric = self._gauges.get(key)
                if metric is None:
                    metric = self._gauges[key] = Gauge(self)
        return metric

    def histogram(self, name: str,
                  buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS_S,
                  **labels: str) -> Histogram:
        """The histogram series (name, labels), created on first use."""
        key = _series_key(name, labels)
        metric = self._histograms.get(key)
        if metric is None:
            with self._lock:
                metric = self._histograms.get(key)
                if metric is None:
                    metric = self._histograms[key] = Histogram(self, buckets)
        return metric

    def timer(self, name: str,
              buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS_S,
              **labels: str) -> StageTimer:
        """A :class:`StageTimer` bound to the named latency histogram."""
        return StageTimer(self.histogram(name, buckets, **labels))

    # ------------------------------------------------------------------
    def snapshot(self) -> MetricsSnapshot:
        """Freeze the current state into a picklable snapshot.

        Thread-safe: each histogram's fields are copied under that
        histogram's lock, so a snapshot taken mid-`observe` never sees a
        half-applied observation (a count without its sum).
        """
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        hist_data: dict[str, dict] = {}
        for k, h in histograms.items():
            with h._lock:
                hist_data[k] = {"bounds": list(h.bounds),
                                "counts": list(h.counts),
                                "sum": h.sum,
                                "count": h.count,
                                "min": h.min,
                                "max": h.max,
                                "invalid": h.invalid}
        return MetricsSnapshot(
            counters={k: c.value for k, c in counters.items()},
            gauges={k: g.value for k, g in gauges.items()},
            histograms=hist_data)

    def merge(self, snapshot: MetricsSnapshot) -> None:
        """Fold *snapshot* (e.g. from a worker process) into this registry."""
        for key, value in snapshot.counters.items():
            metric = self._counters.get(key)
            if metric is None:
                with self._lock:
                    metric = self._counters.setdefault(key, Counter(self))
            with metric._lock:
                metric.value += value
        for key, value in snapshot.gauges.items():
            gauge = self._gauges.get(key)
            if gauge is None:
                with self._lock:
                    gauge = self._gauges.setdefault(key, Gauge(self))
            with gauge._lock:
                gauge.value = value
        for key, data in snapshot.histograms.items():
            hist = self._histograms.get(key)
            if hist is None:
                with self._lock:
                    hist = self._histograms.setdefault(
                        key, Histogram(self, tuple(data["bounds"])))
            if hist.bounds != tuple(data["bounds"]):
                raise ValueError(
                    f"cannot merge histogram {key!r}: bucket bounds differ "
                    f"({hist.bounds} vs {tuple(data['bounds'])})")
            with hist._lock:
                hist.counts = [a + b
                               for a, b in zip(hist.counts, data["counts"])]
                hist.sum += data["sum"]
                hist.count += data["count"]
                hist.min = _opt_min(hist.min, data["min"])
                hist.max = _opt_max(hist.max, data["max"])
                hist.invalid += int(data.get("invalid", 0))

    def remove(self, name: str, **labels: str) -> bool:
        """Retire the series (name, labels) from every metric family.

        Label cardinality control: a serving layer that mints per-session
        series (``serve.queue_depth{tenant=,session=}``) retires them
        when the session closes, so snapshot size tracks the number of
        *live* sessions instead of every session ever opened.  Returns
        ``True`` if any series was removed.  A handle obtained before the
        removal stays safe to record into — it just no longer appears in
        snapshots (and re-creating the series yields a fresh object, so
        retire only series whose handles die with their owner).
        """
        key = _series_key(name, labels)
        with self._lock:
            removed = False
            for family in (self._counters, self._gauges, self._histograms):
                if family.pop(key, None) is not None:
                    removed = True
        return removed

    def series_count(self) -> int:
        """Total number of registered series across every family."""
        with self._lock:
            return (len(self._counters) + len(self._gauges)
                    + len(self._histograms))

    def reset(self) -> None:
        """Drop every recorded value (series registrations included)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


# ---------------------------------------------------------------------------
# process-global default registry (REPRO_OBS=0 disables instrumentation)
# ---------------------------------------------------------------------------

_GLOBAL_REGISTRY = MetricsRegistry(
    enabled=os.environ.get("REPRO_OBS", "1") != "0")


def get_registry() -> MetricsRegistry:
    """The process-global default registry every component records to."""
    return _GLOBAL_REGISTRY


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-global registry (returns the previous one)."""
    global _GLOBAL_REGISTRY
    previous = _GLOBAL_REGISTRY
    _GLOBAL_REGISTRY = registry
    return previous
