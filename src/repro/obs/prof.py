"""Continuous profiling: background stack sampling + exact stage attribution.

Two complementary profilers, both stdlib-only (the same constraint as the
rest of :mod:`repro.obs` — they ride the 100 Hz hot paths and cross process
boundaries as plain dicts):

* :class:`SamplingProfiler` — a statistical wall-clock profiler.  A
  daemon thread wakes at a configurable rate, walks every live thread's
  stack via :func:`sys._current_frames` (no signals, no
  ``sys.setprofile`` — nothing is installed into the profiled code, so
  the observed program runs at full speed between samples), and folds
  each stack into a bounded table of collapsed-stack counts.  Memory is
  bounded twice over: stacks are truncated at ``max_depth`` frames and
  the table holds at most ``max_stacks`` unique stacks (overflow lands in
  a single ``<overflow>`` bucket so sample counts stay exact).  Output is
  flamegraph.pl-compatible collapsed text, Chrome/Perfetto JSON, or a
  mergeable plain dict.
* :class:`StageProfile` — a deterministic accumulator of **exclusive
  (self) time** per pipeline stage.  It is fed by the stage measurements
  the pipeline already takes (``AirFinger._stage_s``, the campaign
  generator's batch timers, ``repro.serve`` dispatch scopes), so its
  attribution is exact rather than statistical: a stage's ``self_s`` is
  its measured duration minus the measured durations of its nested
  stages, never an estimate.  Profiles pickle as plain dicts and merge
  associatively — parallel campaign workers ship their profile back
  beside their :class:`~repro.obs.metrics.MetricsSnapshot` delta and the
  parent merges them exactly like metric snapshots.

Hot paths reach the active profile through :func:`get_stage_profile`,
a single module-global read returning ``None`` when profiling is off —
the disabled cost is one attribute load and one ``is None`` branch per
frame/block, which is what lets ``benchmarks/test_prof_overhead.py``
hold the strict zero-overhead-when-disabled gate.

Stage paths are tuples of names (``("serve.dispatch", "pipeline.frame",
"segmentation")``); exporters join them with ``;`` in flamegraph
convention, so stage names must not contain ``;`` (enforced at record
time).
"""

from __future__ import annotations

import json
import os.path
import sys
import threading
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field

__all__ = [
    "PROFILE_SCHEMA",
    "SamplingProfiler",
    "StageProfile",
    "StageStat",
    "get_stage_profile",
    "set_stage_profile",
    "stage_profiling",
    "render_stage_profile",
]

PROFILE_SCHEMA = 1

_PATH_SEP = ";"


def _check_name(name: str) -> str:
    if not name or _PATH_SEP in name:
        raise ValueError(
            f"stage name must be non-empty and must not contain {_PATH_SEP!r}: "
            f"{name!r}"
        )
    return name


# ---------------------------------------------------------------------------
# StageProfile: deterministic exclusive-time attribution
# ---------------------------------------------------------------------------


@dataclass
class StageStat:
    """Accumulated times for one stage *path* (root..leaf tuple of names).

    ``count`` counts invocations for scoped stages and frames for the
    pipeline's per-frame/per-block entries; ``total_s`` is inclusive wall
    time, ``self_s`` is exclusive (total minus nested stages, clamped at
    zero so clock jitter can never produce negative attribution).
    """

    count: int = 0
    total_s: float = 0.0
    self_s: float = 0.0

    def to_dict(self) -> dict:
        return {"count": self.count, "total_s": self.total_s, "self_s": self.self_s}


class StageProfile:
    """Thread-safe, mergeable exclusive-time accumulator.

    Three recording surfaces, all nestable (a thread-local scope stack
    tracks the current path, and every nested duration is charged against
    the parent's exclusive time):

    * :meth:`scope` — a context manager timing a region with the
      profile's own clock (injectable for deterministic tests).
    * :meth:`add` — record an externally measured duration as a child of
      the current scope (used where the pipeline already holds a
      :class:`~repro.obs.metrics.StageTimer` measurement).
    * :meth:`add_frame` — the pipeline fast path: one call per
      frame/block records the root duration plus a dict of per-stage
      durations, attributing ``total - sum(stages)`` to the root's
      exclusive time.
    """

    def __init__(self, clock=time.perf_counter) -> None:
        self._clock = clock
        self._lock = threading.Lock()
        self._stats: dict[tuple[str, ...], StageStat] = {}
        self._local = threading.local()

    # -- internals ----------------------------------------------------

    def _frames(self) -> list:
        # Each entry is [name, child_s]; the path is the names joined.
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _path(self, stack: list, leaf: str) -> tuple[str, ...]:
        return tuple(entry[0] for entry in stack) + (leaf,)

    def _bump(
        self, path: tuple[str, ...], count: int, total_s: float, self_s: float
    ) -> None:
        with self._lock:
            stat = self._stats.get(path)
            if stat is None:
                stat = self._stats[path] = StageStat()
            stat.count += count
            stat.total_s += total_s
            stat.self_s += self_s

    # -- recording ----------------------------------------------------

    @contextmanager
    def scope(self, name: str):
        """Time a region; nested scopes/adds reduce its exclusive time."""
        _check_name(name)
        stack = self._frames()
        entry = [name, 0.0]
        stack.append(entry)
        start = self._clock()
        try:
            yield self
        finally:
            elapsed = self._clock() - start
            stack.pop()
            self._bump(
                self._path(stack, name), 1, elapsed, max(elapsed - entry[1], 0.0)
            )
            if stack:
                stack[-1][1] += elapsed

    def add(self, name: str, seconds: float, count: int = 1) -> None:
        """Record a pre-measured duration under the current scope."""
        _check_name(name)
        seconds = max(float(seconds), 0.0)
        stack = self._frames()
        self._bump(self._path(stack, name), count, seconds, seconds)
        if stack:
            stack[-1][1] += seconds

    def add_frame(
        self,
        root: str,
        total_s: float,
        stages: dict[str, float],
        frames: int = 1,
    ) -> None:
        """Record one pipeline frame/block: root total + per-stage splits.

        The root's exclusive time is ``total_s`` minus the stage sum
        (clamped at zero); each stage is a leaf child of the root.
        ``frames`` scales the invocation count (block mode records one
        call covering many frames).
        """
        _check_name(root)
        total_s = max(float(total_s), 0.0)
        stack = self._frames()
        base = self._path(stack, root)
        stage_sum = 0.0
        for stage, seconds in stages.items():
            _check_name(stage)
            seconds = max(float(seconds), 0.0)
            stage_sum += seconds
            self._bump(base + (stage,), frames, seconds, seconds)
        self._bump(base, frames, total_s, max(total_s - stage_sum, 0.0))
        if stack:
            stack[-1][1] += total_s

    # -- aggregation --------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._stats)

    def stats(self) -> dict[tuple[str, ...], StageStat]:
        """A point-in-time copy of the accumulated table."""
        with self._lock:
            return {
                path: StageStat(s.count, s.total_s, s.self_s)
                for path, s in self._stats.items()
            }

    def total_self_s(self) -> float:
        with self._lock:
            return sum(s.self_s for s in self._stats.values())

    def merge(self, other: "StageProfile | dict") -> "StageProfile":
        """Fold another profile (or its :meth:`to_dict`) into this one.

        Addition of counts/times per path — associative and commutative,
        the same contract as :meth:`MetricsSnapshot.merged`, so parallel
        worker profiles can be folded in any order.
        """
        if isinstance(other, StageProfile):
            items = other.stats().items()
        else:
            if other.get("schema") != PROFILE_SCHEMA:
                raise ValueError(
                    f"unsupported stage-profile schema: {other.get('schema')!r}"
                )
            items = [
                (tuple(key.split(_PATH_SEP)), StageStat(**stat))
                for key, stat in other["stages"].items()
            ]
        for path, stat in items:
            self._bump(path, stat.count, stat.total_s, stat.self_s)
        return self

    # -- exporters ----------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "schema": PROFILE_SCHEMA,
            "stages": {
                _PATH_SEP.join(path): stat.to_dict()
                for path, stat in sorted(self.stats().items())
            },
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "StageProfile":
        return cls().merge(payload)

    def collapsed(self) -> str:
        """flamegraph.pl-compatible collapsed stacks, weight = self µs."""
        lines = []
        for path, stat in sorted(self.stats().items()):
            weight = int(round(stat.self_s * 1e6))
            if weight > 0:
                lines.append(f"{_PATH_SEP.join(path)} {weight}")
        return "\n".join(lines)

    def chrome_events(self) -> list[dict]:
        """Complete ("X") events, one per stage path, sized by self time.

        The profile stores aggregates rather than a timeline, so events
        are laid out sequentially per depth — a duration-accurate (not
        time-accurate) flame view loadable in chrome://tracing/Perfetto.
        """
        events: list[dict] = []
        cursor: dict[tuple[str, ...], float] = {}
        for path, stat in sorted(self.stats().items()):
            parent = path[:-1]
            start = cursor.get(parent, 0.0)
            events.append(
                {
                    "name": path[-1],
                    "ph": "X",
                    "pid": 0,
                    "tid": len(path) - 1,
                    "ts": start * 1e6,
                    "dur": stat.total_s * 1e6,
                    "args": {
                        "path": _PATH_SEP.join(path),
                        "count": stat.count,
                        "self_s": stat.self_s,
                    },
                }
            )
            cursor[parent] = start + stat.total_s
            cursor.setdefault(path, start)
        return events


# ---------------------------------------------------------------------------
# Module-global active profile (the pipeline's single-read hook)
# ---------------------------------------------------------------------------

_STAGE_PROFILE: StageProfile | None = None


def get_stage_profile() -> StageProfile | None:
    """The process-wide active profile, or ``None`` when profiling is off."""
    return _STAGE_PROFILE


def set_stage_profile(profile: StageProfile | None) -> StageProfile | None:
    """Install ``profile`` as the active profile; returns the previous one."""
    global _STAGE_PROFILE
    previous = _STAGE_PROFILE
    _STAGE_PROFILE = profile
    return previous


@contextmanager
def stage_profiling(profile: StageProfile | None = None):
    """Install a (fresh by default) profile for the block, then restore."""
    active = StageProfile() if profile is None else profile
    previous = set_stage_profile(active)
    try:
        yield active
    finally:
        set_stage_profile(previous)


def render_stage_profile(profile: StageProfile, top: int = 20) -> str:
    """A fixed-width table of the hottest stage paths by exclusive time."""
    stats = sorted(
        profile.stats().items(), key=lambda kv: (-kv[1].self_s, kv[0])
    )
    if not stats:
        return "(no stages recorded)"
    total_self = sum(stat.self_s for _, stat in stats) or 1.0
    lines = [
        "Stage profile (exclusive time):",
        f"  {'count':>9}  {'incl s':>9}  {'excl s':>9}  {'excl %':>6}  stage",
    ]
    for path, stat in stats[:top]:
        indent = "  " * (len(path) - 1)
        lines.append(
            f"  {stat.count:>9}  {stat.total_s:>9.4f}  {stat.self_s:>9.4f}"
            f"  {100.0 * stat.self_s / total_self:>5.1f}%  {indent}{path[-1]}"
        )
    if len(stats) > top:
        lines.append(f"  ... {len(stats) - top} more stage paths")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# SamplingProfiler: background-thread stack sampler
# ---------------------------------------------------------------------------


class SamplingProfiler:
    """Statistical profiler sampling all thread stacks from a daemon thread.

    ``hz`` sets the sampling rate (the sampler sleeps on an event, so
    ``stop()`` returns promptly regardless of rate).  ``pause()`` /
    ``resume()`` gate sampling without tearing the thread down — a paused
    profiler records nothing, exactly (pinned by the pause/resume
    boundary tests).  :meth:`sample_once` takes a single synchronous
    sample and returns the number of stacks recorded; it honours the
    paused flag, which makes boundary behaviour testable without racing
    the background thread.

    Consecutive identical frames (direct recursion) collapse into one
    entry so a depth-1000 recursive stack costs one table slot; the table
    itself holds at most ``max_stacks`` unique stacks, with the excess
    counted under ``<overflow>`` so totals remain exact.
    """

    _THREAD_NAME = "repro-prof-sampler"

    def __init__(
        self,
        hz: float = 97.0,
        max_depth: int = 64,
        max_stacks: int = 4096,
        timeline: int = 2048,
    ) -> None:
        if hz <= 0:
            raise ValueError(f"hz must be positive: {hz!r}")
        self.hz = float(hz)
        self.max_depth = int(max_depth)
        self.max_stacks = int(max_stacks)
        self._lock = threading.Lock()
        self._stacks: dict[tuple[str, ...], int] = {}
        self._timeline: deque = deque(maxlen=int(timeline))
        self.n_ticks = 0
        self.n_samples = 0
        self.n_overflow = 0
        self._paused = False
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # -- lifecycle ----------------------------------------------------

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    @property
    def paused(self) -> bool:
        return self._paused

    def start(self) -> "SamplingProfiler":
        if self._thread is not None:
            raise RuntimeError("profiler already started")
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name=self._THREAD_NAME, daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        thread = self._thread
        if thread is None:
            return
        self._stop.set()
        thread.join(timeout=5.0)
        self._thread = None

    def pause(self) -> None:
        self._paused = True

    def resume(self) -> None:
        self._paused = False

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    def _loop(self) -> None:
        interval = 1.0 / self.hz
        while not self._stop.wait(interval):
            if not self._paused:
                self.sample_once()

    # -- sampling -----------------------------------------------------

    def sample_once(self) -> int:
        """Take one sample of every live thread; returns stacks recorded."""
        if self._paused:
            return 0
        # Only the sampler's own thread is excluded — a synchronous call
        # (tests, one-shot probes) deliberately records the caller too.
        skip = set()
        thread = self._thread
        if thread is not None and thread.ident is not None:
            skip.add(thread.ident)
        now = time.perf_counter()
        recorded = 0
        frames = sys._current_frames()
        try:
            with self._lock:
                self.n_ticks += 1
                for tid, frame in frames.items():
                    if tid in skip:
                        continue
                    stack = self._collapse(frame)
                    self._record(stack)
                    self._timeline.append((now, tid, stack))
                    recorded += 1
                self.n_samples += recorded
        finally:
            del frames
        return recorded

    def _collapse(self, frame) -> tuple[str, ...]:
        labels: list[str] = []
        depth = 0
        while frame is not None and depth < self.max_depth:
            code = frame.f_code
            label = f"{os.path.basename(code.co_filename)}:{code.co_name}"
            # Direct recursion folds into a single frame entry.
            if not labels or labels[-1] != label:
                labels.append(label)
            frame = frame.f_back
            depth += 1
        if frame is not None:
            labels.append("<truncated>")
        labels.reverse()
        return tuple(labels)

    def _record(self, stack: tuple[str, ...]) -> None:
        count = self._stacks.get(stack)
        if count is not None:
            self._stacks[stack] = count + 1
        elif len(self._stacks) < self.max_stacks:
            self._stacks[stack] = 1
        else:
            overflow = ("<overflow>",)
            self._stacks[overflow] = self._stacks.get(overflow, 0) + 1
            self.n_overflow += 1

    # -- aggregation & exporters --------------------------------------

    def stacks(self) -> dict[tuple[str, ...], int]:
        with self._lock:
            return dict(self._stacks)

    def merge(self, other: "SamplingProfiler | dict") -> "SamplingProfiler":
        """Additive fold of another sampler's stack table (associative)."""
        if isinstance(other, SamplingProfiler):
            items = other.stacks()
            ticks, samples, overflow = (
                other.n_ticks,
                other.n_samples,
                other.n_overflow,
            )
        else:
            if other.get("schema") != PROFILE_SCHEMA:
                raise ValueError(
                    f"unsupported sampling-profile schema: {other.get('schema')!r}"
                )
            items = {
                tuple(key.split(_PATH_SEP)): int(count)
                for key, count in other["stacks"].items()
            }
            ticks = int(other.get("n_ticks", 0))
            samples = int(other.get("n_samples", 0))
            overflow = int(other.get("n_overflow", 0))
        with self._lock:
            for stack, count in items.items():
                self._stacks[stack] = self._stacks.get(stack, 0) + count
            self.n_ticks += ticks
            self.n_samples += samples
            self.n_overflow += overflow
        return self

    def to_dict(self) -> dict:
        with self._lock:
            return {
                "schema": PROFILE_SCHEMA,
                "hz": self.hz,
                "n_ticks": self.n_ticks,
                "n_samples": self.n_samples,
                "n_overflow": self.n_overflow,
                "stacks": {
                    _PATH_SEP.join(stack): count
                    for stack, count in sorted(self._stacks.items())
                },
            }

    @classmethod
    def from_dict(cls, payload: dict) -> "SamplingProfiler":
        profiler = cls(hz=float(payload.get("hz", 97.0)))
        return profiler.merge(payload)

    def collapsed(self) -> str:
        """flamegraph.pl-compatible collapsed stacks, weight = samples."""
        return "\n".join(
            f"{_PATH_SEP.join(stack)} {count}"
            for stack, count in sorted(self.stacks().items())
        )

    def chrome_events(self) -> list[dict]:
        """Instant events from the recent-sample timeline (chrome://tracing)."""
        with self._lock:
            timeline = list(self._timeline)
        return [
            {
                "name": stack[-1] if stack else "<empty>",
                "ph": "i",
                "s": "t",
                "pid": 0,
                "tid": tid,
                "ts": wall * 1e6,
                "args": {"stack": _PATH_SEP.join(stack)},
            }
            for wall, tid, stack in timeline
        ]

    def chrome_json(self) -> str:
        return json.dumps({"traceEvents": self.chrome_events()}, indent=2)
