"""Run provenance: a manifest pinning down exactly what produced an artifact.

A :class:`RunManifest` is written alongside every ``generate`` /
``evaluate`` output so any corpus or evaluation result can be
reconstructed from its manifest alone: the full invocation config and its
digest, the seeds, package versions, the platform, the git revision when
available, plus a metrics snapshot and trace summary of the run that
produced it.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import subprocess
import sys
import time
from dataclasses import dataclass, field

__all__ = ["RunManifest", "config_digest"]

# Schema 2 adds duration_s (monotonic run duration) and the optional
# profile / bench_ledger artifact references; schema-1 payloads load with
# those fields defaulted to None.
MANIFEST_SCHEMA = 2


def config_digest(config: dict) -> str:
    """SHA-256 of the canonical JSON form of *config*.

    Two runs with byte-identical digests were invoked with the same
    configuration (key order and float formatting are normalized).
    """
    canonical = json.dumps(config, sort_keys=True, separators=(",", ":"),
                           default=str)
    return hashlib.sha256(canonical.encode()).hexdigest()


def _package_versions() -> dict:
    versions = {
        "python": platform.python_version(),
        "repro": _repro_version(),
    }
    try:
        import numpy
        versions["numpy"] = numpy.__version__
    except Exception:                               # pragma: no cover
        versions["numpy"] = None
    return versions


def _repro_version() -> str | None:
    try:
        from importlib.metadata import version
        return version("repro")
    except Exception:
        return None


def _platform_info() -> dict:
    return {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "implementation": platform.python_implementation(),
    }


def _git_sha() -> str | None:
    """Best-effort ``git rev-parse HEAD`` of the working directory."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"], capture_output=True, text=True,
            timeout=5, cwd=os.getcwd())
    except (OSError, subprocess.SubprocessError):
        return None
    if proc.returncode != 0:
        return None
    return proc.stdout.strip() or None


@dataclass
class RunManifest:
    """Everything needed to reproduce one ``generate``/``evaluate`` run.

    Parameters
    ----------
    command:
        The CLI subcommand (or programmatic entry point) that ran.
    config:
        The full invocation configuration as plain builtins.
    digest:
        :func:`config_digest` of ``config``.
    seeds:
        Every seed the run consumed, by role (e.g. ``{"campaign": 2020}``).
    versions, platform_info, git_sha:
        The software environment the run executed in.
    created_wall_s / created_iso:
        Wall-clock creation time (epoch seconds + ISO-8601 UTC).
    argv:
        The raw argument vector, when invoked from the CLI.
    metrics:
        A :meth:`~repro.obs.metrics.MetricsSnapshot.to_dict` payload of
        the run's metrics, when collected.
    trace_summary:
        A :func:`~repro.obs.trace.summarize_trace` payload, when tracing
        was on.
    duration_s:
        How long the run took, measured on the **monotonic** clock
        (``time.perf_counter`` deltas) — never a wall-clock difference,
        so NTP steps or DST cannot corrupt it.
    profile / bench_ledger:
        Optional artifact references (``{"path": ..., "kind": ...}``)
        linking the run to the stage/sampling profile it emitted and to
        the benchmark ledger its records were appended to.
    """

    command: str
    config: dict
    digest: str
    seeds: dict = field(default_factory=dict)
    versions: dict = field(default_factory=dict)
    platform_info: dict = field(default_factory=dict)
    git_sha: str | None = None
    created_wall_s: float = 0.0
    created_iso: str = ""
    argv: list = field(default_factory=list)
    metrics: dict | None = None
    trace_summary: dict | None = None
    duration_s: float | None = None
    profile: dict | None = None
    bench_ledger: dict | None = None
    schema: int = MANIFEST_SCHEMA

    @classmethod
    def create(cls, command: str, config: dict,
               seeds: dict | None = None,
               argv: list | None = None,
               metrics: dict | None = None,
               trace_summary: dict | None = None,
               duration_s: float | None = None,
               profile: dict | None = None,
               bench_ledger: dict | None = None) -> "RunManifest":
        """Build a manifest for the current process/environment."""
        now = time.time()
        return cls(
            command=command,
            config=dict(config),
            digest=config_digest(config),
            seeds=dict(seeds or {}),
            versions=_package_versions(),
            platform_info=_platform_info(),
            git_sha=_git_sha(),
            created_wall_s=now,
            created_iso=time.strftime("%Y-%m-%dT%H:%M:%SZ",
                                      time.gmtime(now)),
            argv=list(argv if argv is not None else sys.argv),
            metrics=metrics,
            trace_summary=trace_summary,
            duration_s=duration_s,
            profile=dict(profile) if profile else None,
            bench_ledger=dict(bench_ledger) if bench_ledger else None)

    def to_dict(self) -> dict:
        """JSON-ready dict."""
        return {
            "schema": self.schema,
            "command": self.command,
            "config": dict(self.config),
            "digest": self.digest,
            "seeds": dict(self.seeds),
            "versions": dict(self.versions),
            "platform": dict(self.platform_info),
            "git_sha": self.git_sha,
            "created_wall_s": self.created_wall_s,
            "created_iso": self.created_iso,
            "argv": list(self.argv),
            "metrics": self.metrics,
            "trace_summary": self.trace_summary,
            "duration_s": self.duration_s,
            "profile": self.profile,
            "bench_ledger": self.bench_ledger,
        }

    def to_json(self, indent: int = 2) -> str:
        """The manifest as a JSON document."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, payload: dict) -> "RunManifest":
        """Rebuild a manifest from :meth:`to_dict` output."""
        return cls(
            command=payload["command"],
            config=dict(payload["config"]),
            digest=payload["digest"],
            seeds=dict(payload.get("seeds", {})),
            versions=dict(payload.get("versions", {})),
            platform_info=dict(payload.get("platform", {})),
            git_sha=payload.get("git_sha"),
            created_wall_s=float(payload.get("created_wall_s", 0.0)),
            created_iso=payload.get("created_iso", ""),
            argv=list(payload.get("argv", [])),
            metrics=payload.get("metrics"),
            trace_summary=payload.get("trace_summary"),
            duration_s=(None if payload.get("duration_s") is None
                        else float(payload["duration_s"])),
            profile=payload.get("profile"),
            bench_ledger=payload.get("bench_ledger"),
            schema=int(payload.get("schema", MANIFEST_SCHEMA)))

    @classmethod
    def from_json(cls, text: str) -> "RunManifest":
        """Rebuild a manifest from :meth:`to_json` output."""
        return cls.from_dict(json.loads(text))

    def verify_digest(self) -> bool:
        """Whether the stored digest still matches the stored config."""
        return self.digest == config_digest(self.config)

    def write(self, path) -> None:
        """Write the manifest JSON to *path*."""
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json() + "\n")

    @classmethod
    def load(cls, path) -> "RunManifest":
        """Read a manifest written by :meth:`write`."""
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_json(fh.read())
