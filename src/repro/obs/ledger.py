"""Persistent benchmark ledger: versioned records + regression comparison.

The benchmark suites measure the numbers the paper's claims rest on
(frames/sec, sessions/core, instrumentation overhead), but a CI gate only
answers "did this run clear the bar" — the *trajectory* across PRs is
lost the moment the job finishes.  This module gives every measurement a
durable, versioned home:

* :class:`BenchRecord` — one measurement: suite + benchmark + metric
  identity, the value/units, the scale knobs it was taken at (workers,
  sessions, block size...), and provenance (git SHA, platform,
  :class:`~repro.obs.manifest.RunManifest` digest).
* :class:`BenchLedger` — an append-only ``BENCH_<suite>.json`` file per
  suite.  Appending re-reads the file, so ledgers accumulate across runs
  and PRs; the committed ``benchmarks/baselines/`` ledgers are the
  regression baseline.
* :func:`compare_records` / :func:`render_comparison` — the engine
  behind ``airfinger bench compare --baseline``: per-metric
  direction-aware relative change against the newest baseline record,
  flagged against a per-record (falling back to per-call) tolerance.

Comparison semantics: each record carries ``direction`` — for
``higher_is_better`` metrics a drop beyond tolerance is a regression,
for ``lower_is_better`` a rise is.  An identical re-run therefore always
passes (zero change), and a 2x throughput collapse always flags (change
-0.5 against any sane tolerance).  A zero baseline (e.g. a perfect
miss-rate) makes relative change undefined; there the tolerance is
applied as an **absolute** bound instead.
"""

from __future__ import annotations

import json
import math
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.obs.manifest import _git_sha, _platform_info

__all__ = [
    "BENCH_SCHEMA",
    "DEFAULT_TOLERANCE",
    "BenchRecord",
    "BenchLedger",
    "BenchComparison",
    "ledger_path",
    "load_ledgers",
    "compare_records",
    "render_comparison",
    "render_trajectory",
]

BENCH_SCHEMA = 1

#: Relative change a metric may move before it flags, when the record does
#: not pin its own tolerance.  CI benchmark runners are noisy (shared
#: tenancy, turbo states); sub-25% drift is weather, not a regression.
DEFAULT_TOLERANCE = 0.25

_DIRECTIONS = ("higher_is_better", "lower_is_better")


@dataclass
class BenchRecord:
    """One benchmark measurement, self-describing and provenance-linked."""

    suite: str
    benchmark: str
    metric: str
    value: float
    unit: str = ""
    direction: str = "higher_is_better"
    tolerance: float | None = None
    scale: dict = field(default_factory=dict)
    git_sha: str | None = None
    platform_info: dict = field(default_factory=dict)
    manifest_digest: str | None = None
    created_wall_s: float = 0.0
    created_iso: str = ""
    schema: int = BENCH_SCHEMA

    def __post_init__(self) -> None:
        if self.direction not in _DIRECTIONS:
            raise ValueError(
                f"direction must be one of {_DIRECTIONS}: {self.direction!r}")
        self.value = float(self.value)
        if not math.isfinite(self.value):
            raise ValueError(
                f"value must be finite: {self.suite}/{self.benchmark}/"
                f"{self.metric} = {self.value!r}")
        if self.tolerance is not None and self.tolerance < 0:
            raise ValueError(f"tolerance must be >= 0: {self.tolerance!r}")

    @property
    def key(self) -> tuple[str, str, str]:
        """The identity compared across runs."""
        return (self.suite, self.benchmark, self.metric)

    @classmethod
    def create(cls, suite: str, benchmark: str, metric: str, value: float,
               unit: str = "", direction: str = "higher_is_better",
               tolerance: float | None = None,
               scale: dict | None = None,
               manifest_digest: str | None = None) -> "BenchRecord":
        """Build a record stamped with the current environment."""
        now = time.time()
        return cls(
            suite=suite, benchmark=benchmark, metric=metric, value=value,
            unit=unit, direction=direction, tolerance=tolerance,
            scale=dict(scale or {}),
            git_sha=_git_sha(),
            platform_info=_platform_info(),
            manifest_digest=manifest_digest,
            created_wall_s=now,
            created_iso=time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime(now)))

    def to_dict(self) -> dict:
        return {
            "schema": self.schema,
            "suite": self.suite,
            "benchmark": self.benchmark,
            "metric": self.metric,
            "value": self.value,
            "unit": self.unit,
            "direction": self.direction,
            "tolerance": self.tolerance,
            "scale": dict(self.scale),
            "git_sha": self.git_sha,
            "platform": dict(self.platform_info),
            "manifest_digest": self.manifest_digest,
            "created_wall_s": self.created_wall_s,
            "created_iso": self.created_iso,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "BenchRecord":
        return cls(
            suite=payload["suite"],
            benchmark=payload["benchmark"],
            metric=payload["metric"],
            value=float(payload["value"]),
            unit=payload.get("unit", ""),
            direction=payload.get("direction", "higher_is_better"),
            tolerance=payload.get("tolerance"),
            scale=dict(payload.get("scale", {})),
            git_sha=payload.get("git_sha"),
            platform_info=dict(payload.get("platform", {})),
            manifest_digest=payload.get("manifest_digest"),
            created_wall_s=float(payload.get("created_wall_s", 0.0)),
            created_iso=payload.get("created_iso", ""),
            schema=int(payload.get("schema", BENCH_SCHEMA)))


def ledger_path(directory, suite: str) -> Path:
    """The canonical ``BENCH_<suite>.json`` path under *directory*."""
    return Path(directory) / f"BENCH_{suite}.json"


class BenchLedger:
    """Append-only record store for one suite (``BENCH_<suite>.json``)."""

    def __init__(self, path) -> None:
        self.path = Path(path)

    def load(self) -> list[BenchRecord]:
        """All records in file order (oldest first); missing file = []."""
        if not self.path.exists():
            return []
        payload = json.loads(self.path.read_text(encoding="utf-8"))
        if payload.get("schema") != BENCH_SCHEMA:
            raise ValueError(
                f"unsupported ledger schema in {self.path}: "
                f"{payload.get('schema')!r}")
        return [BenchRecord.from_dict(r) for r in payload.get("records", [])]

    def append(self, records) -> list[BenchRecord]:
        """Append *records*, preserving everything already on disk."""
        existing = self.load()
        merged = existing + list(records)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "schema": BENCH_SCHEMA,
            "records": [r.to_dict() for r in merged],
        }
        self.path.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8")
        return merged


def load_ledgers(path) -> list[BenchRecord]:
    """Load records from a ledger file or every ``BENCH_*.json`` in a dir."""
    path = Path(path)
    if path.is_dir():
        records: list[BenchRecord] = []
        for ledger in sorted(path.glob("BENCH_*.json")):
            records.extend(BenchLedger(ledger).load())
        return records
    return BenchLedger(path).load()


# ---------------------------------------------------------------------------
# Comparison
# ---------------------------------------------------------------------------


@dataclass
class BenchComparison:
    """One metric's baseline-vs-current verdict."""

    suite: str
    benchmark: str
    metric: str
    unit: str
    direction: str
    baseline: float | None
    current: float | None
    change: float | None          # signed; positive = better
    tolerance: float
    status: str                   # ok | regression | improvement | new | missing

    @property
    def key(self) -> tuple[str, str, str]:
        return (self.suite, self.benchmark, self.metric)

    def to_dict(self) -> dict:
        return {
            "suite": self.suite, "benchmark": self.benchmark,
            "metric": self.metric, "unit": self.unit,
            "direction": self.direction, "baseline": self.baseline,
            "current": self.current, "change": self.change,
            "tolerance": self.tolerance, "status": self.status,
        }


def _latest_by_key(records) -> dict:
    """Last record per (suite, benchmark, metric) — file order is append
    order, so "last" is the newest run."""
    latest: dict = {}
    for record in records:
        latest[record.key] = record
    return latest


def compare_records(baseline_records, current_records,
                    tolerance: float | None = None) -> list[BenchComparison]:
    """Compare the newest current record per metric against the newest
    baseline record.

    The effective tolerance per metric is the current record's own
    ``tolerance`` when set, else the *tolerance* argument, else
    :data:`DEFAULT_TOLERANCE`.
    """
    default = DEFAULT_TOLERANCE if tolerance is None else float(tolerance)
    baseline = _latest_by_key(baseline_records)
    current = _latest_by_key(current_records)
    rows: list[BenchComparison] = []
    for key in sorted(set(baseline) | set(current)):
        base, cur = baseline.get(key), current.get(key)
        record = cur or base
        tol = record.tolerance if record.tolerance is not None else default
        if cur is None:
            rows.append(BenchComparison(
                *key, unit=record.unit, direction=record.direction,
                baseline=base.value, current=None, change=None,
                tolerance=tol, status="missing"))
            continue
        if base is None:
            rows.append(BenchComparison(
                *key, unit=record.unit, direction=record.direction,
                baseline=None, current=cur.value, change=None,
                tolerance=tol, status="new"))
            continue
        sign = 1.0 if cur.direction == "higher_is_better" else -1.0
        if base.value != 0.0:
            change = sign * (cur.value - base.value) / abs(base.value)
            breach = change < -tol
        else:
            # Relative change is undefined off a zero baseline (perfect
            # miss rate, zero drops): apply the tolerance absolutely.
            delta = sign * cur.value
            change = None if cur.value == 0.0 else delta
            breach = delta < -tol
        if breach:
            status = "regression"
        elif change is not None and change > tol:
            status = "improvement"
        else:
            status = "ok"
        rows.append(BenchComparison(
            *key, unit=cur.unit, direction=cur.direction,
            baseline=base.value, current=cur.value, change=change,
            tolerance=tol, status=status))
    return rows


def _fmt_value(value: float | None) -> str:
    if value is None:
        return "-"
    if value == 0 or 0.01 <= abs(value) < 1e6:
        return f"{value:.4g}"
    return f"{value:.3e}"


def render_comparison(rows) -> str:
    """A fixed-width trajectory table, regressions first."""
    if not rows:
        return "(no benchmark records to compare)"
    order = {"regression": 0, "improvement": 1, "new": 2, "missing": 3,
             "ok": 4}
    rows = sorted(rows, key=lambda r: (order[r.status], r.key))
    lines = [
        f"  {'status':<11} {'change':>8}  {'baseline':>11} {'current':>11}"
        f"  metric",
    ]
    for row in rows:
        change = "-" if row.change is None else f"{row.change:+.1%}"
        name = f"{row.suite}/{row.benchmark}/{row.metric}"
        unit = f" [{row.unit}]" if row.unit else ""
        lines.append(
            f"  {row.status:<11} {change:>8}  {_fmt_value(row.baseline):>11}"
            f" {_fmt_value(row.current):>11}  {name}{unit}")
    n_reg = sum(1 for r in rows if r.status == "regression")
    lines.append(
        f"  {len(rows)} metrics compared, {n_reg} regression(s) beyond "
        f"tolerance")
    return "\n".join(lines)


def render_trajectory(records, last: int = 10) -> str:
    """Per-metric history of the newest *last* records in a ledger."""
    if not records:
        return "(empty ledger)"
    by_key: dict = {}
    for record in records:
        by_key.setdefault(record.key, []).append(record)
    lines = []
    for key in sorted(by_key):
        history = by_key[key][-last:]
        unit = history[-1].unit
        suffix = f" [{unit}]" if unit else ""
        lines.append(f"  {'/'.join(key)}{suffix}:")
        for record in history:
            sha = (record.git_sha or "unknown")[:9]
            lines.append(
                f"    {record.created_iso or '(no date)':<21} {sha:<9} "
                f"{_fmt_value(record.value)}")
    return "\n".join(lines)
