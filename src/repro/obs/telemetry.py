"""Live telemetry plane: time series, SLO burn rates, health states.

The base :mod:`repro.obs.metrics` layer answers "what happened since
process start" — cumulative counters and lifetime histograms.  This
module layers *time* on top of it, which is what an operator watching a
soak run (or the ``airfinger top`` dashboard) actually needs:

* :class:`TelemetryCollector` samples registry snapshots on a fixed
  cadence and keeps bounded ring-buffer series: windowed **rates** for
  counters and sliding-window **p50/p95/p99** for histograms, computed
  from snapshot *deltas* so a latency regression shows up as it
  develops instead of being averaged away by hours of healthy history;
* :class:`SloPolicy` / :class:`BurnRateAlerter` implement multi-window
  burn-rate alerting: an objective like "≥99% of frames inside the
  50 ms deadline" has an error budget of 1%, and the alerter fires when
  the short *and* long windows both burn budget faster than the
  threshold — the standard construction that reacts in seconds to a
  real outage but does not flap on a single slow frame;
* :class:`HealthEvaluator` folds the ``serve.*`` and
  ``pipeline.faults.*`` series into per-tenant / per-session
  ``ok | degraded | critical`` states with human-readable reasons;
* :class:`TelemetryPlane` composes the three into one ``tick()`` that
  yields a JSON-safe payload — the unit the server pushes to ``watch``
  subscribers, the loadgen persists as a JSONL timeline, and
  ``airfinger top`` renders.

Everything is stdlib-only and clock-injectable (tests drive a fake
clock), and every payload is sanitized to finite floats so it survives
the wire protocol's ``allow_nan=False`` framing.
"""

from __future__ import annotations

import json
import math
import time
from collections import deque
from dataclasses import dataclass, field

from repro.obs.metrics import (
    MetricsRegistry,
    MetricsSnapshot,
    _bucket_quantile,
    get_registry,
    parse_series_key,
)

__all__ = [
    "Alert",
    "BurnRateAlerter",
    "HealthEvaluator",
    "HealthReport",
    "HealthThresholds",
    "SloObjective",
    "SloPolicy",
    "TelemetryCollector",
    "TelemetryPlane",
    "TelemetrySample",
    "TimelineWriter",
    "default_serve_policy",
    "load_timeline",
    "render_telemetry_summary",
    "render_top",
    "summarize_timeline",
]

#: Finite stand-in for an infinite burn rate (zero-budget objectives):
#: payloads must survive ``json.dumps(..., allow_nan=False)``.
_BURN_CAP = 1e6

#: Severity order for health states.
_SEVERITY = {"ok": 0, "degraded": 1, "critical": 2}


def _finite(value, default=None):
    """*value* if it is a finite number, else *default* (wire safety)."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return value
    return value if math.isfinite(value) else default


def _matches(key: str, name: str) -> bool:
    """True when series *key* belongs to metric *name* (any labels)."""
    return key == name or key.startswith(name + "{")


@dataclass
class TelemetrySample:
    """One collector tick: windowed rates and sliding-window quantiles.

    ``rates`` maps counter series keys to per-second rates over the last
    sampling interval; ``gauges`` are pass-through instantaneous values;
    ``histograms`` maps series keys to sliding-window stats
    (``rate_hz``, ``count``, ``p50``/``p95``/``p99``, ``max``) computed
    from the last ``quantile_window`` snapshot deltas.
    """

    seq: int
    time_s: float
    wall_time_s: float
    dt_s: float
    rates: dict[str, float] = field(default_factory=dict)
    gauges: dict[str, float] = field(default_factory=dict)
    histograms: dict[str, dict] = field(default_factory=dict)

    def to_dict(self) -> dict:
        """JSON-safe dict (every float finite or ``None``)."""
        return {
            "seq": self.seq,
            "time_s": _finite(self.time_s, 0.0),
            "wall_time_s": _finite(self.wall_time_s, 0.0),
            "dt_s": _finite(self.dt_s, 0.0),
            "rates": {k: _finite(v, 0.0) for k, v in self.rates.items()},
            "gauges": {k: _finite(v, 0.0) for k, v in self.gauges.items()},
            "histograms": {
                k: {f: _finite(v) for f, v in entry.items()}
                for k, entry in self.histograms.items()},
        }


class _HistWindow:
    """Ring buffer of histogram snapshot deltas for one series."""

    __slots__ = ("bounds", "deltas", "lifetime_max")

    def __init__(self, bounds: tuple[float, ...], maxlen: int) -> None:
        self.bounds = bounds
        #: entries are ``(t, counts_delta, sum_delta, count_delta)``
        self.deltas: deque = deque(maxlen=maxlen)
        self.lifetime_max: float | None = None

    def window_counts(self) -> tuple[list[int], int, float, float]:
        """Summed ``(counts, count, sum, span_s)`` over the window."""
        counts = [0] * (len(self.bounds) + 1)
        total = 0
        total_sum = 0.0
        span = 0.0
        if self.deltas:
            span = self.deltas[-1][0] - self.deltas[0][0]
        for _, dcounts, dsum, dcount in self.deltas:
            for i, c in enumerate(dcounts):
                counts[i] += c
            total += dcount
            total_sum += dsum
        return counts, total, total_sum, span

    def quantile(self, q: float) -> float | None:
        """Sliding-window quantile estimate (``None`` with no data)."""
        counts, total, _, _ = self.window_counts()
        if total == 0:
            return None
        # bucket-edge bounds: the window no longer knows the exact
        # min/max of just these observations, so clamp to the occupied
        # bucket span (lifetime max for the overflow bucket)
        lo = 0.0
        hi = self.bounds[-1]
        for i, c in enumerate(counts):
            if c:
                lo = self.bounds[i - 1] if i > 0 else 0.0
                break
        for i in range(len(counts) - 1, -1, -1):
            if counts[i]:
                if i < len(self.bounds):
                    hi = self.bounds[i]
                elif self.lifetime_max is not None:
                    hi = max(self.lifetime_max, self.bounds[-1])
                break
        return _bucket_quantile(self.bounds, counts, total, lo, hi, q)


class TelemetryCollector:
    """Samples a :class:`MetricsRegistry` into bounded time series.

    Call :meth:`sample` on a fixed cadence (the server's telemetry loop
    does); each call diffs the current snapshot against the previous
    one and appends to ring buffers:

    * per-counter cumulative series (``window`` points) backing
      :meth:`window_delta` / :meth:`window_rates` — the inputs to
      burn-rate and health evaluation;
    * per-histogram delta windows (``quantile_window`` deltas) backing
      :meth:`window_quantile` — sliding p50/p95/p99 that track the last
      ``quantile_window × interval`` seconds instead of process
      lifetime.

    Clocks are injectable so tests (and timeline replays) can drive
    virtual time.
    """

    def __init__(self, metrics: MetricsRegistry | None = None,
                 interval_s: float = 1.0, window: int = 120,
                 quantile_window: int = 10,
                 clock=time.monotonic, wall_clock=time.time) -> None:
        if interval_s <= 0:
            raise ValueError(f"interval_s must be > 0, got {interval_s}")
        if window < 2 or quantile_window < 1:
            raise ValueError("window must be >= 2 and quantile_window >= 1")
        self.metrics = metrics if metrics is not None else get_registry()
        self.interval_s = float(interval_s)
        self.window = int(window)
        self.quantile_window = int(quantile_window)
        self._clock = clock
        self._wall_clock = wall_clock
        self._seq = 0
        self._start_t = clock()
        self._prev: MetricsSnapshot = self.metrics.snapshot()
        self._prev_t = self._start_t
        self._samples: deque[TelemetrySample] = deque(maxlen=window)
        #: cumulative counter points per series: deque of ``(t, value)``
        self._counter_series: dict[str, deque] = {}
        self._hist_windows: dict[str, _HistWindow] = {}

    # ------------------------------------------------------------------
    # sampling
    # ------------------------------------------------------------------
    def sample(self, now_s: float | None = None) -> TelemetrySample:
        """Take one sample; returns the new :class:`TelemetrySample`."""
        now = self._clock() if now_s is None else float(now_s)
        snap = self.metrics.snapshot()
        dt = max(now - self._prev_t, 1e-9)
        rates: dict[str, float] = {}
        for key, value in snap.counters.items():
            series = self._counter_series.get(key)
            if series is None:
                series = deque(maxlen=self.window + 1)
                # anchor at the collector baseline so the first window
                # delta covers everything since collector start
                base = self._prev.counters.get(key, 0.0)
                series.append((self._prev_t, base))
                self._counter_series[key] = series
            prev_value = series[-1][1]
            series.append((now, value))
            rates[key] = (value - prev_value) / dt
        hist_stats: dict[str, dict] = {}
        for key, data in snap.histograms.items():
            win = self._hist_windows.get(key)
            bounds = tuple(data["bounds"])
            if win is None or win.bounds != bounds:
                win = self._hist_windows[key] = _HistWindow(
                    bounds, self.quantile_window)
            prev = self._prev.histograms.get(key)
            if prev is None or tuple(prev["bounds"]) != bounds:
                prev = {"counts": [0] * len(data["counts"]),
                        "sum": 0.0, "count": 0}
            dcounts = [a - b for a, b in
                       zip(data["counts"], prev["counts"])]
            dcount = data["count"] - prev["count"]
            win.deltas.append((now, dcounts, data["sum"] - prev["sum"],
                               dcount))
            win.lifetime_max = data["max"]
            counts, total, total_sum, span = win.window_counts()
            hist_stats[key] = {
                "rate_hz": total / span if span > 0 else 0.0,
                "count": total,
                "mean": total_sum / total if total else None,
                "p50": win.quantile(0.50),
                "p95": win.quantile(0.95),
                "p99": win.quantile(0.99),
                "max": data["max"],
            }
        out = TelemetrySample(
            seq=self._seq, time_s=now, wall_time_s=self._wall_clock(),
            dt_s=dt, rates=rates, gauges=dict(snap.gauges),
            histograms=hist_stats)
        self._seq += 1
        self._samples.append(out)
        self._prev = snap
        self._prev_t = now
        return out

    @property
    def samples(self) -> tuple[TelemetrySample, ...]:
        """The retained samples, oldest first."""
        return tuple(self._samples)

    @property
    def latest(self) -> TelemetrySample | None:
        """The most recent sample, or ``None`` before the first."""
        return self._samples[-1] if self._samples else None

    # ------------------------------------------------------------------
    # windowed queries
    # ------------------------------------------------------------------
    def _series_delta(self, series: deque, now: float,
                      window_s: float) -> tuple[float, float]:
        """``(delta, span_s)`` of one cumulative series over the window."""
        cutoff = now - window_s
        start_t, start_v = series[0]
        for t, v in series:
            if t > cutoff:
                break
            start_t, start_v = t, v
        end_t, end_v = series[-1]
        return end_v - start_v, max(end_t - start_t, 0.0)

    def window_deltas(self, name: str, window_s: float,
                      now_s: float | None = None) -> dict[str, float]:
        """Per-series counter increase over the last *window_s* seconds.

        Keys are full series keys (``name{label="v"}``); every series of
        metric *name* is included, labelled or not.
        """
        now = self._prev_t if now_s is None else float(now_s)
        out: dict[str, float] = {}
        for key, series in self._counter_series.items():
            if _matches(key, name):
                out[key] = self._series_delta(series, now, window_s)[0]
        return out

    def window_delta(self, name: str, window_s: float,
                     now_s: float | None = None) -> float:
        """Total counter increase of *name* (all labels) over the window."""
        return sum(self.window_deltas(name, window_s, now_s).values())

    def window_rates(self, name: str, window_s: float,
                     now_s: float | None = None) -> dict[str, float]:
        """Per-series rate (1/s) over the window, span-corrected.

        A series younger than the window is divided by its actual age,
        so early samples do not understate rates.
        """
        now = self._prev_t if now_s is None else float(now_s)
        out: dict[str, float] = {}
        for key, series in self._counter_series.items():
            if _matches(key, name):
                delta, span = self._series_delta(series, now, window_s)
                out[key] = delta / span if span > 0 else 0.0
        return out

    def window_quantile(self, key: str, q: float) -> float | None:
        """Sliding-window quantile of histogram series *key*."""
        win = self._hist_windows.get(key)
        return None if win is None else win.quantile(q)


# ---------------------------------------------------------------------------
# SLO burn-rate alerting
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class SloObjective:
    """One service-level objective over counter series.

    ``numerator`` names the *bad*-event counter(s), ``denominator`` the
    total-event counter; the objective holds when
    ``1 - bad/total >= target``.  A ``target`` of 1.0 is a zero-budget
    objective — any bad event burns at :data:`_BURN_CAP`.
    """

    name: str
    numerator: str | tuple[str, ...]
    denominator: str
    target: float = 0.99
    fast_window_s: float = 60.0
    slow_window_s: float = 300.0
    burn_threshold: float = 1.0
    min_events: float = 1.0
    description: str = ""

    def __post_init__(self) -> None:
        if not 0.0 < self.target <= 1.0:
            raise ValueError(f"target must be in (0, 1], got {self.target}")
        if self.fast_window_s <= 0 or self.slow_window_s < self.fast_window_s:
            raise ValueError("need 0 < fast_window_s <= slow_window_s")

    @property
    def numerators(self) -> tuple[str, ...]:
        """The numerator metric names as a tuple."""
        if isinstance(self.numerator, str):
            return (self.numerator,)
        return tuple(self.numerator)

    @property
    def budget(self) -> float:
        """The error budget ``1 - target``."""
        return 1.0 - self.target

    def burn_rate(self, bad: float, total: float) -> float:
        """Budget burn multiple for *bad* failures out of *total* events."""
        if total <= 0 or bad <= 0:
            return 0.0
        error = bad / total
        if self.budget <= 0:
            return _BURN_CAP
        return min(error / self.budget, _BURN_CAP)


@dataclass(frozen=True)
class SloPolicy:
    """An ordered set of :class:`SloObjective` the alerter evaluates."""

    objectives: tuple[SloObjective, ...]

    def __post_init__(self) -> None:
        names = [o.name for o in self.objectives]
        if len(names) != len(set(names)):
            raise ValueError(f"duplicate objective names in {names}")


def default_serve_policy(latency_slo_s: float = 0.05,
                         fast_window_s: float = 60.0,
                         slow_window_s: float = 300.0) -> SloPolicy:
    """The serving-stack policy: frame latency and stream integrity.

    Mirrors the paper-level interaction contract the load benchmark
    gates on — ≥99% of frames dispatched inside the deadline
    (``serve.deadline_miss`` / ``serve.frames``) and zero lost events
    (backpressure drops or pipeline gaps are a zero-budget breach).
    """
    return SloPolicy(objectives=(
        SloObjective(
            name="frame-latency",
            numerator="serve.deadline_miss",
            denominator="serve.frames",
            target=0.99,
            fast_window_s=fast_window_s, slow_window_s=slow_window_s,
            description=(f"99% of frames dispatched within "
                         f"{latency_slo_s * 1e3:g} ms")),
        SloObjective(
            name="stream-integrity",
            numerator=("serve.backpressure_drops", "pipeline.faults.gaps"),
            denominator="serve.frames",
            target=1.0,
            fast_window_s=fast_window_s, slow_window_s=slow_window_s,
            description="zero lost or gapped frames"),
    ))


@dataclass
class Alert:
    """One firing→resolved episode of an objective's burn-rate alert."""

    objective: str
    fired_at_s: float
    burn_fast: float
    burn_slow: float
    description: str = ""
    resolved_at_s: float | None = None

    @property
    def state(self) -> str:
        """``"firing"`` until resolution, then ``"resolved"``."""
        return "resolved" if self.resolved_at_s is not None else "firing"

    def to_dict(self) -> dict:
        """JSON-safe dict of the alert."""
        return {"objective": self.objective, "state": self.state,
                "fired_at_s": _finite(self.fired_at_s, 0.0),
                "resolved_at_s": _finite(self.resolved_at_s),
                "burn_fast": _finite(self.burn_fast, _BURN_CAP),
                "burn_slow": _finite(self.burn_slow, _BURN_CAP),
                "description": self.description}


class BurnRateAlerter:
    """Multi-window burn-rate evaluation over collector time series.

    An objective fires when **both** its fast and slow windows burn
    error budget above ``burn_threshold`` (fast alone reacts to noise;
    slow alone reacts too late — requiring both is the classic
    multi-window construction) and resolves as soon as the fast window
    clears.  Transitions are tallied under
    ``telemetry.alerts_fired{objective=}`` / ``telemetry.alerts_resolved``
    so the alerter is itself observable.
    """

    def __init__(self, policy: SloPolicy,
                 metrics: MetricsRegistry | None = None) -> None:
        self.policy = policy
        self.metrics = metrics if metrics is not None else get_registry()
        #: objective name -> currently firing Alert
        self._active: dict[str, Alert] = {}
        #: every episode ever, in firing order
        self.history: list[Alert] = []
        #: objective name -> latest evaluation numbers
        self.status: dict[str, dict] = {}

    def evaluate(self, collector: TelemetryCollector,
                 now_s: float | None = None) -> list[Alert]:
        """Evaluate every objective; returns alerts that are firing or
        resolved *this* call (so one push per transition reaches
        subscribers)."""
        now = collector._prev_t if now_s is None else float(now_s)
        out: list[Alert] = []
        for obj in self.policy.objectives:
            bad_fast = sum(collector.window_delta(n, obj.fast_window_s, now)
                           for n in obj.numerators)
            bad_slow = sum(collector.window_delta(n, obj.slow_window_s, now)
                           for n in obj.numerators)
            tot_fast = collector.window_delta(
                obj.denominator, obj.fast_window_s, now)
            tot_slow = collector.window_delta(
                obj.denominator, obj.slow_window_s, now)
            burn_fast = obj.burn_rate(bad_fast, tot_fast)
            burn_slow = obj.burn_rate(bad_slow, tot_slow)
            self.status[obj.name] = {
                "target": obj.target,
                "bad_fast": bad_fast, "total_fast": tot_fast,
                "burn_fast": burn_fast, "burn_slow": burn_slow,
                "budget_remaining": max(0.0, 1.0 - burn_slow),
            }
            active = self._active.get(obj.name)
            should_fire = (tot_fast >= obj.min_events
                           and burn_fast >= obj.burn_threshold
                           and burn_slow >= obj.burn_threshold)
            if active is None and should_fire:
                active = Alert(objective=obj.name, fired_at_s=now,
                               burn_fast=burn_fast, burn_slow=burn_slow,
                               description=obj.description)
                self._active[obj.name] = active
                self.history.append(active)
                self.metrics.counter("telemetry.alerts_fired",
                                     objective=obj.name).inc()
                out.append(active)
            elif active is not None:
                active.burn_fast = burn_fast
                active.burn_slow = burn_slow
                if burn_fast < obj.burn_threshold:
                    active.resolved_at_s = now
                    del self._active[obj.name]
                    self.metrics.counter("telemetry.alerts_resolved",
                                         objective=obj.name).inc()
                out.append(active)
        return out

    @property
    def active(self) -> tuple[Alert, ...]:
        """Currently firing alerts."""
        return tuple(self._active.values())


# ---------------------------------------------------------------------------
# health evaluation
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class HealthThresholds:
    """Knobs mapping windowed series onto ``ok|degraded|critical``."""

    window_s: float = 30.0
    deadline_miss_degraded: float = 0.01
    deadline_miss_critical: float = 0.05
    drop_rate_critical: float = 0.05

    def __post_init__(self) -> None:
        if self.window_s <= 0:
            raise ValueError(f"window_s must be > 0, got {self.window_s}")
        if self.deadline_miss_critical < self.deadline_miss_degraded:
            raise ValueError("critical threshold below degraded threshold")


@dataclass
class HealthReport:
    """Per-tenant / per-session health states plus global reasons."""

    overall: str
    reasons: list[str]
    tenants: dict[str, dict]
    generated_at_s: float

    def to_dict(self) -> dict:
        """JSON-safe dict of the report."""
        return {"overall": self.overall, "reasons": list(self.reasons),
                "tenants": self.tenants,
                "generated_at_s": _finite(self.generated_at_s, 0.0)}


def _worst(a: str, b: str) -> str:
    return a if _SEVERITY[a] >= _SEVERITY[b] else b


class HealthEvaluator:
    """Folds ``serve.*`` / ``pipeline.faults.*`` series into states.

    Degradation signals (windowed over ``thresholds.window_s``):
    backpressure drops mark the dropping tenant ``degraded`` (``critical``
    past ``drop_rate_critical``); deadline-miss ratio past its thresholds,
    stream gaps, channel-mask flaps and any firing burn-rate alert mark
    the whole service at least ``degraded``.  Sessions inherit their
    tenant's state — per-session series exist so the report can show
    *which* session is hot, not to diverge from tenant policy.
    """

    def __init__(self, thresholds: HealthThresholds | None = None) -> None:
        self.thresholds = thresholds or HealthThresholds()

    def evaluate(self, collector: TelemetryCollector,
                 alerter: BurnRateAlerter | None = None,
                 now_s: float | None = None) -> HealthReport:
        """Produce a :class:`HealthReport` from the collector's series."""
        t = self.thresholds
        now = collector._prev_t if now_s is None else float(now_s)
        w = t.window_s
        frames = collector.window_deltas("serve.frames", w, now)
        drops = collector.window_deltas("serve.backpressure_drops", w, now)
        frame_rates = collector.window_rates("serve.frames", w, now)
        session_rates = collector.window_rates("serve.session_frames", w, now)

        tenants: dict[str, dict] = {}
        for key, delta in frames.items():
            tenant = parse_series_key(key)[1].get("tenant", "")
            entry = tenants.setdefault(
                tenant, {"state": "ok", "reasons": [],
                         "frame_rate_hz": 0.0, "sessions": {}})
            entry["frame_rate_hz"] += frame_rates.get(key, 0.0)
        for key, dropped in drops.items():
            if dropped <= 0:
                continue
            tenant = parse_series_key(key)[1].get("tenant", "")
            entry = tenants.setdefault(
                tenant, {"state": "ok", "reasons": [],
                         "frame_rate_hz": 0.0, "sessions": {}})
            total = sum(d for k, d in frames.items()
                        if parse_series_key(k)[1].get("tenant", "") == tenant)
            ratio = dropped / (dropped + total) if (dropped + total) else 1.0
            state = ("critical" if ratio > t.drop_rate_critical
                     else "degraded")
            entry["state"] = _worst(entry["state"], state)
            entry["reasons"].append(
                f"{dropped:g} backpressure drops in {w:g}s "
                f"({ratio:.1%} of frames)")
        for key, rate in session_rates.items():
            labels = parse_series_key(key)[1]
            tenant = labels.get("tenant", "")
            session = labels.get("session", "")
            entry = tenants.setdefault(
                tenant, {"state": "ok", "reasons": [],
                         "frame_rate_hz": 0.0, "sessions": {}})
            entry["sessions"][session] = {
                "state": entry["state"], "frame_rate_hz": rate}

        overall = "ok"
        reasons: list[str] = []
        total_frames = sum(frames.values())
        misses = collector.window_delta("serve.deadline_miss", w, now)
        if total_frames > 0 and misses > 0:
            ratio = misses / total_frames
            if ratio > t.deadline_miss_critical:
                overall = _worst(overall, "critical")
                reasons.append(f"deadline-miss ratio {ratio:.1%} "
                               f"over {w:g}s (critical)")
            elif ratio > t.deadline_miss_degraded:
                overall = _worst(overall, "degraded")
                reasons.append(f"deadline-miss ratio {ratio:.1%} "
                               f"over {w:g}s")
        gaps = collector.window_delta("pipeline.faults.gaps", w, now)
        if gaps > 0:
            overall = _worst(overall, "degraded")
            reasons.append(f"{gaps:g} stream gaps in {w:g}s")
        masked = collector.window_delta(
            "pipeline.faults.channel_masked", w, now)
        if masked > 0:
            overall = _worst(overall, "degraded")
            reasons.append(f"{masked:g} channel mask transitions in {w:g}s")
        if alerter is not None:
            for alert in alerter.active:
                overall = _worst(overall, "degraded")
                reasons.append(f"alert firing: {alert.objective}")
        for tenant, entry in tenants.items():
            overall = _worst(overall, entry["state"])
            # sessions inherit the final tenant state
            for info in entry["sessions"].values():
                info["state"] = entry["state"]
        return HealthReport(overall=overall, reasons=reasons,
                            tenants=tenants, generated_at_s=now)


# ---------------------------------------------------------------------------
# composition: the plane the server runs
# ---------------------------------------------------------------------------

class TelemetryPlane:
    """Collector + alerter + health evaluator behind one ``tick()``.

    The server calls :meth:`tick` on its telemetry cadence; the returned
    payload is what ``watch`` subscribers receive, what the JSONL
    timeline persists, and what :func:`render_top` draws.
    """

    def __init__(self, metrics: MetricsRegistry | None = None,
                 policy: SloPolicy | None = None,
                 thresholds: HealthThresholds | None = None,
                 interval_s: float = 1.0, window: int = 120,
                 quantile_window: int = 10,
                 clock=time.monotonic, wall_clock=time.time) -> None:
        metrics = metrics if metrics is not None else get_registry()
        self.interval_s = float(interval_s)
        self.collector = TelemetryCollector(
            metrics, interval_s=interval_s, window=window,
            quantile_window=quantile_window, clock=clock,
            wall_clock=wall_clock)
        self.policy = policy if policy is not None else default_serve_policy()
        self.alerter = BurnRateAlerter(self.policy, metrics=metrics)
        self.health = HealthEvaluator(thresholds)

    def tick(self, now_s: float | None = None) -> dict:
        """Sample, evaluate SLOs and health; returns the JSON payload."""
        sample = self.collector.sample(now_s)
        alerts = self.alerter.evaluate(self.collector, sample.time_s)
        report = self.health.evaluate(self.collector, self.alerter,
                                      sample.time_s)
        status = {
            name: {k: _finite(v, 0.0) for k, v in entry.items()}
            for name, entry in self.alerter.status.items()}
        return {
            "seq": sample.seq,
            "time_s": sample.time_s,
            "wall_time_s": sample.wall_time_s,
            "interval_s": self.interval_s,
            "sample": sample.to_dict(),
            "health": report.to_dict(),
            "alerts": [a.to_dict() for a in alerts],
            "slo": status,
        }


# ---------------------------------------------------------------------------
# timelines: persistence, replay, summaries
# ---------------------------------------------------------------------------

class TimelineWriter:
    """Append telemetry ticks to a JSONL file (one tick per line)."""

    def __init__(self, path) -> None:
        self.path = path
        self._file = open(path, "a", encoding="utf-8")
        self.ticks_written = 0

    def write(self, tick: dict) -> None:
        """Append one tick and flush (timelines outlive crashes)."""
        self._file.write(json.dumps(tick, separators=(",", ":"),
                                    allow_nan=False) + "\n")
        self._file.flush()
        self.ticks_written += 1

    def close(self) -> None:
        """Close the underlying file."""
        if not self._file.closed:
            self._file.close()

    def __enter__(self) -> "TimelineWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def load_timeline(path) -> list[dict]:
    """Read a JSONL telemetry timeline back into tick dicts."""
    ticks = []
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                ticks.append(json.loads(line))
    return ticks


def summarize_timeline(ticks: list[dict]) -> dict:
    """Aggregate a timeline into counts an operator (or CI) asserts on.

    Alert episodes are deduplicated by ``(objective, fired_at_s)`` —
    a firing alert is re-pushed every tick, but it is one episode.
    """
    summary: dict = {
        "ticks": len(ticks), "duration_s": 0.0,
        "health": {"ok": 0, "degraded": 0, "critical": 0},
        "alerts": {"fired": 0, "resolved": 0, "episodes": []},
        "peaks": {},
    }
    if not ticks:
        return summary
    summary["duration_s"] = ticks[-1]["time_s"] - ticks[0]["time_s"]
    episodes: dict[tuple, dict] = {}
    peak_rate = 0.0
    peak_p99 = None
    for tick in ticks:
        state = tick.get("health", {}).get("overall", "ok")
        summary["health"][state] = summary["health"].get(state, 0) + 1
        for alert in tick.get("alerts", []):
            key = (alert["objective"], alert["fired_at_s"])
            episodes[key] = alert  # last push wins: carries resolution
        rates = tick.get("sample", {}).get("rates", {})
        peak_rate = max(peak_rate, sum(
            v for k, v in rates.items() if _matches(k, "serve.frames")))
        hists = tick.get("sample", {}).get("histograms", {})
        entry = hists.get("serve.frame_latency_seconds")
        if entry and entry.get("p99") is not None:
            p99 = entry["p99"]
            peak_p99 = p99 if peak_p99 is None else max(peak_p99, p99)
    ordered = sorted(episodes.values(), key=lambda a: a["fired_at_s"])
    summary["alerts"]["episodes"] = ordered
    summary["alerts"]["fired"] = len(ordered)
    summary["alerts"]["resolved"] = sum(
        1 for a in ordered if a["state"] == "resolved")
    summary["peaks"] = {"frame_rate_hz": peak_rate,
                        "frame_latency_p99_s": peak_p99}
    return summary


# ---------------------------------------------------------------------------
# terminal rendering
# ---------------------------------------------------------------------------

def _fmt_ms(seconds) -> str:
    if seconds is None:
        return "-"
    return f"{seconds * 1e3:.2f}ms"


def render_top(tick: dict) -> str:
    """One ``airfinger top`` screen for a telemetry tick (pure text)."""
    lines: list[str] = []
    health = tick.get("health", {})
    overall = health.get("overall", "ok")
    wall = tick.get("wall_time_s", 0.0)
    stamp = time.strftime("%H:%M:%S", time.localtime(wall))
    lines.append(f"airfinger top — {stamp}  seq {tick.get('seq', 0)}  "
                 f"health {overall.upper()}")
    for reason in health.get("reasons", []):
        lines.append(f"  ! {reason}")
    hists = tick.get("sample", {}).get("histograms", {})
    latency = hists.get("serve.frame_latency_seconds", {})
    rates = tick.get("sample", {}).get("rates", {})
    total_rate = sum(v for k, v in rates.items()
                     if _matches(k, "serve.frames"))
    gauges = tick.get("sample", {}).get("gauges", {})
    open_sessions = sum(v for k, v in gauges.items()
                        if _matches(k, "serve.sessions_open"))
    lines.append(
        f"sessions {open_sessions:g}  frames {total_rate:.1f}/s  "
        f"latency p50 {_fmt_ms(latency.get('p50'))} "
        f"p95 {_fmt_ms(latency.get('p95'))} "
        f"p99 {_fmt_ms(latency.get('p99'))}")
    slo = tick.get("slo", {})
    if slo:
        lines.append("")
        lines.append(f"{'objective':<20} {'burn fast':>10} {'burn slow':>10} "
                     f"{'budget left':>12}")
        for name, entry in sorted(slo.items()):
            lines.append(
                f"{name:<20} {entry.get('burn_fast', 0.0):>10.2f} "
                f"{entry.get('burn_slow', 0.0):>10.2f} "
                f"{entry.get('budget_remaining', 0.0):>11.0%}")
    tenants = health.get("tenants", {})
    if tenants:
        lines.append("")
        lines.append(f"{'tenant':<16} {'state':<10} {'frames/s':>10} "
                     f"{'sessions':>9}")
        for tenant, entry in sorted(tenants.items()):
            lines.append(
                f"{tenant:<16} {entry.get('state', 'ok'):<10} "
                f"{entry.get('frame_rate_hz', 0.0):>10.1f} "
                f"{len(entry.get('sessions', {})):>9d}")
    alerts = [a for a in tick.get("alerts", []) if a.get("state") == "firing"]
    lines.append("")
    if alerts:
        for alert in alerts:
            lines.append(f"ALERT {alert['objective']}: "
                         f"burn {alert.get('burn_fast', 0.0):.1f}x "
                         f"({alert.get('description', '')})")
    else:
        lines.append("no alerts firing")
    return "\n".join(lines)


def render_telemetry_summary(summary: dict) -> str:
    """Human-readable rendering of :func:`summarize_timeline` output."""
    lines = [
        f"ticks: {summary['ticks']}  "
        f"duration: {summary['duration_s']:.1f}s",
        (f"health: ok={summary['health'].get('ok', 0)} "
         f"degraded={summary['health'].get('degraded', 0)} "
         f"critical={summary['health'].get('critical', 0)}"),
        (f"alerts: fired={summary['alerts']['fired']} "
         f"resolved={summary['alerts']['resolved']}"),
    ]
    for alert in summary["alerts"]["episodes"]:
        resolved = alert.get("resolved_at_s")
        tail = (f"resolved at {resolved:.1f}s" if resolved is not None
                else "still firing")
        lines.append(f"  - {alert['objective']} fired at "
                     f"{alert['fired_at_s']:.1f}s, {tail}")
    peaks = summary.get("peaks", {})
    if peaks:
        lines.append(
            f"peaks: frames {peaks.get('frame_rate_hz', 0.0):.1f}/s  "
            f"latency p99 {_fmt_ms(peaks.get('frame_latency_p99_s'))}")
    return "\n".join(lines)
