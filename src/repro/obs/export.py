"""Snapshot exporters: Prometheus text exposition format and a text table.

A :class:`~repro.obs.metrics.MetricsSnapshot` keys every series by
``name`` or ``name{label="value",...}`` with label values already escaped
(see :func:`repro.obs.metrics.escape_label_value`), so the exporters only
have to sanitize metric *names* (Prometheus allows ``[a-zA-Z0-9_:]``) and
lay out the histogram buckets.
"""

from __future__ import annotations

import re

from repro.obs.metrics import MetricsSnapshot, _bucket_quantile

__all__ = ["prometheus_text", "render_snapshot"]

_NAME_OK = re.compile(r"[^a-zA-Z0-9_:]")


def _split_key(key: str) -> tuple[str, str]:
    """``name{labels}`` -> (sanitized name, ``labels`` inner text or '')."""
    if "{" in key:
        name, rest = key.split("{", 1)
        return _sanitize_name(name), rest.rstrip("}")
    return _sanitize_name(key), ""


def _sanitize_name(name: str) -> str:
    name = _NAME_OK.sub("_", name)
    if not name or name[0].isdigit():
        name = "_" + name
    return name


def _fmt(value: float) -> str:
    """Prometheus sample value: integers without a trailing ``.0``."""
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def prometheus_text(snapshot: MetricsSnapshot) -> str:
    """Render *snapshot* in the Prometheus text exposition format.

    Counters and gauges become single samples; histograms become the
    conventional ``_bucket{le=...}`` cumulative series plus ``_sum`` and
    ``_count``.  A trailing newline terminates the exposition.
    """
    lines: list[str] = []
    typed: set[str] = set()

    def declare(name: str, kind: str) -> None:
        if name not in typed:
            lines.append(f"# TYPE {name} {kind}")
            typed.add(name)

    for key in sorted(snapshot.counters):
        name, labels = _split_key(key)
        declare(name, "counter")
        suffix = f"{{{labels}}}" if labels else ""
        lines.append(f"{name}{suffix} {_fmt(snapshot.counters[key])}")
    for key in sorted(snapshot.gauges):
        name, labels = _split_key(key)
        declare(name, "gauge")
        suffix = f"{{{labels}}}" if labels else ""
        lines.append(f"{name}{suffix} {_fmt(snapshot.gauges[key])}")
    for key in sorted(snapshot.histograms):
        data = snapshot.histograms[key]
        name, labels = _split_key(key)
        declare(name, "histogram")
        cumulative = 0
        for bound, count in zip(data["bounds"], data["counts"]):
            cumulative += count
            le = f'le="{_fmt(bound)}"'
            inner = f"{labels},{le}" if labels else le
            lines.append(f"{name}_bucket{{{inner}}} {cumulative}")
        inf = 'le="+Inf"'
        inner = f"{labels},{inf}" if labels else inf
        lines.append(f"{name}_bucket{{{inner}}} {data['count']}")
        suffix = f"{{{labels}}}" if labels else ""
        lines.append(f"{name}_sum{suffix} {_fmt(data['sum'])}")
        lines.append(f"{name}_count{suffix} {data['count']}")
        # NaN/inf observations dropped by the histogram: exporting the
        # tally is the only way a scraper can see sensor-data poisoning
        lines.append(f"{name}_invalid{suffix} {data.get('invalid', 0)}")
    return "\n".join(lines) + "\n"


def render_snapshot(snapshot: MetricsSnapshot) -> str:
    """Human-readable tables of a snapshot (the ``airfinger stats`` view)."""
    lines: list[str] = []
    if snapshot.counters:
        lines += ["Counters", "--------"]
        width = max(len(k) for k in snapshot.counters) + 2
        for key in sorted(snapshot.counters):
            lines.append(f"{key:<{width}} {_fmt(snapshot.counters[key]):>12}")
        lines.append("")
    if snapshot.gauges:
        lines += ["Gauges", "------"]
        width = max(len(k) for k in snapshot.gauges) + 2
        for key in sorted(snapshot.gauges):
            lines.append(f"{key:<{width}} {_fmt(snapshot.gauges[key]):>12}")
        lines.append("")
    if snapshot.histograms:
        lines += ["Histograms", "----------"]
        width = max(len(k) for k in snapshot.histograms) + 2
        header = (f"{'series':<{width}} {'count':>8} {'p50':>11} "
                  f"{'p95':>11} {'p99':>11} {'max':>11} {'invalid':>8}")
        lines.append(header)
        for key in sorted(snapshot.histograms):
            data = snapshot.histograms[key]
            cells = []
            for q in (0.50, 0.95, 0.99):
                value = _bucket_quantile(
                    tuple(data["bounds"]), data["counts"], data["count"],
                    data["min"], data["max"], q)
                cells.append("-" if value is None else f"{value:.3g}")
            maximum = "-" if data["max"] is None else f"{data['max']:.3g}"
            lines.append(f"{key:<{width}} {data['count']:>8} "
                         f"{cells[0]:>11} {cells[1]:>11} {cells[2]:>11} "
                         f"{maximum:>11} {data.get('invalid', 0):>8}")
        lines.append("")
    if not lines:
        return "snapshot is empty\n"
    return "\n".join(lines)
