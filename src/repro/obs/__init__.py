"""Real-time observability: counters, gauges, latency histograms, exporters.

The paper's core claim is *real-time* recognition at 100 Hz; this package
is how the repo proves it.  :class:`MetricsRegistry` collects dependency-free
counters, gauges, and fixed-bucket latency histograms (p50/p95/p99) from the
hot paths — the streaming :class:`~repro.core.pipeline.AirFinger` engine,
campaign generation, the capture chain, and the evaluation protocols — and
snapshots them to JSON or Prometheus text format.

Instrumentation is on by default and overhead-bounded (see
``benchmarks/test_obs_overhead.py``); set ``REPRO_OBS=0`` to disable it
process-wide.  Snapshots are picklable so worker processes can ship their
metrics back to the parent for merging
(:meth:`MetricsRegistry.merge`).
"""

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS_S,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsSnapshot,
    StageTimer,
    get_registry,
    set_registry,
)
from repro.obs.export import prometheus_text, render_snapshot

__all__ = [
    "DEFAULT_LATENCY_BUCKETS_S",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsSnapshot",
    "StageTimer",
    "get_registry",
    "set_registry",
    "prometheus_text",
    "render_snapshot",
]
