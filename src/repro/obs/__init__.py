"""Real-time observability: metrics, span tracing, and run provenance.

The paper's core claim is *real-time* recognition at 100 Hz; this package
is how the repo proves it, at three altitudes:

* **Metrics** (:mod:`repro.obs.metrics`): :class:`MetricsRegistry`
  collects dependency-free counters, gauges, and fixed-bucket latency
  histograms (p50/p95/p99) from the hot paths — the streaming
  :class:`~repro.core.pipeline.AirFinger` engine, campaign generation,
  the capture chain, and the evaluation protocols — and snapshots them
  to JSON or Prometheus text format.  On by default; ``REPRO_OBS=0``
  disables it process-wide.
* **Telemetry** (:mod:`repro.obs.telemetry`): :class:`TelemetryPlane`
  samples the registry on a cadence into bounded time series — windowed
  counter rates, sliding-window latency quantiles — and layers SLO
  burn-rate alerting (:class:`BurnRateAlerter`) and per-tenant health
  states (:class:`HealthEvaluator`) on top.  This is what the serving
  stack pushes to ``watch`` subscribers and ``airfinger top`` renders.
* **Tracing** (:mod:`repro.obs.trace`): :class:`Tracer` records
  :class:`Span` trees (per-frame pipeline stages, campaign
  plan → chunk → task → record_batch, eval folds) into a bounded ring
  buffer, exported as Chrome/Perfetto trace JSON or a JSONL event log.
  Off by default; ``REPRO_TRACE=1`` (or a sampling ratio) enables it,
  and :class:`TraceContext` carries a trace across worker-process
  boundaries.
* **Profiling** (:mod:`repro.obs.prof`): :class:`SamplingProfiler`
  takes statistical stack samples from a background thread (no signals,
  no ``sys.setprofile``), and :class:`StageProfile` attributes exact
  **exclusive** self-time per pipeline stage from the measurements the
  hot paths already take; both export collapsed-stack (flamegraph.pl),
  Chrome/Perfetto, and mergeable-dict forms.  ``airfinger profile``
  wraps any subcommand in both.
* **Benchmark ledger** (:mod:`repro.obs.ledger`): :class:`BenchRecord`
  measurements append to per-suite ``BENCH_<suite>.json`` ledgers;
  ``airfinger bench compare`` renders the trajectory and flags
  regressions beyond per-metric tolerance.
* **Provenance** (:mod:`repro.obs.manifest`): :class:`RunManifest`
  pins down the exact invocation — config digest, seeds, versions,
  platform, git SHA — that produced a corpus or evaluation artifact.

Snapshots and spans are picklable so worker processes can ship them back
to the parent for merging (:meth:`MetricsRegistry.merge`,
:meth:`Tracer.adopt`).
"""

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS_S,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsSnapshot,
    StageTimer,
    get_registry,
    parse_series_key,
    set_registry,
)
from repro.obs.export import prometheus_text, render_snapshot
from repro.obs.telemetry import (
    Alert,
    BurnRateAlerter,
    HealthEvaluator,
    HealthReport,
    HealthThresholds,
    SloObjective,
    SloPolicy,
    TelemetryCollector,
    TelemetryPlane,
    TelemetrySample,
    TimelineWriter,
    default_serve_policy,
    load_timeline,
    render_telemetry_summary,
    render_top,
    summarize_timeline,
)
from repro.obs.manifest import RunManifest, config_digest
from repro.obs.prof import (
    SamplingProfiler,
    StageProfile,
    StageStat,
    get_stage_profile,
    render_stage_profile,
    set_stage_profile,
    stage_profiling,
)
from repro.obs.ledger import (
    BenchComparison,
    BenchLedger,
    BenchRecord,
    compare_records,
    ledger_path,
    load_ledgers,
    render_comparison,
    render_trajectory,
)
from repro.obs.trace import (
    Span,
    SpanEvent,
    TraceContext,
    Tracer,
    chrome_trace_json,
    get_tracer,
    load_trace,
    render_trace_summary,
    set_tracer,
    spans_to_jsonl,
    summarize_trace,
)

__all__ = [
    "DEFAULT_LATENCY_BUCKETS_S",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsSnapshot",
    "StageTimer",
    "get_registry",
    "parse_series_key",
    "set_registry",
    "prometheus_text",
    "render_snapshot",
    "Alert",
    "BurnRateAlerter",
    "HealthEvaluator",
    "HealthReport",
    "HealthThresholds",
    "SloObjective",
    "SloPolicy",
    "TelemetryCollector",
    "TelemetryPlane",
    "TelemetrySample",
    "TimelineWriter",
    "default_serve_policy",
    "load_timeline",
    "render_telemetry_summary",
    "render_top",
    "summarize_timeline",
    "RunManifest",
    "config_digest",
    "SamplingProfiler",
    "StageProfile",
    "StageStat",
    "get_stage_profile",
    "render_stage_profile",
    "set_stage_profile",
    "stage_profiling",
    "BenchComparison",
    "BenchLedger",
    "BenchRecord",
    "compare_records",
    "ledger_path",
    "load_ledgers",
    "render_comparison",
    "render_trajectory",
    "Span",
    "SpanEvent",
    "TraceContext",
    "Tracer",
    "chrome_trace_json",
    "get_tracer",
    "load_trace",
    "render_trace_summary",
    "set_tracer",
    "spans_to_jsonl",
    "summarize_trace",
]
