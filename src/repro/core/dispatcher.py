"""Distinguishing detect-aimed from track-aimed gestures — Section IV-E.

The paper's rule: when performing a detect-aimed gesture the signal
ascendings of all photodiodes occur almost simultaneously, while a
track-aimed gesture sweeps the array and the ascendings occur in order
(threshold ``I_g``).  On noisy multi-channel RSS the robust expression of
"ascending order" is a small bundle of sweep statistics computed from the
outer photodiodes:

* **centroid lag** — difference of the channels' energy-weighted time
  centroids; equal to the P1→P3 transit for a sweep, near zero for a
  common-mode micro gesture;
* **early-energy fraction** — how much of the *trailing* channel's energy
  falls in the first part of the segment; a sweep leaves the trailing
  channel silent early, a micro gesture excites it immediately;
* **zero-lag correlation, bipolarity, lobe spacing** — auxiliary shape
  descriptors of the differential signal (Fig. 7 of the paper).

The default decision is a fixed two-threshold rule on (centroid lag,
early-energy fraction) plus the partial-scroll test of Section IV-D1.
Because the paper tunes its thresholds "from the collected samples"
(Section V-A), :meth:`GestureDispatcher.calibrate` can additionally fit a
depth-3 decision tree on labelled segments, which is what the evaluation
harness uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.core.config import AirFingerConfig
from repro.core.sbc import sbc_transform
from repro.ml.tree import DecisionTreeClassifier
from repro.utils import fast_quantile

__all__ = [
    "onset_times",
    "channel_lag_s",
    "SweepStatistics",
    "sweep_statistics",
    "GestureDispatcher",
]


def _ascending_index(delta_sq: np.ndarray, level: float,
                     confirm: int = 2) -> int | None:
    """First index where the channel's ΔRSS² exceeds *level* persistently.

    A channel counts as ascending when it exceeds *level* for *confirm*
    consecutive samples; a channel whose peak never clears it returns
    ``None`` (the "no ascending point" case of Algorithm 1).
    """
    delta_sq = np.asarray(delta_sq, dtype=np.float64).ravel()
    if delta_sq.size == 0:
        return None
    if float(delta_sq.max()) <= level:
        return None
    above = delta_sq > level
    if confirm <= 1:
        hits = np.nonzero(above)[0]
        return int(hits[0]) if hits.size else None
    run = 0
    for i, flag in enumerate(above):
        run = run + 1 if flag else 0
        if run >= confirm:
            return i - confirm + 1
    return None


def onset_times(rss_segment: np.ndarray,
                sample_rate_hz: float,
                gate: float,
                sbc_window: int = 1,
                rise_fraction: float = 0.2) -> list[float | None]:
    """Per-channel ascending times (seconds from segment start) or ``None``.

    Parameters
    ----------
    rss_segment:
        Raw RSS of one segmented gesture, ``(T, C)``.
    sample_rate_hz:
        Sampling rate.
    gate:
        Noise gate in ΔRSS² units — channels that never exceed it have no
        ascending point.  The segmenter's dynamic threshold is the natural
        choice.
    sbc_window:
        SBC window in samples.
    rise_fraction:
        Rise level as a fraction of the strongest channel's peak.  One
        common absolute level is used for every channel so that channels
        carrying scaled copies of the same waveform cross it together.
    """
    if sample_rate_hz <= 0:
        raise ValueError("sample_rate_hz must be positive")
    rss = np.atleast_2d(np.asarray(rss_segment, dtype=np.float64))
    delta = sbc_transform(rss, window=sbc_window)
    # short energy smoothing stabilizes the per-channel crossing instants
    if len(delta) >= 3:
        kernel = np.ones(3) / 3.0
        delta = np.stack(
            [np.convolve(delta[:, c], kernel, mode="same")
             for c in range(delta.shape[1])], axis=1)
    peak = float(delta.max()) if delta.size else 0.0
    level = max(gate, rise_fraction * peak)
    out: list[float | None] = []
    for c in range(delta.shape[1]):
        idx = _ascending_index(delta[:, c], level)
        out.append(None if idx is None else idx / sample_rate_hz)
    return out


def channel_lag_s(rss_segment: np.ndarray,
                  sample_rate_hz: float,
                  max_lag_s: float = 0.8,
                  min_correlation: float = 0.25) -> float | None:
    """Cross-correlation lag of the last channel relative to the first.

    Positive lag means the last channel (P3) trails the first (P1).
    Returns ``None`` when either channel is essentially flat or the best
    correlation is too weak to trust.
    """
    if sample_rate_hz <= 0:
        raise ValueError("sample_rate_hz must be positive")
    rss = np.atleast_2d(np.asarray(rss_segment, dtype=np.float64))
    n = len(rss)
    if n < 4 or rss.shape[1] < 2:
        return None
    p1 = rss[:, 0] - rss[:, 0].mean()
    p3 = rss[:, -1] - rss[:, -1].mean()
    n1 = float(np.linalg.norm(p1))
    n3 = float(np.linalg.norm(p3))
    if n1 < 1e-9 or n3 < 1e-9:
        return None
    corr = np.correlate(p3, p1, mode="full") / (n1 * n3)
    lags = np.arange(-(n - 1), n)
    limit = min(n - 1, max(1, int(round(max_lag_s * sample_rate_hz))))
    window = (lags >= -limit) & (lags <= limit)
    corr_w = corr[window]
    lags_w = lags[window]
    k = int(np.argmax(corr_w))
    if corr_w[k] < min_correlation:
        return None
    return float(lags_w[k]) / sample_rate_hz


@dataclass(frozen=True)
class SweepStatistics:
    """Sweep descriptors of one segmented gesture's outer photodiodes.

    Attributes
    ----------
    centroid_lag_s:
        Energy-weighted time centroid of P3 minus that of P1; positive for
        a P1→P3 sweep (scroll up), near zero for common-mode gestures.
    early_fraction:
        Fraction of the *trailing* channel's energy inside the first 35%
        of the segment (near zero for a sweep).
    rho_zero:
        Zero-lag normalized correlation of the mean-removed channels.
    bipolarity:
        min(positive, negative) lobe of the differential signal divided by
        the larger channel excursion.
    lobe_spacing_s:
        Time between the differential signal's extreme lobes.
    lobe_order:
        +1 when the positive (P1-dominant) lobe comes first, -1 when the
        negative lobe comes first, 0 when degenerate.
    dominance:
        max/min ratio of the two lobes (large = one-sided difference).
    """

    centroid_lag_s: float
    early_fraction: float
    rho_zero: float
    bipolarity: float
    lobe_spacing_s: float
    lobe_order: int
    dominance: float

    def as_vector(self) -> np.ndarray:
        """Feature vector for the calibrated decision tree."""
        return np.array([
            self.centroid_lag_s,
            abs(self.centroid_lag_s),
            self.early_fraction,
            self.rho_zero,
            self.bipolarity,
            self.lobe_spacing_s,
            float(self.lobe_order),
            min(self.dominance, 100.0),
        ])

    @staticmethod
    def vector_names() -> tuple[str, ...]:
        """Names matching :meth:`as_vector` columns."""
        return ("centroid_lag_s", "abs_centroid_lag_s", "early_fraction",
                "rho_zero", "bipolarity", "lobe_spacing_s", "lobe_order",
                "dominance")


def sweep_statistics(rss_segment: np.ndarray,
                     sample_rate_hz: float,
                     early_window: float = 0.35,
                     smooth_window: int = 5) -> SweepStatistics:
    """Compute :class:`SweepStatistics` for one segmented gesture."""
    if sample_rate_hz <= 0:
        raise ValueError("sample_rate_hz must be positive")
    rss = np.atleast_2d(np.asarray(rss_segment, dtype=np.float64))
    n = len(rss)
    if n < 4 or rss.shape[1] < 2:
        return SweepStatistics(0.0, 1.0, 1.0, 0.0, 0.0, 0, 1.0)
    k = min(smooth_window, n)
    kernel = np.ones(k) / k
    e1 = np.convolve(np.maximum(
        rss[:, 0] - fast_quantile(rss[:, 0], 0.1), 0.0), kernel, "same")
    e3 = np.convolve(np.maximum(
        rss[:, -1] - fast_quantile(rss[:, -1], 0.1), 0.0), kernel, "same")
    t = np.arange(n) / sample_rate_hz

    s1, s3 = float(e1.sum()), float(e3.sum())
    if s1 < 1e-9 or s3 < 1e-9:
        centroid_lag = 0.0
        early_fraction = 1.0
    else:
        c1 = float((t * e1).sum() / s1)
        c3 = float((t * e3).sum() / s3)
        centroid_lag = c3 - c1
        trailing = e3 if c3 > c1 else e1
        cut = max(1, int(early_window * n))
        early_fraction = float(trailing[:cut].sum() / max(trailing.sum(), 1e-9))

    p1 = rss[:, 0] - rss[:, 0].mean()
    p3 = rss[:, -1] - rss[:, -1].mean()
    n1, n3 = float(np.linalg.norm(p1)), float(np.linalg.norm(p3))
    rho_zero = float(p1 @ p3 / (n1 * n3)) if n1 > 1e-9 and n3 > 1e-9 else 1.0

    diff = e1 - e3
    scale = float(max(e1.max(), e3.max(), 1e-9))
    i_pos = int(np.argmax(diff))
    i_neg = int(np.argmin(diff))
    pos = float(max(diff[i_pos], 0.0))
    neg = float(max(-diff[i_neg], 0.0))
    bipolarity = min(pos, neg) / scale
    if pos <= 0 and neg <= 0:
        order = 0
    elif i_pos == i_neg:
        order = 0
    else:
        order = +1 if i_pos < i_neg else -1
    dominance = (max(pos, neg) / min(pos, neg)) if min(pos, neg) > 1e-12 else 100.0
    return SweepStatistics(
        centroid_lag_s=centroid_lag,
        early_fraction=early_fraction,
        rho_zero=rho_zero,
        bipolarity=bipolarity,
        lobe_spacing_s=abs(i_pos - i_neg) / sample_rate_hz,
        lobe_order=order,
        dominance=dominance)


@dataclass
class GestureDispatcher:
    """Routes a segmented gesture to detection or tracking.

    Parameters
    ----------
    config:
        Timing parameters (``I_g``, SBC window, sample rate).
    centroid_threshold_s:
        Minimum |centroid lag| for the full-sweep decision.
    early_fraction_threshold:
        Maximum trailing-channel early-energy fraction for a full sweep.
    partial_centroid_threshold_s, partial_early_threshold:
        The relaxed lag plus near-zero early-energy condition that catches
        partial scrolls (Section IV-D1), whose centroids barely separate.
    partial_dominance:
        One-sidedness ratio above which a lone-outer-onset segment counts
        as a partial scroll (the onset-based fallback).
    """

    config: AirFingerConfig = field(default_factory=AirFingerConfig)
    centroid_threshold_s: float = 0.08
    early_fraction_threshold: float = 0.13
    partial_centroid_threshold_s: float = 0.03
    partial_early_threshold: float = 0.03
    partial_dominance: float = 6.0

    _tree: DecisionTreeClassifier | None = field(init=False, repr=False,
                                                 default=None)

    # ------------------------------------------------------------------
    def statistics(self, rss_segment: np.ndarray) -> SweepStatistics:
        """Sweep statistics of one segment (also the calibration features)."""
        return sweep_statistics(rss_segment, self.config.sample_rate_hz)

    def _partial_scroll(self, rss_segment: np.ndarray, gate: float,
                        stats: SweepStatistics) -> bool:
        times = onset_times(rss_segment, self.config.sample_rate_hz, gate,
                            sbc_window=self.config.sbc_window_samples)
        ascending = [i for i, t in enumerate(times) if t is not None]
        lone_outer = (len(ascending) == 1
                      and ascending[0] in (0, len(times) - 1))
        return lone_outer and stats.dominance >= self.partial_dominance

    def classify(self, rss_segment: np.ndarray, gate: float) -> str:
        """Return ``"detect"`` or ``"track"`` for one segmented gesture."""
        stats = self.statistics(rss_segment)
        if self._tree is not None:
            label = self._tree.predict(stats.as_vector()[None, :])[0]
            if str(label) == "track":
                return "track"
            if self._partial_scroll(rss_segment, gate, stats):
                return "track"
            return "detect"
        if (abs(stats.centroid_lag_s) > self.centroid_threshold_s
                and stats.early_fraction < self.early_fraction_threshold
                and stats.lobe_spacing_s >= self.config.dispatch_threshold_s):
            return "track"
        # Partial scrolls (Section IV-D1) barely separate the centroids —
        # the finger only crosses one outer zone — but they are the only
        # gestures whose trailing channel is *completely* silent early.
        if (abs(stats.centroid_lag_s) > self.partial_centroid_threshold_s
                and stats.early_fraction < self.partial_early_threshold):
            return "track"
        if self._partial_scroll(rss_segment, gate, stats):
            return "track"
        return "detect"

    # ------------------------------------------------------------------
    def calibrate(self, segments: Sequence[np.ndarray],
                  labels: Sequence[str]) -> "GestureDispatcher":
        """Learn the decision thresholds from labelled segments.

        Mirrors the paper's Section V-A: "These settings are learned from
        the collected samples."  Fits a depth-3 decision tree over the
        sweep statistics; labels must be ``"detect"`` / ``"track"``.
        """
        if len(segments) != len(labels):
            raise ValueError(f"{len(segments)} segments but {len(labels)} labels")
        wrong = sorted({l for l in labels if l not in ("detect", "track")})
        if wrong:
            raise ValueError(f"labels must be 'detect'/'track', got {wrong}")
        X = np.stack([self.statistics(s).as_vector() for s in segments])
        tree = DecisionTreeClassifier(max_depth=3, min_samples_leaf=3,
                                      random_state=5)
        tree.fit(X, np.asarray(labels))
        self._tree = tree
        return self

    @property
    def is_calibrated(self) -> bool:
        """True once :meth:`calibrate` has fitted the decision tree."""
        return self._tree is not None
