"""Two-dimensional finger tracking on the cross array (Section VI).

The paper's Section VI proposes more LEDs/photodiodes "to construct a
multi-dimensional sensing area".  On the cross array of
:func:`repro.optics.array.cross_array` the five photodiode excursions act
like a coarse touch grid: the energy-weighted centroid of their board
positions estimates the finger's lateral position each frame, and a
weighted least-squares fit over the position trace yields the swipe's
velocity vector — direction (any compass angle, not just up/down) and
speed.

A caveat this simulation surfaces: the asymmetric pinch complex (the hand
mass trails the fingertip) biases the centroid, so angle estimates are
much sharper for an instrumented bare-tip target than for a natural hand —
see ``benchmarks/test_extension_2d_tracking.py``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.core.config import AirFingerConfig

__all__ = ["PlanarTrackResult", "PlanarTracker", "compass_bin"]


def compass_bin(angle_deg: float, n_bins: int = 8) -> int:
    """Nearest compass bin index for *angle_deg* (bin 0 centred on +x)."""
    if n_bins < 2:
        raise ValueError("n_bins must be >= 2")
    width = 360.0 / n_bins
    return int(round((angle_deg % 360.0) / width)) % n_bins


@dataclass(frozen=True)
class PlanarTrackResult:
    """A tracked 2-D swipe.

    Parameters
    ----------
    angle_deg:
        Estimated motion direction, degrees CCW from +x, in [0, 360).
    speed_mm_s:
        Estimated speed along that direction.
    velocity_mm_s:
        The full ``(vx, vy)`` estimate.
    confident:
        False when too little energy crossed the board to fit a motion.
    """

    angle_deg: float
    speed_mm_s: float
    velocity_mm_s: tuple[float, float]
    confident: bool

    def unit_vector(self) -> np.ndarray:
        """The estimated motion direction as an ``(x, y)`` unit vector."""
        a = math.radians(self.angle_deg)
        return np.array([math.cos(a), math.sin(a)])

    def compass(self, n_bins: int = 8) -> int:
        """Nearest compass bin of the estimate."""
        return compass_bin(self.angle_deg, n_bins)


@dataclass
class PlanarTracker:
    """Energy-centroid 2-D tracking over cross-array recordings.

    Parameters
    ----------
    config:
        Timing configuration (sample rate).
    pd_positions_mm:
        Board positions of the photodiode channels, ``(C, 2)``; defaults to
        the 6 mm-pitch cross array's ``P1, P2, P3, P4, P5``.
    smooth_window:
        Excursion smoothing before the centroid.
    energy_gate:
        Frames whose summed excursion falls below this fraction of the
        95th-percentile total are excluded from the velocity fit (the
        finger is off-board).
    min_frames:
        Minimum gated frames for a confident fit.
    min_travel_mm:
        Minimum bounding-box excursion of the centroid trace; noise hovers.
    min_fit_r2:
        Minimum variance fraction the linear motion model must explain.
        Pure i.i.d. noise occasionally reaches r^2 ~ 0.37 on short
        segments, so the floor sits well above that; genuine swipes fit
        at r^2 >= 0.98.
    min_drift_mm:
        Minimum distance between the weighted centroids of the first and
        second halves of the trace.  A swipe carries the centroid across
        the board (>= 8 mm net drift in practice) while noise wanders
        around a fixed point (<= ~1.7 mm), so this gate separates the two
        even when a lucky noise draw passes the r^2 test.
    """

    config: AirFingerConfig = field(default_factory=AirFingerConfig)
    pd_positions_mm: np.ndarray = field(default_factory=lambda: np.array(
        [[-12.0, 0.0], [0.0, 0.0], [12.0, 0.0],
         [0.0, -12.0], [0.0, 12.0]]))
    smooth_window: int = 7
    energy_gate: float = 0.25
    min_frames: int = 5
    min_travel_mm: float = 4.0
    min_fit_r2: float = 0.5
    min_drift_mm: float = 3.0

    def __post_init__(self) -> None:
        self.pd_positions_mm = np.asarray(self.pd_positions_mm,
                                          dtype=np.float64)
        if self.pd_positions_mm.ndim != 2 or self.pd_positions_mm.shape[1] != 2:
            raise ValueError("pd_positions_mm must be (C, 2)")
        if self.smooth_window < 1:
            raise ValueError("smooth_window must be >= 1")
        if not 0.0 < self.energy_gate < 1.0:
            raise ValueError("energy_gate must be in (0, 1)")
        if self.min_frames < 3:
            raise ValueError("min_frames must be >= 3")
        if self.min_travel_mm < 0:
            raise ValueError("min_travel_mm must be non-negative")
        if not 0.0 <= self.min_fit_r2 < 1.0:
            raise ValueError("min_fit_r2 must be within [0, 1)")
        if self.min_drift_mm < 0:
            raise ValueError("min_drift_mm must be non-negative")

    def positions(self, rss: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Per-frame position estimates and their energy weights.

        Returns ``(positions, weights)`` where positions is ``(T, 2)`` and
        frames below the energy gate carry weight 0.
        """
        rss = np.atleast_2d(np.asarray(rss, dtype=np.float64))
        n_ch = self.pd_positions_mm.shape[0]
        if rss.shape[1] != n_ch:
            raise ValueError(
                f"expected {n_ch} channels, got {rss.shape[1]}")
        exc = np.maximum(rss - np.quantile(rss, 0.1, axis=0), 0.0)
        if self.smooth_window > 1 and len(exc) >= self.smooth_window:
            kernel = np.ones(self.smooth_window) / self.smooth_window
            exc = np.stack([np.convolve(exc[:, c], kernel, mode="same")
                            for c in range(n_ch)], axis=1)
        total = exc.sum(axis=1)
        gate = self.energy_gate * float(np.quantile(total, 0.95))
        weights = np.where(total > max(gate, 1e-12), total, 0.0)
        safe = np.maximum(total, 1e-12)[:, None]
        positions = (exc @ self.pd_positions_mm) / safe
        return positions, weights

    def track(self, rss: np.ndarray) -> PlanarTrackResult:
        """Track one segmented swipe from prefiltered ``(T, C)`` RSS."""
        positions, weights = self.positions(rss)
        active = weights > 0
        if active.sum() < self.min_frames:
            return PlanarTrackResult(0.0, 0.0, (0.0, 0.0), confident=False)
        t = np.nonzero(active)[0] / self.config.sample_rate_hz
        w = weights[active]
        pos = positions[active]
        # a real swipe moves the centroid across the board; noise hovers
        travel = float(np.linalg.norm(np.ptp(pos, axis=0)))
        if travel < self.min_travel_mm:
            return PlanarTrackResult(0.0, 0.0, (0.0, 0.0), confident=False)
        # a swipe carries net drift across the board; noise wanders in place
        half = len(pos) // 2
        drift = float(np.linalg.norm(
            np.average(pos[half:], axis=0, weights=w[half:])
            - np.average(pos[:half], axis=0, weights=w[:half])))
        if drift < self.min_drift_mm:
            return PlanarTrackResult(0.0, 0.0, (0.0, 0.0), confident=False)
        t_c = np.average(t, weights=w)
        tw = t - t_c
        denom = np.average(tw * tw, weights=w)
        if denom < 1e-12:
            return PlanarTrackResult(0.0, 0.0, (0.0, 0.0), confident=False)
        vx = float(np.average(tw * pos[:, 0], weights=w) / denom)
        vy = float(np.average(tw * pos[:, 1], weights=w) / denom)
        speed = math.hypot(vx, vy)
        if speed < 1e-9:
            return PlanarTrackResult(0.0, 0.0, (vx, vy), confident=False)
        # fit quality: a genuine swipe moves the centroid linearly in time;
        # noise positions scatter and explain almost none of their variance
        centre = np.average(pos, axis=0, weights=w)
        ss_tot = float(np.average(np.sum((pos - centre) ** 2, axis=1),
                                  weights=w))
        model = np.outer(tw, [vx, vy])
        ss_model = float(np.average(np.sum(model ** 2, axis=1), weights=w))
        r2 = ss_model / ss_tot if ss_tot > 1e-12 else 0.0
        if r2 < self.min_fit_r2:
            return PlanarTrackResult(0.0, 0.0, (vx, vy), confident=False)
        angle = math.degrees(math.atan2(vy, vx)) % 360.0
        return PlanarTrackResult(angle, speed, (vx, vy), confident=True)
