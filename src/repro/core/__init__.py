"""The paper's primary contribution: the airFinger recognition stack.

Data flow (Fig. 4 of the paper)::

    RSS frames ──> SBC (noise mitigation) ──> DT (gesture segmentation)
                      │
                      ├─ dispatcher: detect-aimed vs track-aimed (I_g rule)
                      │
        detect-aimed ─┤                         track-aimed
                      ▼                               ▼
        interference filter (bold-9 RF)         ZEBRA (direction,
                      ▼                          velocity, displacement)
        feature extraction (25 families)
                      ▼
        RF gesture classifier

Modules: :mod:`~repro.core.sbc` (Square Based Calculation),
:mod:`~repro.core.segmentation` (Otsu dynamic threshold + ``t_e``
clustering), :mod:`~repro.core.detector` (detect-aimed recognition),
:mod:`~repro.core.zebra` (Algorithm 1), :mod:`~repro.core.dispatcher`,
:mod:`~repro.core.interference`, and :mod:`~repro.core.pipeline` (the
real-time engine tying it all together).
"""

from repro.core.config import AirFingerConfig
from repro.core.sbc import (
    StreamingMovingAverage,
    StreamingSbc,
    prefilter,
    sbc_transform,
)
from repro.core.segmentation import (
    otsu_threshold,
    DynamicThresholdSegmenter,
    Segment,
)
from repro.core.detector import DetectAimedRecognizer
from repro.core.zebra import ZebraTracker, TrackResult, find_ascending_point
from repro.core.dispatcher import (
    GestureDispatcher,
    channel_lag_s,
    onset_times,
    sweep_statistics,
)
from repro.core.interference import InterferenceFilter
from repro.core.events import (
    ChannelMaskEvent,
    GestureEvent,
    ScrollUpdate,
    SegmentEvent,
    StreamGap,
)
from repro.core.pipeline import DEFAULT_BLOCK_SIZE, AirFinger
from repro.core.persistence import load_stack, save_stack
from repro.core.templates import GestureTemplate, TemplateRecognizer
from repro.core.tracking2d import PlanarTracker, PlanarTrackResult, compass_bin
from repro.core.calibration import (
    CalibrationResult,
    ChannelGuard,
    ChannelHealth,
    SensorCalibrator,
)

__all__ = [
    "AirFingerConfig",
    "sbc_transform",
    "StreamingSbc",
    "StreamingMovingAverage",
    "prefilter",
    "otsu_threshold",
    "DynamicThresholdSegmenter",
    "Segment",
    "DetectAimedRecognizer",
    "ZebraTracker",
    "TrackResult",
    "find_ascending_point",
    "GestureDispatcher",
    "onset_times",
    "channel_lag_s",
    "sweep_statistics",
    "InterferenceFilter",
    "GestureEvent",
    "ScrollUpdate",
    "SegmentEvent",
    "StreamGap",
    "ChannelMaskEvent",
    "AirFinger",
    "DEFAULT_BLOCK_SIZE",
    "load_stack",
    "save_stack",
    "GestureTemplate",
    "TemplateRecognizer",
    "PlanarTracker",
    "PlanarTrackResult",
    "compass_bin",
    "CalibrationResult",
    "ChannelGuard",
    "ChannelHealth",
    "SensorCalibrator",
]
