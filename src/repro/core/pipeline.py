"""The real-time airFinger engine: frames in, recognition events out.

This module wires the whole Fig. 4 data flow together for streaming use:
each :class:`~repro.acquisition.stream.RssFrame` is pushed through SBC and
the dynamic-threshold segmenter; when a gesture segment closes, the
dispatcher routes it either through the interference filter + detect-aimed
recognizer (emitting a :class:`~repro.core.events.GestureEvent`) or through
ZEBRA (emitting a final :class:`~repro.core.events.ScrollUpdate`).  While a
track-aimed gesture is still in progress the engine emits live
``ScrollUpdate`` events, reproducing the paper's claim that scroll
direction is identified "in real-time, without waiting for the end of this
gesture".
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from time import perf_counter

import numpy as np

from repro.acquisition.sampler import Recording
from repro.acquisition.stream import (
    FrameBlock,
    RssFrame,
    stream_blocks,
    stream_frames,
)
from repro.core.calibration import ChannelGuard
from repro.core.config import AirFingerConfig
from repro.core.detector import DetectAimedRecognizer
from repro.core.dispatcher import GestureDispatcher
from repro.core.events import (
    ChannelMaskEvent,
    GestureEvent,
    ScrollUpdate,
    SegmentEvent,
    StreamGap,
)
from repro.core.interference import InterferenceFilter
from repro.core.sbc import (
    StreamingMovingAverage,
    StreamingSbc,
    prefilter,
    sbc_transform,
)
from repro.core.segmentation import DynamicThresholdSegmenter, Segment
from repro.core.zebra import ZebraTracker
from repro.obs import (MetricsRegistry, Tracer, get_registry,
                       get_stage_profile, get_tracer)

__all__ = ["AirFinger", "DEFAULT_BLOCK_SIZE"]

#: Default batch length for block-mode replay (``feed_recording`` et al.).
#: Big enough to amortize numpy dispatch, small enough that event latency
#: stays a fraction of a second at the paper's 100 Hz rate.
DEFAULT_BLOCK_SIZE = 256

_UNSET = object()


@dataclass
class AirFinger:
    """The end-to-end streaming recognizer.

    Parameters
    ----------
    config:
        Stack configuration (paper defaults).
    detector:
        A fitted :class:`DetectAimedRecognizer`; without one, detect-aimed
        segments still produce :class:`SegmentEvent` but no gesture label.
    interference_filter:
        Optional fitted gesture/non-gesture filter applied before the
        detector.
    tracker:
        ZEBRA tracker; constructed from the config when omitted.
    live_update_every:
        Emit a live ScrollUpdate every this many frames while a track-aimed
        gesture is open (0 disables live updates).
    gate_fraction:
        Per-channel onset gate as a fraction of the combined-signal
        segmentation threshold (channels are quieter individually than the
        channel sum).
    channel_guard:
        Run the streaming :class:`~repro.core.calibration.ChannelGuard`
        on every frame: a channel that goes flat or pins at the top rail
        is masked out of the combined RSS (its last healthy level is held
        instead) and restored only after the recovery hysteresis — a
        :class:`~repro.core.events.ChannelMaskEvent` marks each
        transition.  On a clean stream the guard never fires and the
        output is bit-identical to running without it.
    metrics:
        Metrics registry for per-stage latency, event counters and the
        100 Hz deadline-miss counter; defaults to the process-global
        registry (:func:`repro.obs.get_registry`).  Disable process-wide
        with ``REPRO_OBS=0``.
    tracer:
        Span tracer; when sampling is on (``REPRO_TRACE``), every frame
        becomes a ``pipeline.frame`` span with per-stage child spans, and
        a deadline miss adds a ``deadline_miss`` span event naming the
        offending stage.  Defaults to the process-global tracer
        (:func:`repro.obs.get_tracer`).
    """

    config: AirFingerConfig = field(default_factory=AirFingerConfig)
    detector: DetectAimedRecognizer | None = None
    interference_filter: InterferenceFilter | None = None
    tracker: ZebraTracker | None = None
    live_update_every: int = 5
    gate_fraction: float = 0.35
    channel_guard: bool = True
    metrics: MetricsRegistry | None = None
    tracer: Tracer | None = None

    def __post_init__(self) -> None:
        if self.live_update_every < 0:
            raise ValueError("live_update_every must be >= 0")
        if not 0.0 < self.gate_fraction <= 1.0:
            raise ValueError("gate_fraction must be in (0, 1]")
        if self.tracker is None:
            self.tracker = ZebraTracker(config=self.config)
        self._segmenter = DynamicThresholdSegmenter(self.config)
        self._dispatcher = GestureDispatcher(self.config)
        self._combined_sbc = StreamingSbc(self.config.sbc_window_samples)
        self._prefilters: list[StreamingMovingAverage] = []
        history = (self.config.max_segment_samples
                   + 2 * self.config.cluster_gap_samples + 64)
        self._raw: deque[tuple[float, ...]] = deque(maxlen=history)
        self._delta: deque[float] = deque(maxlen=history)
        self._fed = 0
        self._last_time_s = 0.0
        self._live_cooldown = 0
        self._live_track_open = False
        # degradation state: frame indices are anchored on the first frame
        # seen, so windowed replays and resumed streams start at position 0
        self._anchor: int | None = None
        self._pos = 0
        self._last_values: tuple[float, ...] | None = None
        self._guard: ChannelGuard | None = None
        self._hold: list[float] = []
        # metric handles are resolved once; feed() only pays record calls
        m = self.metrics if self.metrics is not None else get_registry()
        self._obs = m
        self._tr = self.tracer if self.tracer is not None else get_tracer()
        self._stage_s: dict[str, float] = {}
        self._deadline_s = 1.0 / self.config.sample_rate_hz
        self._h_frame = m.histogram("pipeline.frame_seconds")
        self._h_prefilter = m.histogram("pipeline.stage_seconds",
                                        stage="prefilter_sbc")
        self._h_segmentation = m.histogram("pipeline.stage_seconds",
                                           stage="segmentation")
        self._h_dispatch = m.histogram("pipeline.stage_seconds",
                                       stage="dispatch")
        self._h_tracking = m.histogram("pipeline.stage_seconds",
                                       stage="tracking")
        self._h_detection = m.histogram("pipeline.stage_seconds",
                                        stage="detection")
        self._c_frames = m.counter("pipeline.frames")
        self._c_deadline = m.counter("pipeline.deadline_miss")
        self._c_block_deadline = m.counter("pipeline.block_deadline_miss")
        self._c_fallback = {
            reason: m.counter("pipeline.block_fallback", reason=reason)
            for reason in ("tracing", "ragged_channels",
                           "channel_count_change")}
        self._c_segments = m.counter("pipeline.segments")
        self._c_ev_gesture = m.counter("pipeline.events", type="gesture")
        self._c_ev_rejected = m.counter("pipeline.events", type="rejected")
        self._c_ev_final = m.counter("pipeline.events", type="scroll_final")
        self._c_ev_live = m.counter("pipeline.events", type="scroll_live")
        self._c_gap_interp = m.counter("pipeline.faults.gaps",
                                       action="interpolated")
        self._c_gap_reset = m.counter("pipeline.faults.gaps", action="reset")
        self._c_out_of_order = m.counter("pipeline.faults.out_of_order")
        self._c_mask = m.counter("pipeline.faults.channel_masked")
        self._c_unmask = m.counter("pipeline.faults.channel_recovered")

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    @property
    def frames_fed(self) -> int:
        """Total frames ingested."""
        return self._fed

    @property
    def segmentation_threshold(self) -> float:
        """Current dynamic threshold on the combined ΔRSS²."""
        return self._segmenter.threshold

    @property
    def stream_position(self) -> int:
        """Current stream sample position (frames fed + gap jumps)."""
        return self._pos

    @property
    def channel_mask(self) -> tuple[bool, ...]:
        """Per-channel masked state (empty before the first frame)."""
        return self._guard.mask if self._guard is not None else ()

    def _gate(self, threshold: float | None = None) -> float:
        # block mode passes the threshold observed at the frame's own
        # position; the live segmenter has already advanced past it
        if threshold is None:
            threshold = self._segmenter.threshold
        return threshold * self.gate_fraction

    def _history_offset(self) -> int:
        return self._pos - len(self._raw)

    def _slice_raw(self, start: int, end: int) -> np.ndarray:
        offset = self._history_offset()
        lo = max(start - offset, 0)
        hi = min(end - offset, len(self._raw))
        if hi <= lo:
            return np.zeros((0, 0))
        rows = list(self._raw)[lo:hi]
        return np.asarray(rows, dtype=np.float64)

    def _slice_delta(self, start: int, end: int) -> np.ndarray:
        offset = self._history_offset()
        lo = max(start - offset, 0)
        hi = min(end - offset, len(self._delta))
        if hi <= lo:
            return np.zeros(0)
        return np.asarray(list(self._delta)[lo:hi], dtype=np.float64)

    def _segment_event(self, segment: Segment) -> SegmentEvent:
        rate = self.config.sample_rate_hz
        return SegmentEvent(
            start_index=segment.start,
            end_index=segment.end,
            start_time_s=segment.start / rate,
            end_time_s=segment.end / rate)

    # ------------------------------------------------------------------
    # main entry points
    # ------------------------------------------------------------------
    def feed(self, frame: RssFrame) -> list:
        """Ingest one frame; returns the events it triggered.

        The stored history and everything downstream (segmentation, onset
        analysis, features) operate on the prefiltered RSS.  Imperfect
        streams degrade instead of derailing: a short index gap is bridged
        by linear interpolation, a long one flushes the segmenter and
        yields a :class:`StreamGap`, and a channel the health guard
        declares dead or saturated is held at its last healthy level until
        it recovers (:class:`ChannelMaskEvent` marks both transitions).
        """
        if self._tr.active:
            with self._tr.span("pipeline.frame", index=self._fed) as span:
                return self._feed(frame, span)
        return self._feed(frame, None)

    def _feed(self, frame: RssFrame, span) -> list:
        t_start = perf_counter()
        stage_s = self._stage_s
        stage_s.clear()
        events: list = []

        if self._anchor is None:
            self._anchor = frame.index
        gap = (frame.index - self._anchor) - self._pos
        if gap > 0:
            events.extend(self._handle_gap(gap, frame, span))
        elif gap < 0:
            # an index from the past: its slot has already been filled (by
            # a real or interpolated sample), so rewinding history is
            # impossible and ingesting it would desync every later frame —
            # count it and drop it
            self._c_out_of_order.inc()
            if span is not None:
                span.add_event("out_of_order", frame_index=frame.index,
                               expected=self._pos + self._anchor)
            return events

        values = frame.values
        if self.channel_guard:
            events.extend(self._guard_frame(frame, span))
            if self._guard is not None and self._guard.any_masked:
                values = tuple(
                    self._hold[c] if masked else v
                    for c, (v, masked) in enumerate(
                        zip(values, self._guard.mask)))
        self._last_values = values

        events.extend(self._ingest(values, frame.time_s, span))
        self._fed += 1

        frame_s = perf_counter() - t_start
        self._h_frame.observe(frame_s)
        self._c_frames.inc()
        if frame_s > self._deadline_s:
            self._c_deadline.inc()
            if span is not None:
                slowest = max(stage_s, key=stage_s.get) if stage_s else "?"
                span.add_event(
                    "deadline_miss", stage=slowest,
                    frame_index=self._fed - 1, frame_s=frame_s,
                    deadline_s=self._deadline_s)
        # Continuous profiling re-uses the stage splits measured above —
        # when off this is one global read + None check per frame.
        prof = get_stage_profile()
        if prof is not None:
            prof.add_frame("pipeline.frame", frame_s, stage_s)
        return events

    def _ingest(self, values: tuple[float, ...], time_s: float,
                span) -> list:
        """One sample through prefilter → SBC → segmentation → handlers."""
        t_start = perf_counter()
        if len(self._prefilters) != len(values):
            self._prefilters = [
                StreamingMovingAverage(self.config.prefilter_samples)
                for _ in values]
        filtered = tuple(f.push(v) for f, v in zip(self._prefilters,
                                                   values))
        self._raw.append(filtered)
        self._last_time_s = time_s
        combined = float(sum(filtered))
        delta = self._combined_sbc.push(combined)
        self._delta.append(delta)
        self._pos += 1
        t_prefilter = perf_counter()
        self._stage_s["prefilter_sbc"] = (
            self._stage_s.get("prefilter_sbc", 0.0) + t_prefilter - t_start)
        self._h_prefilter.observe(t_prefilter - t_start)

        events: list = []
        finished = self._segmenter.push(delta)
        t_segmentation = perf_counter()
        self._stage_s["segmentation"] = (
            self._stage_s.get("segmentation", 0.0)
            + t_segmentation - t_prefilter)
        self._h_segmentation.observe(t_segmentation - t_prefilter)
        if span is not None:
            self._tr.record("pipeline.stage", t_start, t_prefilter,
                            stage="prefilter_sbc")
            self._tr.record("pipeline.stage", t_prefilter, t_segmentation,
                            stage="segmentation")
        if finished is not None:
            events.extend(self._handle_segment(finished))
            self._live_track_open = False
            # a fresh gesture must not inherit the previous one's live
            # phase; restart the cadence at the next segment opening
            self._live_cooldown = 0
        elif self.live_update_every:
            live = self._maybe_live_update()
            if live is not None:
                events.append(live)
                self._c_ev_live.inc()
        return events

    def _handle_gap(self, gap: int, frame: RssFrame, span) -> list:
        """Bridge or reset over *gap* missing stream positions."""
        events: list = []
        if gap <= self.config.max_gap_samples and self._last_values is not None:
            last = self._last_values
            rate = self.config.sample_rate_hz
            for k in range(gap):
                frac = (k + 1) / (gap + 1)
                values = tuple(a + frac * (b - a)
                               for a, b in zip(last, frame.values))
                time_s = frame.time_s - (gap - k) / rate
                events.extend(self._ingest(values, time_s, span))
            self._c_gap_interp.inc(gap)
            if span is not None:
                span.add_event("gap_interpolated", n_missing=gap,
                               start=self._pos - gap)
            return events
        # too long to invent data for: flush in-flight state, jump ahead
        start = self._pos
        tail = self._segmenter.discontinuity(gap)
        if tail is not None:
            events.extend(self._handle_segment(tail))
        self._combined_sbc.reset()
        self._prefilters = []
        self._raw.clear()
        self._delta.clear()
        if self._guard is not None:
            self._guard.clear_window()
        self._live_track_open = False
        self._live_cooldown = 0
        self._pos += gap
        events.append(StreamGap(
            start_index=start, end_index=self._pos,
            duration_s=gap / self.config.sample_rate_hz,
            time_s=frame.time_s))
        self._c_gap_reset.inc()
        if span is not None:
            span.add_event("stream_gap", n_missing=gap, start=start)
        return events

    def _guard_frame(self, frame: RssFrame, span) -> list:
        """Run the channel health guard; returns mask-transition events."""
        if self._guard is None:
            self._guard = ChannelGuard(
                n_channels=len(frame.values),
                window=self.config.guard_window_samples,
                check_every=self.config.guard_check_every_samples,
                recovery_checks=self.config.guard_recovery_checks)
            self._hold = [0.0] * len(frame.values)
        transitions = self._guard.push(frame.values)
        if not transitions:
            return []
        events: list = []
        for channel, masked, reason in transitions:
            if masked:
                self._hold[channel] = self._guard.hold_value(channel)
                self._c_mask.inc()
            else:
                self._c_unmask.inc()
            # the combined signal steps when a channel's contribution is
            # swapped for the held level; restart SBC so the step does not
            # masquerade as gesture energy
            self._combined_sbc.reset()
            events.append(ChannelMaskEvent(
                channel=channel, masked=masked, reason=reason,
                index=self._pos, time_s=frame.time_s))
            if span is not None:
                span.add_event("channel_mask", channel=channel,
                               masked=masked, reason=reason)
        return events

    def _note_block_fallback(self, reason: str, n_frames: int) -> None:
        """Book one operator-visible per-frame fallback of *n_frames*.

        A sampled trace (or a block shape only the scalar path can
        digest) makes the affected block roughly an order of magnitude
        slower; ``pipeline.block_fallback{reason=...}`` and a
        ``block_fallback`` span event keep that visible instead of
        silently eating the regression.
        """
        self._c_fallback[reason].inc()
        if self._tr.active:
            span = self._tr.current_span()
            if span is not None:
                span.add_event("block_fallback", reason=reason,
                               n_frames=n_frames)
            else:
                # no enclosing span (bare feed_block under sampling):
                # open a point span so the signal still lands in the trace
                with self._tr.span("pipeline.block_fallback",
                                   reason=reason, n_frames=n_frames):
                    pass

    def feed_block(self, frames) -> list:
        """Ingest a batch of frames; bit-identical events to per-frame
        :meth:`feed` calls over the same frames.

        *frames* is a :class:`~repro.acquisition.stream.FrameBlock` or any
        :class:`RssFrame` iterable.  Contiguous-index stretches run through
        the vectorized hot path (stacked prefilter + SBC, scheduled guard
        checks, the segmenter's block state machine); frames that open a
        gap or arrive out of order are delegated one-by-one to the scalar
        path, which owns the degradation semantics.  The equivalence
        contract covers the **event sequence** and all pipeline state;
        latency histograms are recorded block-amortized (the frame and
        stage histograms see the per-frame average ``n`` times, so sample
        counts match the scalar path), while deadline misses are counted
        at block granularity under ``pipeline.block_deadline_miss`` —
        the per-frame ``pipeline.deadline_miss`` counter is scalar-path
        only, because a block average can neither expose a single-frame
        spike nor stand in for ``n`` independent measurements.  When the
        tracer is sampling, the call transparently degrades to per-frame
        :meth:`feed` so every frame keeps its own span tree; that and the
        other scalar fallbacks are counted under
        ``pipeline.block_fallback{reason=...}``.
        """
        if not isinstance(frames, FrameBlock):
            frames = list(frames)
            try:
                frames = FrameBlock.from_frames(frames)
            except ValueError:
                # ragged channel counts: only the scalar path can rebuild
                # its filters mid-stream
                self._note_block_fallback("ragged_channels", len(frames))
                return [e for f in frames for e in self.feed(f)]
        if len(frames) == 0:
            return []
        if self._tr.active:
            self._note_block_fallback("tracing", len(frames))
            return [e for f in frames.frames() for e in self.feed(f)]
        n_channels = frames.values.shape[1]
        if ((self.channel_guard and self._guard is not None
                and self._guard.n_channels != n_channels)
                or (self._prefilters
                    and len(self._prefilters) != n_channels)):
            # channel count changed mid-stream; scalar semantics (guard
            # ValueError / filter rebuild) are authoritative
            self._note_block_fallback("channel_count_change", len(frames))
            return [e for f in frames.frames() for e in self.feed(f)]

        events: list = []
        indices = frames.indices
        n = len(frames)
        # maximal internally-contiguous stretches; each stretch's head may
        # still open a gap (or be stale) relative to the stream position
        bounds = ([0] + (np.flatnonzero(np.diff(indices) != 1) + 1).tolist()
                  + [n])
        for lo, hi in zip(bounds[:-1], bounds[1:]):
            i = lo
            while i < hi:
                if self._anchor is None:
                    self._anchor = int(indices[i])
                if (int(indices[i]) - self._anchor) - self._pos == 0:
                    events.extend(self._run_block(frames, i, hi))
                    i = hi
                else:
                    # boundary frame: interpolate/reset/drop exactly as the
                    # streaming path would, then resume the fast path
                    events.extend(self._feed(frames.frame(i), None))
                    i += 1
        return events

    def _run_block(self, block: FrameBlock, lo: int, hi: int) -> list:
        """Vectorized consumption of contiguous, in-order frames [lo, hi)."""
        t_start = perf_counter()
        self._stage_s.clear()
        vals = block.values[lo:hi]
        times = block.times_s[lo:hi]
        m = hi - lo
        n_channels = vals.shape[1]
        pos0 = self._pos
        events: list = []

        # --- channel guard: schedule checks, apply hold substitution ----
        guard_events: dict[int, list] = {}
        reset_offsets: list[int] = []
        x = vals
        if self.channel_guard:
            if self._guard is None:
                self._guard = ChannelGuard(
                    n_channels=n_channels,
                    window=self.config.guard_window_samples,
                    check_every=self.config.guard_check_every_samples,
                    recovery_checks=self.config.guard_recovery_checks)
                self._hold = [0.0] * n_channels
            mask_cur = list(self._guard.mask)
            checks = self._guard.push_block(vals)
            if checks or any(mask_cur):
                x = vals.copy()
                prev = 0
                for off, transitions in checks:
                    for c in range(n_channels):
                        if mask_cur[c]:
                            x[prev:off, c] = self._hold[c]
                    frame_events = []
                    for c, masked, reason, hold in transitions:
                        if masked:
                            self._hold[c] = hold
                            self._c_mask.inc()
                        else:
                            self._c_unmask.inc()
                        mask_cur[c] = masked
                        frame_events.append(ChannelMaskEvent(
                            channel=c, masked=masked, reason=reason,
                            index=pos0 + off, time_s=float(times[off])))
                    guard_events[off] = frame_events
                    reset_offsets.append(off)
                    prev = off
                for c in range(n_channels):
                    if mask_cur[c]:
                        x[prev:m, c] = self._hold[c]
        self._last_values = tuple(x[m - 1].tolist())

        # --- prefilter -> combined -> SBC (vectorized, exact) -----------
        if len(self._prefilters) != n_channels:
            self._prefilters = [
                StreamingMovingAverage(self.config.prefilter_samples)
                for _ in range(n_channels)]
        filtered = np.empty((m, n_channels), dtype=np.float64)
        for c, f in enumerate(self._prefilters):
            filtered[:, c] = f.push_block(x[:, c])
        # sequential channel accumulation matches float(sum(tuple))
        combined = np.zeros(m, dtype=np.float64)
        for c in range(n_channels):
            combined += filtered[:, c]
        delta = np.empty(m, dtype=np.float64)
        prev = 0
        for boundary in reset_offsets + [m]:
            if boundary > prev:
                delta[prev:boundary] = self._combined_sbc.push_block(
                    combined[prev:boundary])
            if boundary < m:
                # a mask transition steps the combined signal; the scalar
                # path restarts SBC at exactly this frame
                self._combined_sbc.reset()
            prev = boundary
        t_prefilter = perf_counter()
        self._h_prefilter.observe_many((t_prefilter - t_start) / m, m)

        # --- segmentation ------------------------------------------------
        seg = self._segmenter.push_block(delta)
        finished = dict(seg.finished)
        t_segmentation = perf_counter()
        self._h_segmentation.observe_many((t_segmentation - t_prefilter) / m, m)

        # --- per-frame bookkeeping + handlers ----------------------------
        # Quiet frames (no open segment, nothing finished, no guard event)
        # only append history and reset the live cooldown; whole quiet
        # spans collapse to two deque extends, which is what makes block
        # mode fast on realistic mostly-idle streams.
        opens = seg.open_start
        thresholds = seg.thresholds
        raw_append = self._raw.append
        delta_append = self._delta.append
        raw_maxlen = self._raw.maxlen or m
        live_every = self.live_update_every
        active = sorted(
            set(seg.open_offsets) | set(finished) | set(guard_events))
        cursor = 0
        for k in active + [m]:
            if k > cursor:  # quiet span [cursor, k)
                # rows deeper than the history deque's maxlen would be
                # evicted before anything reads them — skip building them
                tail = cursor if k - cursor <= raw_maxlen else k - raw_maxlen
                # list rows, not tuples: _slice_raw only ever np.asarrays
                # them, and skipping 1 tuple() per row is measurable here
                self._raw.extend(filtered[tail:k].tolist())
                self._delta.extend(delta[tail:k].tolist())
                self._last_time_s = float(times[k - 1])
                self._pos = pos0 + k
                if live_every:
                    self._live_cooldown = 0
            if k == m:
                break
            frame_events = guard_events.get(k)
            if frame_events is not None:
                events.extend(frame_events)
            raw_append(tuple(filtered[k].tolist()))
            self._last_time_s = float(times[k])
            delta_append(float(delta[k]))
            self._pos = pos0 + k + 1
            done = finished.get(k)
            if done is not None:
                events.extend(self._handle_segment(
                    done, gate=float(thresholds[k]) * self.gate_fraction))
                self._live_track_open = False
                self._live_cooldown = 0
            elif live_every:
                live = self._maybe_live_update(opens[k], float(thresholds[k]))
                if live is not None:
                    events.append(live)
                    self._c_ev_live.inc()
            cursor = k + 1
        self._fed += m

        block_s = perf_counter() - t_start
        per_frame_s = block_s / m
        self._h_frame.observe_many(per_frame_s, m)
        self._c_frames.inc(m)
        # Deadline accounting is block-granular here: the block average
        # can hide a single-frame spike and a slow average is one late
        # block, not `m` independent misses — so block mode books one
        # `pipeline.block_deadline_miss` per late block and leaves the
        # per-frame `pipeline.deadline_miss` counter to the scalar path.
        if block_s > m * self._deadline_s:
            self._c_block_deadline.inc()
        prof = get_stage_profile()
        if prof is not None:
            # Vectorized stages come from the block marks; handler stages
            # (dispatch/tracking/detection) accumulated into _stage_s.
            stages = {"prefilter_sbc": t_prefilter - t_start,
                      "segmentation": t_segmentation - t_prefilter}
            for stage, seconds in self._stage_s.items():
                stages[stage] = stages.get(stage, 0.0) + seconds
            prof.add_frame("pipeline.block", block_s, stages, frames=m)
        return events

    def iter_events(self, frames, block_size: int | None = None,
                    flush: bool = True):
        """Lazily yield events as *frames* are consumed.

        This is the generator behind :meth:`feed_frames` and
        :meth:`feed_recording`: events surface as soon as their frame (or
        frame block) is processed instead of accumulating in one eager
        list, so a tracing or UI consumer sees them incrementally.
        *frames* may mix :class:`RssFrame` and
        :class:`~repro.acquisition.stream.FrameBlock` items; with a
        ``block_size`` > 1, loose frames are grouped into blocks of that
        size for :meth:`feed_block`, otherwise they stream through
        :meth:`feed` one by one.
        """
        if block_size is not None and block_size < 1:
            raise ValueError(f"block_size must be >= 1, got {block_size}")
        batching = block_size is not None and block_size > 1
        pending: list[RssFrame] = []
        for item in frames:
            if isinstance(item, FrameBlock):
                if pending:
                    yield from self.feed_block(pending)
                    pending = []
                yield from self.feed_block(item)
            elif batching:
                pending.append(item)
                if len(pending) >= block_size:
                    yield from self.feed_block(pending)
                    pending = []
            else:
                yield from self.feed(item)
        if pending:
            yield from self.feed_block(pending)
        if flush:
            yield from self.flush()

    def feed_frames(self, frames, block_size: int | None = None) -> list:
        """Feed an arbitrary frame iterable; returns all events plus flush.

        Accepts any :class:`RssFrame` source — notably
        :meth:`FaultSchedule.stream <repro.faults.schedule.FaultSchedule.stream>`,
        whose dropped frames surface here as index gaps.  ``block_size``
        routes consumption through :meth:`feed_block` in batches of that
        size (same events, ~an order of magnitude faster on replay); the
        default keeps the historical frame-by-frame behavior.
        """
        return list(self.iter_events(frames, block_size=block_size))

    def feed_recording(self, recording: Recording,
                       block_size: int | None = None) -> list:
        """Replay a full recording; returns all events plus end-of-stream flush.

        Replay is offline, so it defaults to the vectorized block path
        (``DEFAULT_BLOCK_SIZE`` frames at a time) — bit-identical events
        to the per-frame path, which remains available with
        ``block_size=1``.
        """
        if block_size is None:
            block_size = DEFAULT_BLOCK_SIZE
        if block_size == 1:
            return list(self.iter_events(stream_frames(recording),
                                         block_size=1))
        return list(self.iter_events(
            stream_blocks(recording, block_size), block_size=block_size))

    def flush(self) -> list:
        """Close any open segment at end of stream."""
        tail = self._segmenter.flush()
        if tail is None:
            return []
        out = self._handle_segment(tail)
        self._live_track_open = False
        self._live_cooldown = 0
        return out

    def reset(self) -> None:
        """Drop all stream state (models are kept)."""
        self._segmenter.reset()
        self._combined_sbc.reset()
        self._prefilters = []
        self._raw.clear()
        self._delta.clear()
        self._fed = 0
        self._last_time_s = 0.0
        self._live_cooldown = 0
        self._live_track_open = False
        self._anchor = None
        self._pos = 0
        self._last_values = None
        self._guard = None
        self._hold = []

    # ------------------------------------------------------------------
    # segment handling
    # ------------------------------------------------------------------
    def _stage_scope(self, stage: str, start_s: float, end_s: float) -> None:
        """Book one measured stage for deadline attribution + tracing."""
        self._stage_s[stage] = (self._stage_s.get(stage, 0.0)
                                + (end_s - start_s))
        if self._tr.active:
            self._tr.record("pipeline.stage", start_s, end_s, stage=stage)

    def _handle_segment(self, segment: Segment,
                        gate: float | None = None) -> list:
        event = self._segment_event(segment)
        rss = self._slice_raw(segment.start, segment.end)
        out: list = [event]
        self._c_segments.inc()
        if rss.size == 0:
            return out
        if gate is None:
            gate = self._gate()
        with self._obs.timer("pipeline.stage_seconds", stage="dispatch") as t:
            kind = self._dispatcher.classify(rss, gate)
        self._stage_scope("dispatch", t.started_s, t.started_s + t.elapsed_s)
        if kind == "track":
            with self._obs.timer("pipeline.stage_seconds",
                                 stage="tracking") as t:
                result = self.tracker.track(rss, gate)
            self._stage_scope("tracking", t.started_s,
                              t.started_s + t.elapsed_s)
            out.append(ScrollUpdate(
                direction=result.direction,
                velocity_mm_s=result.velocity_mm_s,
                displacement_mm=result.total_displacement_mm,
                time_s=event.end_time_s,
                final=True,
                segment=event))
            self._c_ev_final.inc()
            return out
        signal = self._slice_delta(segment.start, segment.end)
        if self.interference_filter is None and self.detector is None:
            return out
        t_detect = perf_counter()
        if self.interference_filter is not None:
            if self.interference_filter.gesture_probability(signal) < 0.5:
                t_done = perf_counter()
                self._h_detection.observe(t_done - t_detect)
                self._stage_scope("detection", t_detect, t_done)
                out.append(GestureEvent(
                    label="non_gesture", confidence=1.0, segment=event,
                    accepted=False))
                self._c_ev_rejected.inc()
                return out
        if self.detector is not None:
            label, confidence = self.detector.predict_one(signal)
            out.append(GestureEvent(
                label=label, confidence=confidence, segment=event,
                accepted=True))
            self._c_ev_gesture.inc()
        t_done = perf_counter()
        self._h_detection.observe(t_done - t_detect)
        self._stage_scope("detection", t_detect, t_done)
        return out

    def _maybe_live_update(self, open_start=_UNSET,
                           threshold: float | None = None
                           ) -> ScrollUpdate | None:
        # block mode passes the open_start/threshold trajectory recorded at
        # each frame; the scalar path reads the live segmenter
        if open_start is _UNSET:
            open_start = self._segmenter.open_start
        if open_start is None:
            self._live_cooldown = 0
            return None
        self._live_cooldown += 1
        if self._live_cooldown % self.live_update_every:
            return None
        elapsed = self._pos - open_start
        if elapsed < 2 * self.config.sbc_window_samples + 4:
            return None
        rss = self._slice_raw(open_start, self._pos)
        if rss.size == 0:
            return None
        gate = self._gate(threshold)
        with self._obs.timer("pipeline.stage_seconds", stage="dispatch") as t:
            kind = self._dispatcher.classify(rss, gate)
        self._stage_scope("dispatch", t.started_s, t.started_s + t.elapsed_s)
        if kind != "track" and not self._live_track_open:
            return None
        self._live_track_open = True
        with self._obs.timer("pipeline.stage_seconds", stage="tracking") as t:
            result = self.tracker.track(rss, gate)
        self._stage_scope("tracking", t.started_s, t.started_s + t.elapsed_s)
        event = SegmentEvent(
            start_index=open_start,
            end_index=self._pos,
            start_time_s=open_start / self.config.sample_rate_hz,
            end_time_s=self._pos / self.config.sample_rate_hz)
        # report the tracker's own displacement estimate so live and final
        # updates share one measurement (and one sign convention)
        return ScrollUpdate(
            direction=result.direction,
            velocity_mm_s=result.velocity_mm_s,
            displacement_mm=result.total_displacement_mm,
            time_s=self._last_time_s,
            final=False,
            segment=event)

    # ------------------------------------------------------------------
    # offline convenience
    # ------------------------------------------------------------------
    def segment_recording(self, recording: Recording
                          ) -> list[tuple[Segment, np.ndarray, np.ndarray]]:
        """Offline segmentation: ``(segment, rss_slice, delta_slice)`` triples.

        Uses a fresh segmenter so pipeline streaming state is untouched.
        """
        filtered = prefilter(recording.rss, self.config.prefilter_samples)
        combined = filtered.sum(axis=1)
        delta = sbc_transform(combined, self.config.sbc_window_samples)
        segmenter = DynamicThresholdSegmenter(self.config)
        out = []
        for seg in segmenter.segment(delta):
            out.append((seg,
                        filtered[seg.start:seg.end].copy(),
                        delta[seg.start:seg.end].copy()))
        return out
