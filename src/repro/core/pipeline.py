"""The real-time airFinger engine: frames in, recognition events out.

This module wires the whole Fig. 4 data flow together for streaming use:
each :class:`~repro.acquisition.stream.RssFrame` is pushed through SBC and
the dynamic-threshold segmenter; when a gesture segment closes, the
dispatcher routes it either through the interference filter + detect-aimed
recognizer (emitting a :class:`~repro.core.events.GestureEvent`) or through
ZEBRA (emitting a final :class:`~repro.core.events.ScrollUpdate`).  While a
track-aimed gesture is still in progress the engine emits live
``ScrollUpdate`` events, reproducing the paper's claim that scroll
direction is identified "in real-time, without waiting for the end of this
gesture".
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from time import perf_counter

import numpy as np

from repro.acquisition.sampler import Recording
from repro.acquisition.stream import RssFrame, stream_frames
from repro.core.config import AirFingerConfig
from repro.core.detector import DetectAimedRecognizer
from repro.core.dispatcher import GestureDispatcher
from repro.core.events import GestureEvent, ScrollUpdate, SegmentEvent
from repro.core.interference import InterferenceFilter
from repro.core.sbc import (
    StreamingMovingAverage,
    StreamingSbc,
    prefilter,
    sbc_transform,
)
from repro.core.segmentation import DynamicThresholdSegmenter, Segment
from repro.core.zebra import ZebraTracker
from repro.obs import MetricsRegistry, Tracer, get_registry, get_tracer

__all__ = ["AirFinger"]


@dataclass
class AirFinger:
    """The end-to-end streaming recognizer.

    Parameters
    ----------
    config:
        Stack configuration (paper defaults).
    detector:
        A fitted :class:`DetectAimedRecognizer`; without one, detect-aimed
        segments still produce :class:`SegmentEvent` but no gesture label.
    interference_filter:
        Optional fitted gesture/non-gesture filter applied before the
        detector.
    tracker:
        ZEBRA tracker; constructed from the config when omitted.
    live_update_every:
        Emit a live ScrollUpdate every this many frames while a track-aimed
        gesture is open (0 disables live updates).
    gate_fraction:
        Per-channel onset gate as a fraction of the combined-signal
        segmentation threshold (channels are quieter individually than the
        channel sum).
    metrics:
        Metrics registry for per-stage latency, event counters and the
        100 Hz deadline-miss counter; defaults to the process-global
        registry (:func:`repro.obs.get_registry`).  Disable process-wide
        with ``REPRO_OBS=0``.
    tracer:
        Span tracer; when sampling is on (``REPRO_TRACE``), every frame
        becomes a ``pipeline.frame`` span with per-stage child spans, and
        a deadline miss adds a ``deadline_miss`` span event naming the
        offending stage.  Defaults to the process-global tracer
        (:func:`repro.obs.get_tracer`).
    """

    config: AirFingerConfig = field(default_factory=AirFingerConfig)
    detector: DetectAimedRecognizer | None = None
    interference_filter: InterferenceFilter | None = None
    tracker: ZebraTracker | None = None
    live_update_every: int = 5
    gate_fraction: float = 0.35
    metrics: MetricsRegistry | None = None
    tracer: Tracer | None = None

    def __post_init__(self) -> None:
        if self.live_update_every < 0:
            raise ValueError("live_update_every must be >= 0")
        if not 0.0 < self.gate_fraction <= 1.0:
            raise ValueError("gate_fraction must be in (0, 1]")
        if self.tracker is None:
            self.tracker = ZebraTracker(config=self.config)
        self._segmenter = DynamicThresholdSegmenter(self.config)
        self._dispatcher = GestureDispatcher(self.config)
        self._combined_sbc = StreamingSbc(self.config.sbc_window_samples)
        self._prefilters: list[StreamingMovingAverage] = []
        history = (self.config.max_segment_samples
                   + 2 * self.config.cluster_gap_samples + 64)
        self._raw: deque[tuple[float, ...]] = deque(maxlen=history)
        self._delta: deque[float] = deque(maxlen=history)
        self._fed = 0
        self._last_time_s = 0.0
        self._live_cooldown = 0
        self._live_track_open = False
        # metric handles are resolved once; feed() only pays record calls
        m = self.metrics if self.metrics is not None else get_registry()
        self._obs = m
        self._tr = self.tracer if self.tracer is not None else get_tracer()
        self._stage_s: dict[str, float] = {}
        self._deadline_s = 1.0 / self.config.sample_rate_hz
        self._h_frame = m.histogram("pipeline.frame_seconds")
        self._h_prefilter = m.histogram("pipeline.stage_seconds",
                                        stage="prefilter_sbc")
        self._h_segmentation = m.histogram("pipeline.stage_seconds",
                                           stage="segmentation")
        self._h_dispatch = m.histogram("pipeline.stage_seconds",
                                       stage="dispatch")
        self._h_tracking = m.histogram("pipeline.stage_seconds",
                                       stage="tracking")
        self._h_detection = m.histogram("pipeline.stage_seconds",
                                        stage="detection")
        self._c_frames = m.counter("pipeline.frames")
        self._c_deadline = m.counter("pipeline.deadline_miss")
        self._c_segments = m.counter("pipeline.segments")
        self._c_ev_gesture = m.counter("pipeline.events", type="gesture")
        self._c_ev_rejected = m.counter("pipeline.events", type="rejected")
        self._c_ev_final = m.counter("pipeline.events", type="scroll_final")
        self._c_ev_live = m.counter("pipeline.events", type="scroll_live")

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    @property
    def frames_fed(self) -> int:
        """Total frames ingested."""
        return self._fed

    @property
    def segmentation_threshold(self) -> float:
        """Current dynamic threshold on the combined ΔRSS²."""
        return self._segmenter.threshold

    def _gate(self) -> float:
        return self._segmenter.threshold * self.gate_fraction

    def _history_offset(self) -> int:
        return self._fed - len(self._raw)

    def _slice_raw(self, start: int, end: int) -> np.ndarray:
        offset = self._history_offset()
        lo = max(start - offset, 0)
        hi = min(end - offset, len(self._raw))
        if hi <= lo:
            return np.zeros((0, 0))
        rows = list(self._raw)[lo:hi]
        return np.asarray(rows, dtype=np.float64)

    def _slice_delta(self, start: int, end: int) -> np.ndarray:
        offset = self._history_offset()
        lo = max(start - offset, 0)
        hi = min(end - offset, len(self._delta))
        if hi <= lo:
            return np.zeros(0)
        return np.asarray(list(self._delta)[lo:hi], dtype=np.float64)

    def _segment_event(self, segment: Segment) -> SegmentEvent:
        rate = self.config.sample_rate_hz
        return SegmentEvent(
            start_index=segment.start,
            end_index=segment.end,
            start_time_s=segment.start / rate,
            end_time_s=segment.end / rate)

    # ------------------------------------------------------------------
    # main entry points
    # ------------------------------------------------------------------
    def feed(self, frame: RssFrame) -> list:
        """Ingest one frame; returns the events it triggered.

        The stored history and everything downstream (segmentation, onset
        analysis, features) operate on the prefiltered RSS.
        """
        if self._tr.active:
            with self._tr.span("pipeline.frame", index=self._fed) as span:
                return self._feed(frame, span)
        return self._feed(frame, None)

    def _feed(self, frame: RssFrame, span) -> list:
        t_start = perf_counter()
        stage_s = self._stage_s
        stage_s.clear()
        if len(self._prefilters) != len(frame.values):
            self._prefilters = [
                StreamingMovingAverage(self.config.prefilter_samples)
                for _ in frame.values]
        filtered = tuple(f.push(v) for f, v in zip(self._prefilters,
                                                   frame.values))
        self._raw.append(filtered)
        self._last_time_s = frame.time_s
        combined = float(sum(filtered))
        delta = self._combined_sbc.push(combined)
        self._delta.append(delta)
        self._fed += 1
        t_prefilter = perf_counter()
        stage_s["prefilter_sbc"] = t_prefilter - t_start
        self._h_prefilter.observe(t_prefilter - t_start)

        events: list = []
        finished = self._segmenter.push(delta)
        t_segmentation = perf_counter()
        stage_s["segmentation"] = t_segmentation - t_prefilter
        self._h_segmentation.observe(t_segmentation - t_prefilter)
        if span is not None:
            self._tr.record("pipeline.stage", t_start, t_prefilter,
                            stage="prefilter_sbc")
            self._tr.record("pipeline.stage", t_prefilter, t_segmentation,
                            stage="segmentation")
        if finished is not None:
            events.extend(self._handle_segment(finished))
            self._live_track_open = False
            # a fresh gesture must not inherit the previous one's live
            # phase; restart the cadence at the next segment opening
            self._live_cooldown = 0
        elif self.live_update_every:
            live = self._maybe_live_update()
            if live is not None:
                events.append(live)
                self._c_ev_live.inc()

        frame_s = perf_counter() - t_start
        self._h_frame.observe(frame_s)
        self._c_frames.inc()
        if frame_s > self._deadline_s:
            self._c_deadline.inc()
            if span is not None:
                slowest = max(stage_s, key=stage_s.get) if stage_s else "?"
                span.add_event(
                    "deadline_miss", stage=slowest,
                    frame_index=self._fed - 1, frame_s=frame_s,
                    deadline_s=self._deadline_s)
        return events

    def feed_recording(self, recording: Recording) -> list:
        """Replay a full recording; returns all events plus end-of-stream flush."""
        events: list = []
        for frame in stream_frames(recording):
            events.extend(self.feed(frame))
        events.extend(self.flush())
        return events

    def flush(self) -> list:
        """Close any open segment at end of stream."""
        tail = self._segmenter.flush()
        if tail is None:
            return []
        out = self._handle_segment(tail)
        self._live_track_open = False
        self._live_cooldown = 0
        return out

    def reset(self) -> None:
        """Drop all stream state (models are kept)."""
        self._segmenter.reset()
        self._combined_sbc.reset()
        self._prefilters = []
        self._raw.clear()
        self._delta.clear()
        self._fed = 0
        self._last_time_s = 0.0
        self._live_cooldown = 0
        self._live_track_open = False

    # ------------------------------------------------------------------
    # segment handling
    # ------------------------------------------------------------------
    def _stage_scope(self, stage: str, start_s: float, end_s: float) -> None:
        """Book one measured stage for deadline attribution + tracing."""
        self._stage_s[stage] = (self._stage_s.get(stage, 0.0)
                                + (end_s - start_s))
        if self._tr.active:
            self._tr.record("pipeline.stage", start_s, end_s, stage=stage)

    def _handle_segment(self, segment: Segment) -> list:
        event = self._segment_event(segment)
        rss = self._slice_raw(segment.start, segment.end)
        out: list = [event]
        self._c_segments.inc()
        if rss.size == 0:
            return out
        gate = self._gate()
        with self._obs.timer("pipeline.stage_seconds", stage="dispatch") as t:
            kind = self._dispatcher.classify(rss, gate)
        self._stage_scope("dispatch", t.started_s, t.started_s + t.elapsed_s)
        if kind == "track":
            with self._obs.timer("pipeline.stage_seconds",
                                 stage="tracking") as t:
                result = self.tracker.track(rss, gate)
            self._stage_scope("tracking", t.started_s,
                              t.started_s + t.elapsed_s)
            out.append(ScrollUpdate(
                direction=result.direction,
                velocity_mm_s=result.velocity_mm_s,
                displacement_mm=result.total_displacement_mm,
                time_s=event.end_time_s,
                final=True,
                segment=event))
            self._c_ev_final.inc()
            return out
        signal = self._slice_delta(segment.start, segment.end)
        if self.interference_filter is None and self.detector is None:
            return out
        t_detect = perf_counter()
        if self.interference_filter is not None:
            if self.interference_filter.gesture_probability(signal) < 0.5:
                t_done = perf_counter()
                self._h_detection.observe(t_done - t_detect)
                self._stage_scope("detection", t_detect, t_done)
                out.append(GestureEvent(
                    label="non_gesture", confidence=1.0, segment=event,
                    accepted=False))
                self._c_ev_rejected.inc()
                return out
        if self.detector is not None:
            label, confidence = self.detector.predict_one(signal)
            out.append(GestureEvent(
                label=label, confidence=confidence, segment=event,
                accepted=True))
            self._c_ev_gesture.inc()
        t_done = perf_counter()
        self._h_detection.observe(t_done - t_detect)
        self._stage_scope("detection", t_detect, t_done)
        return out

    def _maybe_live_update(self) -> ScrollUpdate | None:
        open_start = self._segmenter.open_start
        if open_start is None:
            self._live_cooldown = 0
            return None
        self._live_cooldown += 1
        if self._live_cooldown % self.live_update_every:
            return None
        elapsed = self._fed - open_start
        if elapsed < 2 * self.config.sbc_window_samples + 4:
            return None
        rss = self._slice_raw(open_start, self._fed)
        if rss.size == 0:
            return None
        gate = self._gate()
        with self._obs.timer("pipeline.stage_seconds", stage="dispatch") as t:
            kind = self._dispatcher.classify(rss, gate)
        self._stage_scope("dispatch", t.started_s, t.started_s + t.elapsed_s)
        if kind != "track" and not self._live_track_open:
            return None
        self._live_track_open = True
        with self._obs.timer("pipeline.stage_seconds", stage="tracking") as t:
            result = self.tracker.track(rss, gate)
        self._stage_scope("tracking", t.started_s, t.started_s + t.elapsed_s)
        event = SegmentEvent(
            start_index=open_start,
            end_index=self._fed,
            start_time_s=open_start / self.config.sample_rate_hz,
            end_time_s=self._fed / self.config.sample_rate_hz)
        # report the tracker's own displacement estimate so live and final
        # updates share one measurement (and one sign convention)
        return ScrollUpdate(
            direction=result.direction,
            velocity_mm_s=result.velocity_mm_s,
            displacement_mm=result.total_displacement_mm,
            time_s=self._last_time_s,
            final=False,
            segment=event)

    # ------------------------------------------------------------------
    # offline convenience
    # ------------------------------------------------------------------
    def segment_recording(self, recording: Recording
                          ) -> list[tuple[Segment, np.ndarray, np.ndarray]]:
        """Offline segmentation: ``(segment, rss_slice, delta_slice)`` triples.

        Uses a fresh segmenter so pipeline streaming state is untouched.
        """
        filtered = prefilter(recording.rss, self.config.prefilter_samples)
        combined = filtered.sum(axis=1)
        delta = sbc_transform(combined, self.config.sbc_window_samples)
        segmenter = DynamicThresholdSegmenter(self.config)
        out = []
        for seg in segmenter.segment(delta):
            out.append((seg,
                        filtered[seg.start:seg.end].copy(),
                        delta[seg.start:seg.end].copy()))
        return out
