"""Events emitted by the real-time pipeline."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["SegmentEvent", "GestureEvent", "ScrollUpdate", "StreamGap",
           "ChannelMaskEvent"]


@dataclass(frozen=True)
class SegmentEvent:
    """A gesture candidate was segmented out of the stream.

    Indices are absolute sample indices since the pipeline started.
    """

    start_index: int
    end_index: int
    start_time_s: float
    end_time_s: float

    def __post_init__(self) -> None:
        if self.end_index <= self.start_index:
            raise ValueError("end_index must exceed start_index")

    @property
    def duration_s(self) -> float:
        """Segment duration."""
        return self.end_time_s - self.start_time_s


@dataclass(frozen=True)
class GestureEvent:
    """A recognized detect-aimed gesture (or a rejected non-gesture).

    Parameters
    ----------
    label:
        Gesture name, or ``"non_gesture"`` when the interference filter
        rejected the segment.
    confidence:
        Classifier probability of *label*.
    segment:
        The extent the decision covers.
    accepted:
        False when the interference filter rejected the segment.
    """

    label: str
    confidence: float
    segment: SegmentEvent
    accepted: bool = True


@dataclass(frozen=True)
class ScrollUpdate:
    """Track-aimed output: live or final scroll state.

    Parameters
    ----------
    direction:
        +1 scroll up, -1 scroll down, 0 undecided.
    velocity_mm_s:
        Current speed estimate.
    displacement_mm:
        Signed displacement ``D_t`` at ``time_s``.
    time_s:
        Stream time of this update.
    final:
        True for the gesture-end summary update, False for live updates
        emitted while the finger is still moving.
    segment:
        The extent covered so far.
    """

    direction: int
    velocity_mm_s: float
    displacement_mm: float
    time_s: float
    final: bool
    segment: SegmentEvent

    @property
    def direction_name(self) -> str:
        """``"scroll_up"``, ``"scroll_down"`` or ``"unknown"``."""
        if self.direction > 0:
            return "scroll_up"
        if self.direction < 0:
            return "scroll_down"
        return "unknown"


@dataclass(frozen=True)
class StreamGap:
    """Frames went missing for longer than the pipeline can interpolate.

    Emitted by :meth:`AirFinger.feed <repro.core.pipeline.AirFinger.feed>`
    when the index jump between consecutive frames exceeds
    ``max_gap_samples``: the segmenter's in-flight state was flushed (any
    open gesture is emitted truncated, never dropped) and the filters were
    reset, so recognition restarts cleanly after the gap.

    Parameters
    ----------
    start_index, end_index:
        Missing extent ``[start, end)`` in stream sample positions.
    duration_s:
        Nominal duration of the lost signal (``n_missing / sample_rate``).
    time_s:
        Timestamp of the first frame after the gap.
    """

    start_index: int
    end_index: int
    duration_s: float
    time_s: float

    def __post_init__(self) -> None:
        if self.end_index <= self.start_index:
            raise ValueError("end_index must exceed start_index")

    @property
    def n_missing(self) -> int:
        """Number of lost frames."""
        return self.end_index - self.start_index


@dataclass(frozen=True)
class ChannelMaskEvent:
    """A photodiode channel was masked out of (or restored to) the fusion.

    Emitted when the streaming health guard
    (:class:`~repro.core.calibration.ChannelGuard`) declares a channel
    dead/saturated (``masked=True``) or recovered after the hysteresis
    period (``masked=False``).  While masked, the channel contributes a
    held constant to the combined RSS instead of poisoning it.

    Parameters
    ----------
    channel:
        Column index of the affected photodiode.
    masked:
        True when the channel was just excluded, False on recovery.
    reason:
        Guard verdict (``"flat"``, ``"saturated"`` or ``"recovered"``).
    index:
        Stream sample position of the transition.
    time_s:
        Timestamp of the transition.
    """

    channel: int
    masked: bool
    reason: str
    index: int
    time_s: float
