"""Events emitted by the real-time pipeline."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["SegmentEvent", "GestureEvent", "ScrollUpdate"]


@dataclass(frozen=True)
class SegmentEvent:
    """A gesture candidate was segmented out of the stream.

    Indices are absolute sample indices since the pipeline started.
    """

    start_index: int
    end_index: int
    start_time_s: float
    end_time_s: float

    def __post_init__(self) -> None:
        if self.end_index <= self.start_index:
            raise ValueError("end_index must exceed start_index")

    @property
    def duration_s(self) -> float:
        """Segment duration."""
        return self.end_time_s - self.start_time_s


@dataclass(frozen=True)
class GestureEvent:
    """A recognized detect-aimed gesture (or a rejected non-gesture).

    Parameters
    ----------
    label:
        Gesture name, or ``"non_gesture"`` when the interference filter
        rejected the segment.
    confidence:
        Classifier probability of *label*.
    segment:
        The extent the decision covers.
    accepted:
        False when the interference filter rejected the segment.
    """

    label: str
    confidence: float
    segment: SegmentEvent
    accepted: bool = True


@dataclass(frozen=True)
class ScrollUpdate:
    """Track-aimed output: live or final scroll state.

    Parameters
    ----------
    direction:
        +1 scroll up, -1 scroll down, 0 undecided.
    velocity_mm_s:
        Current speed estimate.
    displacement_mm:
        Signed displacement ``D_t`` at ``time_s``.
    time_s:
        Stream time of this update.
    final:
        True for the gesture-end summary update, False for live updates
        emitted while the finger is still moving.
    segment:
        The extent covered so far.
    """

    direction: int
    velocity_mm_s: float
    displacement_mm: float
    time_s: float
    final: bool
    segment: SegmentEvent

    @property
    def direction_name(self) -> str:
        """``"scroll_up"``, ``"scroll_down"`` or ``"unknown"``."""
        if self.direction > 0:
            return "scroll_up"
        if self.direction < 0:
            return "scroll_down"
        return "unknown"
