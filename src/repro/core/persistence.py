"""Persistence of trained recognition stacks.

The paper emphasizes that airFinger ships pre-trained: "we can pre-train
the classifier and then people can directly work with airFinger without
user-specific calibration" (Section V-F2).  For that to be an actual
product property the trained stack must be storable; this module bundles a
fitted :class:`DetectAimedRecognizer` and :class:`InterferenceFilter`
(plus the configuration) into a single JSON file and back.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path

from repro.core.config import AirFingerConfig
from repro.core.detector import DetectAimedRecognizer
from repro.core.interference import InterferenceFilter
from repro.core.pipeline import AirFinger
from repro.features.extractor import FeatureExtractor
from repro.ml.serialize import deserialize_model, serialize_model

__all__ = ["save_stack", "load_stack", "FORMAT_VERSION"]

FORMAT_VERSION = 1


def _extractor_payload(extractor: FeatureExtractor) -> dict:
    return {"names": list(extractor.names)}


def _extractor_restore(payload: dict) -> FeatureExtractor:
    return FeatureExtractor.for_names(payload["names"])


def save_stack(path: str | Path,
               detector: DetectAimedRecognizer | None = None,
               interference_filter: InterferenceFilter | None = None,
               config: AirFingerConfig | None = None) -> None:
    """Write a trained stack to *path* (JSON).

    At least one of *detector* / *interference_filter* must be fitted.
    """
    if detector is None and interference_filter is None:
        raise ValueError("nothing to save: no detector and no filter")
    payload: dict = {"format_version": FORMAT_VERSION}
    if config is not None:
        payload["config"] = asdict(config)
    if detector is not None:
        if detector.model_ is None:
            raise ValueError("detector is not fitted")
        payload["detector"] = {
            "extractor": _extractor_payload(detector.extractor),
            "selected_families": (
                list(detector.selector.selected_families_)
                if detector.selector is not None
                and detector.selector.column_mask_ is not None else None),
            "model": serialize_model(detector.model_),
        }
    if interference_filter is not None:
        if interference_filter.model_ is None:
            raise ValueError("interference filter is not fitted")
        payload["interference_filter"] = {
            "extractor": _extractor_payload(interference_filter.extractor),
            "model": serialize_model(interference_filter.model_),
        }
    Path(path).write_text(json.dumps(payload))


def load_stack(path: str | Path) -> dict:
    """Load a stack saved by :func:`save_stack`.

    Returns
    -------
    dict
        Keys ``detector`` (:class:`DetectAimedRecognizer` or ``None``),
        ``interference_filter`` (:class:`InterferenceFilter` or ``None``),
        ``config`` (:class:`AirFingerConfig` or ``None``), and ``engine``
        (a ready :class:`AirFinger` built from all three).
    """
    payload = json.loads(Path(path).read_text())
    version = payload.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(
            f"unsupported stack format {version!r}; this build reads "
            f"{FORMAT_VERSION}")

    config = None
    if "config" in payload:
        config = AirFingerConfig(**payload["config"])

    detector = None
    if "detector" in payload:
        block = payload["detector"]
        detector = DetectAimedRecognizer(
            extractor=_extractor_restore(block["extractor"]))
        if block.get("selected_families"):
            from repro.features.selection import FeatureSelector
            selector = FeatureSelector(
                top_k_families=len(block["selected_families"]))
            selector.selected_families_ = tuple(block["selected_families"])
            keep = set(block["selected_families"])
            import numpy as np
            selector.column_mask_ = np.array(
                [fam in keep for fam in detector.extractor.families])
            detector.selector = selector
        detector.model_ = deserialize_model(block["model"])
        detector.classes_ = detector.model_.classes_

    inter = None
    if "interference_filter" in payload:
        block = payload["interference_filter"]
        inter = InterferenceFilter(
            extractor=_extractor_restore(block["extractor"]))
        inter.model_ = deserialize_model(block["model"])

    engine = AirFinger(
        config=config or AirFingerConfig(),
        detector=detector,
        interference_filter=inter)
    return {"detector": detector, "interference_filter": inter,
            "config": config, "engine": engine}
