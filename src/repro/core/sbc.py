"""Square Based Calculation (SBC) — Section IV-B1 of the paper.

A sliding window of size ``w`` scans the real-time RSS; the mean of the
current window is subtracted from the mean of the previous window and the
difference is squared::

    ΔRSS²[i] = ( mean(x[i-w+1 .. i]) - mean(x[i-2w+1 .. i-w]) )²

The differencing removes the static offset ``N_static`` exactly and
attenuates slow dynamic noise, while squaring relatively enhances the large
gesture-driven excursions ``S_ges`` over the small residual noise — and
makes the output sign-free, which is what the Otsu-style threshold expects.
The whole transform is O(n) via prefix sums.
"""

from __future__ import annotations

from collections import deque

import numpy as np

__all__ = ["sbc_transform", "StreamingSbc", "StreamingMovingAverage", "prefilter"]

# Exactness grid for the block-mode fast path: values that are integer
# multiples of 2^-20 with magnitude <= 2^12 have all their running sums
# (up to 2^20 terms) exactly representable in float64, so *any* summation
# order — including cumsum — reproduces the streaming carry bit-for-bit.
_GRID_SCALE = float(1 << 20)
_GRID_MAX_ABS = float(1 << 12)
_GRID_MAX_TERMS = 1 << 20


def _on_exact_grid(x: np.ndarray) -> bool:
    """True when every value of *x* sits on the exactly-summable grid."""
    if x.size == 0:
        return True
    if x.size > _GRID_MAX_TERMS or not np.all(np.isfinite(x)):
        return False
    if np.max(np.abs(x)) > _GRID_MAX_ABS:
        return False
    scaled = x * _GRID_SCALE
    return bool(np.all(scaled == np.rint(scaled)))


def prefilter(signal: np.ndarray, window: int) -> np.ndarray:
    """Causal moving-average smoothing applied to raw RSS before SBC.

    The hardware pendant is the analog low-pass at the amplifier output;
    micro gestures occupy only a few hertz, so a short average costs no
    gesture bandwidth while suppressing sample-level converter noise.
    Multi-channel ``(T, C)`` inputs are filtered per channel.
    """
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    x = np.asarray(signal, dtype=np.float64)
    if window == 1 or len(x) == 0:
        return x.copy()
    squeeze = x.ndim == 1
    if squeeze:
        x = x[:, None]
    n = len(x)
    s0 = np.concatenate([np.zeros((1, x.shape[1])), np.cumsum(x, axis=0)])
    idx_hi = np.arange(1, n + 1)
    idx_lo = np.maximum(idx_hi - window, 0)
    out = (s0[idx_hi] - s0[idx_lo]) / (idx_hi - idx_lo)[:, None]
    return out[:, 0] if squeeze else out


class StreamingMovingAverage:
    """O(1)-per-sample causal moving average (the streaming prefilter)."""

    def __init__(self, window: int) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.window = window
        self._buffer: deque[float] = deque(maxlen=window)
        self._sum = 0.0

    def push(self, value: float) -> float:
        """Ingest one sample; returns the mean of the last ``window`` samples."""
        value = float(value)
        if len(self._buffer) == self.window:
            self._sum -= self._buffer[0]
        self._buffer.append(value)
        self._sum += value
        return self._sum / len(self._buffer)

    def push_block(self, values: np.ndarray) -> np.ndarray:
        """Ingest N samples at once; bit-identical to N :meth:`push` calls.

        When every involved sample (buffered and incoming) lies on the
        exactly-summable grid (integer-ish ADC codes, half-count medians),
        the window sums are computed via a prefix sum — every partial sum
        is exactly representable, so the result matches the streaming
        carry recurrence bit-for-bit.  Otherwise a tight scalar loop
        replays the exact per-push operation order.
        """
        x = np.asarray(values, dtype=np.float64).ravel()
        n = x.size
        if n == 0:
            return np.empty(0, dtype=np.float64)
        w = self.window
        buf = self._buffer
        carried = np.fromiter(buf, dtype=np.float64, count=len(buf))
        # The carry may hold residue from earlier off-grid samples (e.g.
        # gap interpolation) even after those samples left the buffer.
        exact = (_on_exact_grid(carried) and _on_exact_grid(x)
                 and self._sum == float(np.sum(carried)))
        if exact:
            seq = np.concatenate([carried, x])
            prefix = np.concatenate([[0.0], np.cumsum(seq)])
            hi = np.arange(len(carried) + 1, len(seq) + 1)
            lo = np.maximum(hi - w, 0)
            out = (prefix[hi] - prefix[lo]) / (hi - lo)
            buf.extend(x.tolist())
            self._sum = float(np.sum(np.fromiter(buf, dtype=np.float64,
                                                 count=len(buf))))
            return out
        out = np.empty(n, dtype=np.float64)
        s = self._sum
        append = buf.append
        for i, value in enumerate(x.tolist()):
            if len(buf) == w:
                s -= buf[0]
            append(value)
            s += value
            out[i] = s / len(buf)
        self._sum = s
        return out

    def reset(self) -> None:
        """Forget buffered samples."""
        self._buffer.clear()
        self._sum = 0.0


def sbc_transform(signal: np.ndarray, window: int = 1) -> np.ndarray:
    """Offline SBC: ΔRSS² of *signal* (same length; warm-up samples are 0).

    Parameters
    ----------
    signal:
        Raw RSS readings ``(T,)`` or multi-channel ``(T, C)`` (each channel
        is transformed independently).
    window:
        ``w`` in samples; at 100 Hz the paper's 10 ms is one sample, making
        SBC the squared first difference.
    """
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    x = np.asarray(signal, dtype=np.float64)
    squeeze = x.ndim == 1
    if squeeze:
        x = x[:, None]
    n = len(x)
    out = np.zeros_like(x)
    if n >= 2 * window:
        # S0[k] = sum of x[0 .. k-1]; window sum ending at i is S0[i+1]-S0[i+1-w]
        s0 = np.concatenate([np.zeros((1, x.shape[1])), np.cumsum(x, axis=0)])
        w = window
        cur = s0[2 * w: n + 1] - s0[w: n - w + 1]
        prev = s0[w: n - w + 1] - s0[0: n - 2 * w + 1]
        delta = (cur - prev) / w
        out[2 * w - 1:] = delta * delta
    return out[:, 0] if squeeze else out


class StreamingSbc:
    """On-line SBC over one channel: push a sample, get ΔRSS² back.

    Keeps two running window sums; each :meth:`push` is O(1), matching the
    O(n) complexity the paper claims for the full stream.
    """

    def __init__(self, window: int = 1) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.window = window
        self._buffer: deque[float] = deque(maxlen=2 * window)
        self._count = 0

    def push(self, value: float) -> float:
        """Ingest one RSS sample; returns ΔRSS² (0.0 during warm-up)."""
        value = float(value)
        self._buffer.append(value)
        self._count += 1
        if len(self._buffer) < 2 * self.window:
            return 0.0
        buf = self._buffer
        prev_sum = sum(list(buf)[: self.window])
        cur_sum = sum(list(buf)[self.window:])
        delta = (cur_sum - prev_sum) / self.window
        return delta * delta

    def push_many(self, values: np.ndarray) -> np.ndarray:
        """Ingest a batch, returning one ΔRSS² per input sample."""
        return self.push_block(values)

    def push_block(self, values: np.ndarray) -> np.ndarray:
        """Ingest N samples at once; bit-identical to N :meth:`push` calls.

        Window sums are built by strided accumulation in the same
        left-to-right order as the scalar ``sum()`` over the buffer, so
        every elementwise rounding step matches the streaming path.
        """
        x = np.asarray(values, dtype=np.float64).ravel()
        n = x.size
        if n == 0:
            return np.empty(0, dtype=np.float64)
        w = self.window
        buf = self._buffer
        carried = np.fromiter(buf, dtype=np.float64, count=len(buf))
        seq = np.concatenate([carried, x])
        out = np.zeros(n, dtype=np.float64)
        first_valid = max(0, 2 * w - len(carried) - 1)
        if first_valid < n:
            m = n - first_valid
            # Window start for output i: seq[L0+i+1-2w : ...] (buffer full).
            p0 = len(carried) + first_valid + 1 - 2 * w
            prev_sum = np.zeros(m, dtype=np.float64)
            cur_sum = np.zeros(m, dtype=np.float64)
            for k in range(w):
                prev_sum += seq[p0 + k: p0 + k + m]
                cur_sum += seq[p0 + w + k: p0 + w + k + m]
            delta = (cur_sum - prev_sum) / w
            out[first_valid:] = delta * delta
        buf.extend(x.tolist())
        self._count += n
        return out

    def reset(self) -> None:
        """Forget all buffered samples."""
        self._buffer.clear()
        self._count = 0

    @property
    def samples_seen(self) -> int:
        """Total samples pushed since construction or reset."""
        return self._count
