"""Detect-aimed gesture recognition — Section IV-C.

A Random Forest over the selected Table-I feature families, extracted from
the SBC-processed (ΔRSS²) signal of each segmented gesture.  The classifier
is swappable so the Fig. 9 comparison (RF vs LR vs DT vs BNB) reuses the
same feature machinery.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.features.extractor import FeatureExtractor
from repro.features.selection import FeatureSelector
from repro.ml.forest import RandomForestClassifier

__all__ = ["DetectAimedRecognizer"]


def _default_model() -> RandomForestClassifier:
    return RandomForestClassifier(n_estimators=60, random_state=7)


@dataclass
class DetectAimedRecognizer:
    """Feature extraction + classification for detect-aimed gestures.

    Parameters
    ----------
    extractor:
        Feature extractor applied to each ΔRSS² segment; defaults to the
        full registry (all 25 Table-I families).
    model_factory:
        Builds the classifier; defaults to the paper's Random Forest.
    selector:
        Optional importance-based selector fitted during :meth:`fit`; when
        given, the model trains on the selected columns only.
    """

    extractor: FeatureExtractor = field(default_factory=FeatureExtractor.full)
    model_factory: Callable[[], object] = _default_model
    selector: FeatureSelector | None = None

    model_: object = field(init=False, repr=False, default=None)
    classes_: np.ndarray = field(init=False, repr=False, default=None)

    # ------------------------------------------------------------------
    def _features(self, signals: Sequence[np.ndarray]) -> np.ndarray:
        X = self.extractor.extract_many(signals)
        if self.selector is not None and self.selector.column_mask_ is not None:
            X = self.selector.transform(X)
        return X

    def fit(self, signals: Sequence[np.ndarray],
            labels: Sequence[str]) -> "DetectAimedRecognizer":
        """Train on segmented ΔRSS² signals with gesture labels."""
        if len(signals) != len(labels):
            raise ValueError(
                f"{len(signals)} signals but {len(labels)} labels")
        if len(signals) == 0:
            raise ValueError("cannot fit on zero signals")
        X = self.extractor.extract_many(signals)
        y = np.asarray(labels)
        if self.selector is not None:
            X = self.selector.fit_transform(X, y, self.extractor)
        self.model_ = self.model_factory()
        self.model_.fit(X, y)
        self.classes_ = self.model_.classes_
        return self

    def fit_features(self, X: np.ndarray,
                     labels: Sequence[str]) -> "DetectAimedRecognizer":
        """Train directly on a precomputed full-registry feature matrix."""
        y = np.asarray(labels)
        if self.selector is not None:
            X = self.selector.fit_transform(np.asarray(X), y, self.extractor)
        self.model_ = self.model_factory()
        self.model_.fit(X, y)
        self.classes_ = self.model_.classes_
        return self

    def _check_fitted(self) -> None:
        if self.model_ is None:
            raise RuntimeError("recognizer is not fitted; call fit() first")

    # ------------------------------------------------------------------
    def predict(self, signals: Sequence[np.ndarray]) -> np.ndarray:
        """Predicted gesture labels for a batch of ΔRSS² segments."""
        self._check_fitted()
        return self.model_.predict(self._features(signals))

    def predict_features(self, X: np.ndarray) -> np.ndarray:
        """Predicted labels for a precomputed full-registry feature matrix."""
        self._check_fitted()
        X = np.asarray(X)
        if self.selector is not None and self.selector.column_mask_ is not None:
            X = self.selector.transform(X)
        return self.model_.predict(X)

    def predict_one(self, signal: np.ndarray) -> tuple[str, float]:
        """``(label, confidence)`` for one segment."""
        self._check_fitted()
        X = self._features([signal])
        proba = self.model_.predict_proba(X)[0]
        k = int(np.argmax(proba))
        return str(self.model_.classes_[k]), float(proba[k])

    def score(self, signals: Sequence[np.ndarray],
              labels: Sequence[str]) -> float:
        """Mean accuracy on labelled segments."""
        return float(np.mean(self.predict(signals) == np.asarray(labels)))
