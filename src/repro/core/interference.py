"""Removing unintentional-motion interference — Section IV-F.

Unintentional finger movements (scratching, extending, repositioning) cause
RSS excursions that segment exactly like gestures.  A binary Random Forest
over the nine **bold** Table-I feature families separates gestures from
non-gestures; because those nine features are a subset of the 25 extracted
for recognition anyway, the filter adds no extra extraction cost in the
pipeline (features are computed once and reused).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.features.extractor import FeatureExtractor
from repro.ml.forest import RandomForestClassifier

__all__ = ["InterferenceFilter", "GESTURE_LABEL", "NON_GESTURE_LABEL"]

GESTURE_LABEL = "gesture"
NON_GESTURE_LABEL = "non_gesture"


def _default_model() -> RandomForestClassifier:
    return RandomForestClassifier(n_estimators=40, random_state=11)


@dataclass
class InterferenceFilter:
    """Binary gesture / non-gesture classifier on the bold-9 features.

    Parameters
    ----------
    extractor:
        Defaults to the bold subset of the registry.
    model_factory:
        Builds the classifier (RF by default; LR/DT/BNB for the paper's
        comparison).
    """

    extractor: FeatureExtractor = field(default_factory=FeatureExtractor.bold)
    model_factory: Callable[[], object] = _default_model

    model_: object = field(init=False, repr=False, default=None)

    def fit(self, signals: Sequence[np.ndarray],
            is_gesture: Sequence[bool]) -> "InterferenceFilter":
        """Train on ΔRSS² segments labelled gesture (True) / non-gesture."""
        if len(signals) != len(is_gesture):
            raise ValueError(
                f"{len(signals)} signals but {len(is_gesture)} labels")
        if len(signals) == 0:
            raise ValueError("cannot fit on zero signals")
        flags = np.asarray(list(is_gesture), dtype=bool)
        if flags.all() or not flags.any():
            raise ValueError("training data must contain both classes")
        X = self.extractor.extract_many(signals)
        y = np.where(flags, GESTURE_LABEL, NON_GESTURE_LABEL)
        self.model_ = self.model_factory()
        self.model_.fit(X, y)
        return self

    def _check_fitted(self) -> None:
        if self.model_ is None:
            raise RuntimeError("filter is not fitted; call fit() first")

    def predict_is_gesture(self, signals: Sequence[np.ndarray]) -> np.ndarray:
        """Boolean array: True where the segment is an intentional gesture."""
        self._check_fitted()
        X = self.extractor.extract_many(signals)
        return self.model_.predict(X) == GESTURE_LABEL

    def gesture_probability(self, signal: np.ndarray) -> float:
        """P(gesture) for one segment."""
        self._check_fitted()
        X = self.extractor.extract_many([signal])
        proba = self.model_.predict_proba(X)[0]
        classes = list(self.model_.classes_)
        return float(proba[classes.index(GESTURE_LABEL)])

    def score(self, signals: Sequence[np.ndarray],
              is_gesture: Sequence[bool]) -> float:
        """Binary accuracy on labelled segments."""
        pred = self.predict_is_gesture(signals)
        return float(np.mean(pred == np.asarray(list(is_gesture), dtype=bool)))
