"""User-defined custom gestures — the paper's Section VI extension.

"It is an interesting option to enable user-self-defined gestures.  Users
might be willing to define customized gestures on their own.  Like
personalized icons, customized gestures can provide more space for users
to interact with their smart devices and somehow preserve both personality
and privacy."

The classifier route needs dozens of repetitions per class; a personal
gesture should enrol from a handful.  This module implements few-shot
enrolment with DTW template matching: each enrolment stores length- and
amplitude-normalized exemplars of the processed ΔRSS² signal, recognition
returns the nearest enrolled gesture, and an open-set threshold (fitted
from the enrolment data itself) rejects inputs that match nothing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.ml.dtw import dtw_distance

__all__ = ["GestureTemplate", "TemplateRecognizer"]


@dataclass
class GestureTemplate:
    """One enrolled custom gesture.

    Parameters
    ----------
    name:
        User-chosen gesture name.
    exemplars:
        Normalized enrolment signals.
    rejection_distance:
        Matches farther than this are treated as "no such gesture".
    """

    name: str
    exemplars: list[np.ndarray]
    rejection_distance: float

    def distance_to(self, signal: np.ndarray,
                    band_fraction: float = 0.15) -> float:
        """Distance of *signal* to the closest exemplar."""
        return min(dtw_distance(signal, ex, band_fraction)
                   for ex in self.exemplars)


@dataclass
class TemplateRecognizer:
    """Few-shot, open-set recognition of user-defined gestures.

    Usage::

        rec = TemplateRecognizer()
        rec.enroll("my-zigzag", [sig1, sig2, sig3])
        rec.enroll("my-tap-tap", [sig4, sig5, sig6])
        name, distance = rec.recognize(new_signal)   # name may be None

    Parameters
    ----------
    band_fraction:
        DTW warping band.
    max_length:
        Signals are resampled to at most this many points before matching.
    rejection_margin:
        The per-gesture open-set threshold is ``margin`` times the largest
        intra-enrolment distance — larger margins are more permissive.
    compress:
        Apply ``sqrt(|x|)`` before matching.  ΔRSS² signals span decades,
        and DTW on the raw values is dominated by the tallest spike;
        compression makes the whole waveform shape count, which is what
        tightens open-set rejection.
    """

    band_fraction: float = 0.15
    max_length: int = 128
    rejection_margin: float = 1.3
    compress: bool = True

    templates: dict[str, GestureTemplate] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not 0.0 < self.band_fraction <= 1.0:
            raise ValueError("band_fraction must be in (0, 1]")
        if self.max_length < 8:
            raise ValueError("max_length must be >= 8")
        if self.rejection_margin <= 0:
            raise ValueError("rejection_margin must be positive")

    # ------------------------------------------------------------------
    def _condense(self, signal: np.ndarray) -> np.ndarray:
        signal = np.asarray(signal, dtype=np.float64).ravel()
        if signal.size < 4:
            raise ValueError("signal too short to enrol or match")
        if self.compress:
            signal = np.sqrt(np.abs(signal))
        if len(signal) <= self.max_length:
            return signal
        grid = np.linspace(0, len(signal) - 1, self.max_length)
        return np.interp(grid, np.arange(len(signal)), signal)

    def enroll(self, name: str, signals) -> GestureTemplate:
        """Register a custom gesture from a handful of repetitions.

        The open-set rejection threshold is derived from the enrolment's
        own spread: anything much farther from the exemplars than they are
        from each other is not this gesture.
        """
        if not name:
            raise ValueError("gesture name must be non-empty")
        if name in self.templates:
            raise ValueError(f"gesture {name!r} is already enrolled")
        if len(signals) < 2:
            raise ValueError("enrolment needs at least 2 repetitions")
        exemplars = [self._condense(s) for s in signals]
        intra = [
            dtw_distance(exemplars[i], exemplars[j], self.band_fraction)
            for i in range(len(exemplars))
            for j in range(i + 1, len(exemplars))]
        spread = max(max(intra), 1e-6)
        template = GestureTemplate(
            name=name,
            exemplars=exemplars,
            rejection_distance=self.rejection_margin * spread)
        self.templates[name] = template
        return template

    def forget(self, name: str) -> None:
        """Remove an enrolled gesture."""
        if name not in self.templates:
            raise KeyError(f"no enrolled gesture named {name!r}")
        del self.templates[name]

    @property
    def enrolled(self) -> tuple[str, ...]:
        """Names of all enrolled gestures."""
        return tuple(self.templates)

    # ------------------------------------------------------------------
    def recognize(self, signal) -> tuple[str | None, float]:
        """``(name, distance)`` of the best match, or ``(None, distance)``.

        ``None`` means the input matched no enrolled gesture closely
        enough (open-set rejection).
        """
        if not self.templates:
            raise RuntimeError("no gestures enrolled")
        query = self._condense(signal)
        best_name: str | None = None
        best_distance = float("inf")
        for template in self.templates.values():
            d = template.distance_to(query, self.band_fraction)
            if d < best_distance:
                best_name, best_distance = template.name, d
        assert best_name is not None
        if best_distance > self.templates[best_name].rejection_distance:
            return None, best_distance
        return best_name, best_distance

    def score(self, signals, labels) -> float:
        """Closed-set accuracy over labelled signals."""
        if len(signals) != len(labels):
            raise ValueError(f"{len(signals)} signals but {len(labels)} labels")
        hits = 0
        for signal, label in zip(signals, labels):
            name, _ = self.recognize(signal)
            hits += name == label
        return hits / len(signals)
