"""Configuration of the airFinger stack — the paper's Section V-A settings."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["AirFingerConfig"]


@dataclass(frozen=True)
class AirFingerConfig:
    """All tunables of the recognition stack, with paper defaults.

    Parameters
    ----------
    sample_rate_hz:
        ADC sampling rate (100 Hz in the prototype).
    prefilter_window_s:
        Moving-average smoothing applied to the RSS before SBC — the
        digital stand-in for the analog low-pass at the amplifier output.
        Micro gestures live well below 10 Hz, so 50 ms of smoothing costs
        no gesture bandwidth while suppressing sample-level noise.
    sbc_window_s:
        SBC sliding-window size ``w`` (10 ms).
    envelope_window_s:
        Moving-average applied to ΔRSS² before thresholding, turning the
        spiky squared-derivative into an energy envelope.  Periodic
        gestures pass through zero-derivative instants (ΔRSS² dips to
        zero); the envelope bridges those dips so one gesture stays one
        segment.
    cluster_gap_s:
        ``t_e``: segments separated by less than this are clustered into a
        single gesture (100 ms).
    dispatch_threshold_s:
        ``I_g``: if per-photodiode onsets spread less than this, the gesture
        is detect-aimed; otherwise track-aimed (30 ms).
    initial_threshold:
        ``I'_seg``: the segmentation threshold before enough data has
        accumulated for Otsu calibration (in ΔRSS² units).
    min_segment_s:
        Segments shorter than this are discarded as glitches.
    max_segment_s:
        Safety cap on a single segment's duration.
    default_scroll_speed_mm_s:
        ``v'``: the experience velocity used when Δt is incalculable
        (80 mm/s, Section V-G).
    otsu_bins:
        Histogram resolution of the Otsu threshold search.
    otsu_refresh_samples:
        Recompute the dynamic threshold every this many samples.
    history_s:
        Length of the rolling ΔRSS² history used for threshold calibration.
    threshold_floor_factor:
        The dynamic threshold never sinks below this multiple of the
        history's 60th percentile — a guard against Otsu splitting the
        noise distribution when no gesture is in view.
    max_gap_s:
        Longest run of missing frames the pipeline bridges by linear
        interpolation; a longer gap flushes the segmenter and emits a
        :class:`~repro.core.events.StreamGap` instead.
    guard_window_s:
        Length of the rolling per-channel window the streaming health
        guard (:class:`~repro.core.calibration.ChannelGuard`) inspects.
    guard_check_every_s:
        Health-verdict cadence of the streaming guard.
    guard_recovery_checks:
        Consecutive healthy verdicts required before a masked channel is
        restored (recovery hysteresis — an intermittent channel must prove
        itself before it re-enters the fusion).
    """

    sample_rate_hz: float = 100.0
    prefilter_window_s: float = 0.05
    sbc_window_s: float = 0.010
    envelope_window_s: float = 0.15
    cluster_gap_s: float = 0.100
    dispatch_threshold_s: float = 0.030
    initial_threshold: float = 10.0
    min_segment_s: float = 0.22
    max_segment_s: float = 5.0
    default_scroll_speed_mm_s: float = 80.0
    otsu_bins: int = 128
    otsu_refresh_samples: int = 25
    history_s: float = 8.0
    threshold_floor_factor: float = 12.0
    max_gap_s: float = 0.10
    guard_window_s: float = 1.0
    guard_check_every_s: float = 0.25
    guard_recovery_checks: int = 3

    def __post_init__(self) -> None:
        if self.sample_rate_hz <= 0:
            raise ValueError("sample_rate_hz must be positive")
        if self.prefilter_window_s < 0:
            raise ValueError("prefilter_window_s must be non-negative")
        if self.envelope_window_s < 0:
            raise ValueError("envelope_window_s must be non-negative")
        if self.sbc_window_s <= 0:
            raise ValueError("sbc_window_s must be positive")
        if self.cluster_gap_s < 0:
            raise ValueError("cluster_gap_s must be non-negative")
        if self.dispatch_threshold_s <= 0:
            raise ValueError("dispatch_threshold_s must be positive")
        if self.initial_threshold <= 0:
            raise ValueError("initial_threshold must be positive")
        if not 0 < self.min_segment_s < self.max_segment_s:
            raise ValueError(
                "min_segment_s must be positive and below max_segment_s")
        if self.default_scroll_speed_mm_s <= 0:
            raise ValueError("default_scroll_speed_mm_s must be positive")
        if self.otsu_bins < 8:
            raise ValueError("otsu_bins must be >= 8")
        if self.otsu_refresh_samples < 1:
            raise ValueError("otsu_refresh_samples must be >= 1")
        if self.history_s <= 0:
            raise ValueError("history_s must be positive")
        if self.threshold_floor_factor <= 0:
            raise ValueError("threshold_floor_factor must be positive")
        if self.max_gap_s < 0:
            raise ValueError("max_gap_s must be non-negative")
        if self.guard_window_s <= 0:
            raise ValueError("guard_window_s must be positive")
        if self.guard_check_every_s <= 0:
            raise ValueError("guard_check_every_s must be positive")
        if self.guard_recovery_checks < 1:
            raise ValueError("guard_recovery_checks must be >= 1")

    @property
    def prefilter_samples(self) -> int:
        """Prefilter length in samples (at least 1 == no filtering)."""
        return max(1, int(round(self.prefilter_window_s * self.sample_rate_hz)))

    @property
    def sbc_window_samples(self) -> int:
        """``w`` in samples (at least 1)."""
        return max(1, int(round(self.sbc_window_s * self.sample_rate_hz)))

    @property
    def envelope_samples(self) -> int:
        """Envelope window in samples (at least 1)."""
        return max(1, int(round(self.envelope_window_s * self.sample_rate_hz)))

    @property
    def cluster_gap_samples(self) -> int:
        """``t_e`` in samples."""
        return int(round(self.cluster_gap_s * self.sample_rate_hz))

    @property
    def min_segment_samples(self) -> int:
        """Minimum segment length in samples."""
        return max(2, int(round(self.min_segment_s * self.sample_rate_hz)))

    @property
    def max_segment_samples(self) -> int:
        """Maximum segment length in samples."""
        return int(round(self.max_segment_s * self.sample_rate_hz))

    @property
    def history_samples(self) -> int:
        """Rolling calibration-history length in samples."""
        return int(round(self.history_s * self.sample_rate_hz))

    @property
    def max_gap_samples(self) -> int:
        """Longest interpolatable gap in samples."""
        return int(round(self.max_gap_s * self.sample_rate_hz))

    @property
    def guard_window_samples(self) -> int:
        """Health-guard window length in samples (at least 8)."""
        return max(8, int(round(self.guard_window_s * self.sample_rate_hz)))

    @property
    def guard_check_every_samples(self) -> int:
        """Health-verdict cadence in samples (at least 1)."""
        return max(1, int(round(self.guard_check_every_s * self.sample_rate_hz)))
