"""Dynamic Threshold (DT) gesture segmentation — Section IV-B2.

The segmenter thresholds the ΔRSS² stream into gesture (G) and non-gesture
(NG) classes.  A fixed threshold cannot work because the ΔRSS² range shifts
with finger distance, so the threshold ``I_seg`` is recomputed on-line by
maximizing the inter-class variance ``ω0·ω1·(μ0-μ1)²`` over accumulated
readings — Otsu's method (the paper cites the background/foreground
segmentation analogy of computer vision).

Start/end detection follows the paper exactly: a sample exceeding ``I_seg``
opens a segment, a sample at or below it closes one, and segments separated
by less than ``t_e`` are clustered into a single gesture.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.core.config import AirFingerConfig
from repro.utils import fast_quantile

__all__ = ["otsu_threshold", "Segment", "BlockSegmentation",
           "DynamicThresholdSegmenter"]


def otsu_threshold(values: np.ndarray,
                   n_bins: int = 128,
                   initial: float = 10.0) -> float:
    """The threshold maximizing inter-class variance over *values*.

    Parameters
    ----------
    values:
        Accumulated ΔRSS² readings.
    n_bins:
        Histogram resolution of the candidate-threshold search.
    initial:
        Returned when *values* is too small or degenerate for calibration
        (the paper's initial threshold ``I'_seg``).

    Notes
    -----
    ΔRSS² is heavy-tailed over several decades (quiet floor vs gesture
    excursions), so the entire Otsu computation — histogram, class weights,
    class means, inter-class variance — runs in **log space**.  In linear
    space the enormous gesture values dominate the class means and push the
    split far into the gesture mode; in log space the two modes are
    comparably sized and the maximizer lands in the valley between them.
    """
    values = np.asarray(values, dtype=np.float64).ravel()
    values = values[np.isfinite(values) & (values >= 0.0)]
    if values.size < 16:
        return float(initial)
    positive = values[values > 0.0]
    if positive.size < 16:
        return float(initial)
    log_vals = np.log(positive)
    lo, hi = float(log_vals.min()), float(log_vals.max())
    if hi - lo < 1e-9:
        return float(initial)
    # np.linspace(lo, hi, n_bins + 1) spelled out (same bits, less overhead):
    # arange * step, += start, endpoint forced to stop
    edges = np.arange(0, n_bins + 1, dtype=np.float64)
    edges *= (hi - lo) / n_bins
    edges += lo
    edges[-1] = hi
    # np.histogram(log_vals, bins=edges) without its sort/chunk machinery.
    # Every value lies in [lo, hi] by construction, so the bin index is just
    # the rightmost edge <= value, with the top edge folded into the last
    # bin — np.histogram's half-open-except-last convention.
    idx = np.searchsorted(edges, log_vals, side="right") - 1
    np.minimum(idx, n_bins - 1, out=idx)
    hist = np.bincount(idx, minlength=n_bins)
    total = hist.sum()
    if total == 0:
        return float(initial)
    centers = 0.5 * (edges[:-1] + edges[1:])  # log-space bin centres
    w_cum = np.cumsum(hist)
    mass_cum = np.cumsum(hist * centers)
    mass_total = mass_cum[-1]
    # candidate threshold after each bin: class NG = bins <= k, G = bins > k
    w1 = w_cum[:-1] / total                       # NG weight
    w0 = 1.0 - w1                                 # G weight
    with np.errstate(divide="ignore", invalid="ignore"):
        mu1 = mass_cum[:-1] / np.maximum(w_cum[:-1], 1)
        mu0 = (mass_total - mass_cum[:-1]) / np.maximum(total - w_cum[:-1], 1)
    score = w0 * w1 * (mu0 - mu1) ** 2
    score[~np.isfinite(score)] = -1.0
    k = int(np.argmax(score))
    if score[k] <= 0:
        return float(initial)
    return float(np.exp(edges[k + 1]))


def _otsu_batch(values: np.ndarray, n_bins: int,
                initial: float,
                logs: np.ndarray | None = None) -> np.ndarray | None:
    """Row-wise :func:`otsu_threshold` over ``(R, W)`` finite samples.

    Every elementwise expression mirrors the scalar function, and the
    reductions (counts, min/max, histogram, argmax tie-breaking) are
    order-independent, so each returned threshold carries the exact bits
    of ``otsu_threshold(values[r])``.  Rows may be arbitrary permutations
    of their windows (e.g. partition leftovers).  Callers must guarantee
    finite non-negative inputs and ``W >= 16``; returns ``None`` if the
    histogram index search fails to settle (caller falls back to the
    scalar path).

    *logs*, when given, must be ``np.log`` of the positive elements of
    *values* (non-positive slots may hold anything — they are replaced
    before use).  The log is elementwise, so precomputing it once per
    history sample and slicing windows out of it yields the same bits as
    taking it per window — which matters because refresh windows overlap
    ``W / refresh_every``-fold.
    """
    n_rows, width = values.shape
    out = np.full(n_rows, float(initial))
    pos_mask = values > 0.0
    pos_count = np.count_nonzero(pos_mask, axis=1)
    valid = pos_count >= 16
    if not np.any(valid):
        return out
    # log-range per row: the log is weakly monotone, so the min positive /
    # max value map to the scalar code's log_vals.min()/.max() bits.
    # Invalid rows get a harmless [0, 1) range so the shared kernels below
    # stay warning-free; their output is overwritten with `initial`.
    min_pos = np.where(pos_mask, values, np.inf).min(axis=1)
    max_val = values.max(axis=1)
    lo = np.log(np.where(valid, min_pos, 1.0))
    hi = np.log(np.where(valid, max_val, np.e))
    valid &= (hi - lo) >= 1e-9
    lo = np.where(valid, lo, 0.0)
    hi = np.where(valid, hi, 1.0)
    step = (hi - lo) / n_bins
    # edges: same arithmetic as the scalar code's arange * step + lo
    edges = np.arange(0, n_bins + 1, dtype=np.float64) * step[:, None]
    edges += lo[:, None]
    edges[:, -1] = hi
    # bin index per element: arithmetic guess, then an exact fixed-point
    # correction against the edges — the stable point is the unique bin
    # with edges[j] <= x < edges[j+1] (top edge folded into the last bin),
    # i.e. precisely searchsorted(edges, x, 'right') - 1 with the clamp.
    use = pos_mask if valid.all() else pos_mask & valid[:, None]
    if logs is None:
        logs = np.log(np.where(use, values,
                               np.where(valid, min_pos, 1.0)[:, None]))
    elif not use.all():
        # unused slots must settle in the correction loop below: park them
        # on lo (their bin is discarded either way)
        logs = np.where(use, logs, lo[:, None])
    idx = ((logs - lo[:, None]) / step[:, None]).astype(np.int64)
    np.clip(idx, 0, n_bins - 1, out=idx)
    # Edge values are recomputed arithmetically (idx * step + lo, with the
    # top edge pinned to hi) instead of gathered from the edges matrix —
    # the identical multiply-then-add order means identical bits, and it
    # avoids two full-size fancy-gather passes per correction round.
    step_col = step[:, None]
    lo_col = lo[:, None]
    hi_col = hi[:, None]
    # full-matrix verify once; each element's fixed-point iteration is
    # independent of every other, so an element that does not move here is
    # settled for good and later rounds only touch the movers (normally a
    # handful of edge-straddling samples, not the whole matrix)
    idx_f = idx.astype(np.float64)
    at = idx_f * step_col
    at += lo_col
    nxt = (idx_f + 1.0) * step_col
    nxt += lo_col
    is_last = idx == n_bins - 1
    np.copyto(nxt, hi_col, where=is_last)
    dec = logs < at
    inc = (nxt <= logs) & ~dec & ~is_last
    if dec.any() or inc.any():
        idx -= dec
        idx += inc
        rows, cols = np.nonzero(dec | inc)
        logs_e = logs[rows, cols]
        step_e = step[rows]
        lo_e = lo[rows]
        hi_e = hi[rows]
        idx_e = idx[rows, cols]
        for _ in range(1 + n_bins):
            idx_ef = idx_e.astype(np.float64)
            at_e = idx_ef * step_e
            at_e += lo_e
            nxt_e = (idx_ef + 1.0) * step_e
            nxt_e += lo_e
            np.copyto(nxt_e, hi_e, where=idx_e == n_bins - 1)
            dec_e = logs_e < at_e
            inc_e = (nxt_e <= logs_e) & ~dec_e & (idx_e < n_bins - 1)
            if not dec_e.any() and not inc_e.any():
                break
            idx_e -= dec_e
            idx_e += inc_e
        else:
            return None
        idx[rows, cols] = idx_e
    # histogram per row: masked elements go to a discard bin per row
    # (`idx` is dead after this, so alias it when nothing is discarded)
    bins = idx if use is pos_mask and use.all() else np.where(use, idx, n_bins)
    bins += np.arange(n_rows)[:, None] * (n_bins + 1)
    hist = np.bincount(bins.ravel(), minlength=n_rows * (n_bins + 1))
    hist = hist.reshape(n_rows, n_bins + 1)[:, :n_bins]
    total = np.where(valid, pos_count, 1)
    centers = 0.5 * (edges[:, :-1] + edges[:, 1:])
    w_cum = np.cumsum(hist, axis=1)
    mass_cum = np.cumsum(hist * centers, axis=1)
    mass_total = mass_cum[:, -1:]
    w1 = w_cum[:, :-1] / total[:, None]
    w0 = 1.0 - w1
    mu1 = mass_cum[:, :-1] / np.maximum(w_cum[:, :-1], 1)
    mu0 = (mass_total - mass_cum[:, :-1]) / np.maximum(
        total[:, None] - w_cum[:, :-1], 1)
    score = w0 * w1 * (mu0 - mu1) ** 2
    k = np.argmax(score, axis=1)
    rows = np.arange(n_rows)
    best = score[rows, k]
    thr = np.exp(edges[rows, k + 1])
    return np.where(valid & (best > 0), thr, float(initial))


@dataclass(frozen=True)
class Segment:
    """A detected gesture extent, in sample indices ``[start, end)``."""

    start: int
    end: int

    def __post_init__(self) -> None:
        if not 0 <= self.start < self.end:
            raise ValueError(f"invalid segment [{self.start}, {self.end})")

    @property
    def length(self) -> int:
        """Number of samples covered."""
        return self.end - self.start

    def gap_to(self, other: "Segment") -> int:
        """Samples between this segment's end and *other*'s start (>= 0)."""
        if other.start < self.end:
            return 0
        return other.start - self.end

    def merged(self, other: "Segment") -> "Segment":
        """The union-extent of two segments."""
        return Segment(min(self.start, other.start), max(self.end, other.end))


@dataclass(frozen=True)
class BlockSegmentation:
    """Per-frame segmentation outcome of one :meth:`push_block` call.

    ``finished`` lists ``(offset, segment)`` pairs — the block-relative
    offsets at which :meth:`DynamicThresholdSegmenter.push` would have
    returned a segment.  ``open_start`` (a list) and ``thresholds`` (a
    float64 ndarray) record, for every offset, the segmenter's
    ``open_start``/``threshold`` state as observed *after* that sample
    was pushed, which is exactly what the pipeline's live-update path
    reads between scalar pushes.
    ``open_offsets`` lists, in order, the offsets whose ``open_start`` is
    not None, so consumers need not scan the whole block for them.
    """

    finished: list
    open_start: list
    thresholds: "np.ndarray"
    open_offsets: list


class DynamicThresholdSegmenter:
    """On-line gesture segmentation over a ΔRSS² stream.

    Usage (streaming)::

        seg = DynamicThresholdSegmenter(config)
        for i, value in enumerate(delta_sq_stream):
            finished = seg.push(value)
            if finished is not None:
                ...  # a gesture spanning finished.start..finished.end

    or offline via :meth:`segment`.
    """

    def __init__(self, config: AirFingerConfig | None = None) -> None:
        self.config = config or AirFingerConfig()
        # threshold history lives in a preallocated ring: the refresh math
        # (quantile, Otsu) is order-independent, so the rotated layout is
        # observationally identical to the old chronological deque while
        # skipping a per-refresh np.fromiter copy
        self._hist_buf = np.empty(self.config.history_samples,
                                  dtype=np.float64)
        self._hist_len = 0
        self._hist_pos = 0
        self._threshold = float(self.config.initial_threshold)
        self._since_refresh = 0
        self._index = 0
        self._open_start: int | None = None
        self._pending: Segment | None = None
        self._gap = 0
        self._env_buffer: deque[float] = deque(maxlen=self.config.envelope_samples)
        self._env_sum = 0.0
        # causal envelope delays the apparent onset by ~half the window
        self._backdate = self.config.envelope_samples // 2

    # ------------------------------------------------------------------
    @property
    def threshold(self) -> float:
        """The current dynamic threshold ``I_seg``."""
        return self._threshold

    @property
    def samples_seen(self) -> int:
        """Total ΔRSS² samples pushed."""
        return self._index

    @property
    def open_start(self) -> int | None:
        """Start index of the currently open segment, or None when closed.

        Read-only streaming state for consumers (e.g. the live-update path
        of :class:`~repro.core.pipeline.AirFinger`) that need to know the
        in-progress gesture extent without reaching into internals.
        """
        return self._open_start

    def _refresh_threshold(self) -> None:
        new = self._refresh_from(self._hist_buf[:self._hist_len])
        if new is not None:
            self._threshold = new

    def _refresh_from(self, history: np.ndarray) -> float | None:
        """The refreshed threshold for *history*, or None to keep the old one.

        The refresh math (quantile, Otsu histogram) is order-independent,
        so *history* may arrive in any permutation of the window.
        """
        # Otsu needs both modes (noise and gesture) in view to be
        # meaningful; hold the initial threshold until a second of data has
        # accumulated.
        if history.size < self.config.sample_rate_hz:
            return None
        # The noise floor is estimated from the 25th percentile: even with a
        # heavy gesture duty cycle most history samples are quiet, so this
        # quantile tracks the noise mode and never creeps up with gestures.
        noise_level = fast_quantile(history, 0.25)
        floor = max(self.config.threshold_floor_factor * noise_level, 1e-9)
        otsu = otsu_threshold(history,
                              n_bins=self.config.otsu_bins,
                              initial=self.config.initial_threshold)
        if otsu > 100.0 * floor:
            # Otsu split inside the gesture mode (e.g. the history holds
            # mostly strong gestures); fall back to the noise-based floor.
            return floor
        return max(otsu, floor)

    def _refresh_batch(self, windows: np.ndarray,
                       logs: np.ndarray | None = None) -> np.ndarray | None:
        """Vectorized :meth:`_refresh_from` over full history windows.

        *windows* is ``(R, W)`` with ``W == history_samples`` (callers
        route partial windows through the scalar path); *logs*, when
        given, is the matching window view over the precomputed
        elementwise log of the history (see :func:`_otsu_batch`).
        Returns the ``(R,)`` refreshed thresholds, bit-identical to
        calling :meth:`_refresh_from` on each row, or ``None`` when a row
        needs the scalar fallback (non-finite values, degenerate
        binning).

        Each elementwise step reuses the exact scalar expressions, so
        per-element bits match; the reductions involved (order
        statistics, histogram counts, min/max) are order- and
        batch-independent, which is what makes one fused pass over all
        refresh points of a block legal.
        """
        if not np.all(np.isfinite(windows)):
            return None
        n_rows, width = windows.shape
        config = self.config
        # fast_quantile(history, 0.25) per row: partition at the two
        # bracketing order statistics, numpy's lesser/greater-gamma lerp
        virtual = 0.25 * (width - 1)
        lo_i = int(virtual)
        hi_i = min(lo_i + 1, width - 1)
        gamma = virtual - lo_i
        part = np.partition(windows, (lo_i, hi_i), axis=1)
        below = part[:, lo_i]
        above = part[:, hi_i]
        diff = above - below
        if gamma >= 0.5:
            noise = above - diff * (1.0 - gamma)
        else:
            noise = below + diff * gamma
        floor = np.maximum(config.threshold_floor_factor * noise, 1e-9)
        # with precomputed logs the values must stay window-ordered so the
        # elementwise log lines up; without, reuse the partition leftovers
        # (every reduction inside is order-independent either way)
        otsu = _otsu_batch(part if logs is None else windows,
                           config.otsu_bins,
                           config.initial_threshold, logs=logs)
        if otsu is None:
            return None
        return np.where(otsu > 100.0 * floor, floor,
                        np.maximum(otsu, floor))

    # ------------------------------------------------------------------
    def push(self, value: float) -> Segment | None:
        """Ingest one ΔRSS² sample; returns a finished gesture segment or None.

        A segment is only emitted once it has been closed for more than
        ``t_e`` samples (otherwise a following burst would have been
        clustered into it) and it passes the minimum-length filter.
        """
        raw = float(value)
        if len(self._env_buffer) == self._env_buffer.maxlen:
            self._env_sum -= self._env_buffer[0]
        self._env_buffer.append(raw)
        self._env_sum += raw
        value = self._env_sum / len(self._env_buffer)
        self._hist_buf[self._hist_pos] = value
        self._hist_pos += 1
        if self._hist_pos == self._hist_buf.shape[0]:
            self._hist_pos = 0
        if self._hist_len < self._hist_buf.shape[0]:
            self._hist_len += 1
        self._since_refresh += 1
        if self._since_refresh >= self.config.otsu_refresh_samples:
            self._refresh_threshold()
            self._since_refresh = 0

        i = self._index
        self._index += 1
        emitted: Segment | None = None

        above = value > self._threshold
        if above:
            if self._open_start is None:
                if self._pending is not None and self._gap < self.config.cluster_gap_samples:
                    # cluster with the previous burst (gap < t_e)
                    self._open_start = self._pending.start
                    self._pending = None
                else:
                    emitted = self._take_pending()
                    self._open_start = i
            if (self._open_start is not None
                    and i - self._open_start + 1 >= self.config.max_segment_samples):
                self._pending = Segment(self._open_start, i + 1)
                self._open_start = None
                self._gap = 0
        else:
            if self._open_start is not None:
                self._pending = Segment(self._open_start, i)
                self._open_start = None
                self._gap = 0
            elif self._pending is not None:
                self._gap += 1
                if self._gap >= self.config.cluster_gap_samples:
                    emitted = self._take_pending()
        return emitted

    def push_block(self, values: np.ndarray) -> BlockSegmentation:
        """Ingest N ΔRSS² samples; bit-identical to N :meth:`push` calls.

        The envelope carry, history ring, threshold refreshes and the
        open/pending/gap state machine are replayed in a tight loop with
        hoisted locals — the exact scalar operation order, minus the
        per-call attribute traffic.  Besides the finished segments (with
        their block offsets), the returned :class:`BlockSegmentation`
        exposes the post-push ``open_start``/``threshold`` trajectory the
        pipeline needs to interleave live updates without re-reading
        (already advanced) segmenter state.
        """
        x = np.asarray(values, dtype=np.float64).ravel()
        n = x.size
        finished: list = []
        open_after: list = []
        if n == 0:
            return BlockSegmentation(finished, open_after,
                                     np.empty(0, dtype=np.float64), [])

        config = self.config
        env_buf = self._env_buffer
        env_maxlen = env_buf.maxlen
        env_sum = self._env_sum
        hist = self._hist_buf
        hist_size = hist.shape[0]
        hist_pos = self._hist_pos
        hist_len = self._hist_len
        since = self._since_refresh
        refresh_every = config.otsu_refresh_samples
        threshold = self._threshold
        index = self._index
        open_start = self._open_start
        pending = self._pending
        gap = self._gap
        max_len = config.max_segment_samples
        cluster_gap = config.cluster_gap_samples
        min_len = config.min_segment_samples
        backdate = self._backdate

        def take_pending(segment: Segment) -> Segment | None:
            if segment.length < min_len:
                return None
            start = max(0, segment.start - backdate)
            end = max(start + 1, segment.end - backdate)
            return Segment(start, end)

        # Pass 1 — envelope. The running-sum carry is truly serial float
        # state (its residue must match the scalar push bits), but a
        # left-fold is exactly what ``np.add.accumulate`` computes: lay the
        # scalar loop's subtract-evicted / add-raw operations out as one
        # interleaved sequence and accumulate it, and every partial sum —
        # and therefore every envelope value — carries the scalar bits.
        carry = list(env_buf)
        carry_len = len(carry)
        evict_from = env_maxlen - carry_len
        n_grow = min(max(evict_from, 0), n)  # samples before first eviction
        acc_grow = np.add.accumulate(np.concatenate([[env_sum], x[:n_grow]]))
        sizes = np.arange(carry_len + 1, carry_len + n_grow + 1)
        env_grow = acc_grow[1:] / np.minimum(sizes, env_maxlen)
        env_sum = acc_grow[-1]
        n_roll = n - n_grow
        if n_roll:
            combined = np.concatenate([np.asarray(carry, dtype=np.float64), x])
            evicted = combined[carry_len + n_grow - env_maxlen:
                               carry_len + n - env_maxlen]
            steps = np.empty(2 * n_roll + 1)
            steps[0] = env_sum
            steps[1::2] = -evicted  # scalar order: evict, then add
            steps[2::2] = x[n_grow:]
            acc_roll = np.add.accumulate(steps)
            env_arr = np.concatenate([env_grow, acc_roll[2::2] / env_maxlen])
            env_sum = acc_roll[-1]
        else:
            env_arr = env_grow
        env_sum = float(env_sum)
        # the deque discards all but the trailing maxlen raws anyway
        env_buf.extend(x[max(0, n - env_maxlen):].tolist())

        # Pass 2 — threshold refreshes, batched. Refresh offsets are a
        # fixed cadence; every refresh window is a tail of (prior ring
        # content ++ envelope values), so all full windows of the block can
        # be gathered into one matrix and pushed through the vectorized
        # refresh in a single shot. Partial windows (cold start) and rows
        # the batch declines go through the scalar path unchanged.
        first_refresh = refresh_every - 1 - since
        refreshed_thresholds: dict[int, float | None] = {}
        offsets: list[int] = []
        if first_refresh < n:
            if hist_len < hist_size:
                prior = hist[:hist_len]
            elif hist_pos == 0:
                prior = hist
            else:
                prior = np.concatenate([hist[hist_pos:], hist[:hist_pos]])
            full_hist = np.concatenate([prior, env_arr])
            offsets = list(range(max(0, first_refresh), n, refresh_every))
            ends = [hist_len + off + 1 for off in offsets]
            full_rows = [(off, end) for off, end in zip(offsets, ends)
                         if end >= hist_size]
            batched: np.ndarray | None = None
            if full_rows:
                starts = np.asarray([end - hist_size
                                     for _, end in full_rows])
                windows = np.lib.stride_tricks.sliding_window_view(
                    full_hist, hist_size)[starts]
                # one log per history sample instead of one per window
                # element: refresh windows overlap almost entirely, and
                # the log is elementwise, so the bits are unchanged
                log_hist = np.log(np.where(full_hist > 0.0, full_hist, 1.0))
                log_windows = np.lib.stride_tricks.sliding_window_view(
                    log_hist, hist_size)[starts]
                batched = self._refresh_batch(windows, logs=log_windows)
            if batched is not None:
                for (off, _), thr in zip(full_rows, batched):
                    refreshed_thresholds[off] = float(thr)
            for off, end in zip(offsets, ends):
                if off not in refreshed_thresholds:
                    window = full_hist[max(0, end - hist_size):end]
                    refreshed_thresholds[off] = self._refresh_from(window)

        # ring/state bookkeeping the scalar loop would have done per push
        if offsets:
            since = n - 1 - offsets[-1]
        else:
            since += n
        tail = min(n, hist_size)
        ring_idx = (hist_pos + np.arange(n - tail, n)) % hist_size
        hist[ring_idx] = env_arr[n - tail:]
        hist_pos = (hist_pos + n) % hist_size
        hist_len = min(hist_len + n, hist_size)

        # Pass 3 — the open/pending/gap state machine. The threshold
        # trajectory is state-independent (refreshes depend only on the
        # envelope history), so it is laid out per-sample up front, the
        # above-threshold mask is computed in one vectorized compare, and
        # the scalar-order state machine then fast-forwards across
        # quiescent spans (nothing open, nothing pending, no crossings) —
        # the overwhelmingly common case on idle-dominated streams — where
        # each scalar step is provably a no-op beyond ``index += 1``.
        if refreshed_thresholds:
            thr_vals: list[float] = []
            span_lens: list[int] = []
            prev = 0
            cur_thr = threshold
            for off in offsets:
                span_lens.append(off - prev)
                thr_vals.append(cur_thr)
                new_thr = refreshed_thresholds[off]
                if new_thr is not None:
                    cur_thr = new_thr
                prev = off
            span_lens.append(n - prev)
            thr_vals.append(cur_thr)
            thr_per_sample = np.repeat(thr_vals, span_lens)
        else:
            thr_per_sample = np.full(n, threshold)
        mask = env_arr > thr_per_sample
        mask_list = mask.tolist()
        active_list = np.flatnonzero(mask).tolist()
        n_active = len(active_list)
        open_after = [None] * n
        open_offsets: list[int] = []

        ap = 0
        off = 0
        while off < n:
            if open_start is None and pending is None:
                while ap < n_active and active_list[ap] < off:
                    ap += 1
                if ap == n_active:
                    index += n - off
                    break
                nxt = active_list[ap]
                index += nxt - off
                off = nxt
            if mask_list[off]:
                if open_start is None:
                    if pending is not None and gap < cluster_gap:
                        open_start = pending.start
                        pending = None
                    else:
                        if pending is not None:
                            emitted = take_pending(pending)
                            pending = None
                            gap = 0
                            if emitted is not None:
                                finished.append((off, emitted))
                        open_start = index
                if index - open_start + 1 >= max_len:
                    pending = Segment(open_start, index + 1)
                    open_start = None
                    gap = 0
            else:
                if open_start is not None:
                    pending = Segment(open_start, index)
                    open_start = None
                    gap = 0
                elif pending is not None:
                    gap += 1
                    if gap >= cluster_gap:
                        emitted = take_pending(pending)
                        pending = None
                        gap = 0
                        if emitted is not None:
                            finished.append((off, emitted))
            index += 1
            if open_start is not None:
                open_after[off] = open_start
                open_offsets.append(off)
            off += 1
        threshold = float(thr_per_sample[-1])

        self._env_sum = env_sum
        self._hist_pos = hist_pos
        self._hist_len = hist_len
        self._since_refresh = since
        self._threshold = threshold
        self._index = index
        self._open_start = open_start
        self._pending = pending
        self._gap = gap
        return BlockSegmentation(finished, open_after, thr_per_sample,
                                 open_offsets)

    def _take_pending(self) -> Segment | None:
        if self._pending is None:
            return None
        segment = self._pending
        self._pending = None
        self._gap = 0
        if segment.length < self.config.min_segment_samples:
            return None
        # compensate the causal envelope's onset delay
        start = max(0, segment.start - self._backdate)
        end = max(start + 1, segment.end - self._backdate)
        return Segment(start, end)

    def flush(self) -> Segment | None:
        """Close any open or pending segment at end of stream."""
        if self._open_start is not None:
            self._pending = Segment(self._open_start, self._index)
            self._open_start = None
        return self._take_pending()

    def discontinuity(self, n_missing: int) -> Segment | None:
        """Jump the stream position over *n_missing* lost samples.

        Called by the pipeline when a frame gap is too long to
        interpolate: any open or pending burst is flushed (returned
        truncated at the gap rather than silently dropped — the
        degradation contract), the causal envelope is cleared so stale
        pre-gap energy cannot leak into post-gap samples, and the sample
        counter advances so later segments keep absolute positions.
        Threshold history survives — the environment did not change just
        because frames were lost.
        """
        if n_missing < 1:
            raise ValueError("n_missing must be >= 1")
        tail = self.flush()
        self._index += n_missing
        self._gap = 0
        self._env_buffer.clear()
        self._env_sum = 0.0
        return tail

    def reset(self) -> None:
        """Forget all state (threshold history included)."""
        self._hist_len = 0
        self._hist_pos = 0
        self._threshold = float(self.config.initial_threshold)
        self._since_refresh = 0
        self._index = 0
        self._open_start = None
        self._pending = None
        self._gap = 0
        self._env_buffer.clear()
        self._env_sum = 0.0

    # ------------------------------------------------------------------
    def segment(self, delta_sq: np.ndarray) -> list[Segment]:
        """Offline segmentation of a full ΔRSS² array."""
        self.reset()
        segments: list[Segment] = []
        for value in np.asarray(delta_sq, dtype=np.float64).ravel():
            done = self.push(value)
            if done is not None:
                segments.append(done)
        tail = self.flush()
        if tail is not None:
            segments.append(tail)
        return segments
