"""Dynamic Threshold (DT) gesture segmentation — Section IV-B2.

The segmenter thresholds the ΔRSS² stream into gesture (G) and non-gesture
(NG) classes.  A fixed threshold cannot work because the ΔRSS² range shifts
with finger distance, so the threshold ``I_seg`` is recomputed on-line by
maximizing the inter-class variance ``ω0·ω1·(μ0-μ1)²`` over accumulated
readings — Otsu's method (the paper cites the background/foreground
segmentation analogy of computer vision).

Start/end detection follows the paper exactly: a sample exceeding ``I_seg``
opens a segment, a sample at or below it closes one, and segments separated
by less than ``t_e`` are clustered into a single gesture.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.core.config import AirFingerConfig

__all__ = ["otsu_threshold", "Segment", "DynamicThresholdSegmenter"]


def otsu_threshold(values: np.ndarray,
                   n_bins: int = 128,
                   initial: float = 10.0) -> float:
    """The threshold maximizing inter-class variance over *values*.

    Parameters
    ----------
    values:
        Accumulated ΔRSS² readings.
    n_bins:
        Histogram resolution of the candidate-threshold search.
    initial:
        Returned when *values* is too small or degenerate for calibration
        (the paper's initial threshold ``I'_seg``).

    Notes
    -----
    ΔRSS² is heavy-tailed over several decades (quiet floor vs gesture
    excursions), so the entire Otsu computation — histogram, class weights,
    class means, inter-class variance — runs in **log space**.  In linear
    space the enormous gesture values dominate the class means and push the
    split far into the gesture mode; in log space the two modes are
    comparably sized and the maximizer lands in the valley between them.
    """
    values = np.asarray(values, dtype=np.float64).ravel()
    values = values[np.isfinite(values) & (values >= 0.0)]
    if values.size < 16:
        return float(initial)
    positive = values[values > 0.0]
    if positive.size < 16 or float(np.ptp(np.log(positive))) < 1e-9:
        return float(initial)
    log_vals = np.log(positive)
    lo, hi = float(log_vals.min()), float(log_vals.max())
    edges = np.linspace(lo, hi, n_bins + 1)
    hist, _ = np.histogram(log_vals, bins=edges)
    total = hist.sum()
    if total == 0:
        return float(initial)
    centers = 0.5 * (edges[:-1] + edges[1:])  # log-space bin centres
    w_cum = np.cumsum(hist)
    mass_cum = np.cumsum(hist * centers)
    mass_total = mass_cum[-1]
    # candidate threshold after each bin: class NG = bins <= k, G = bins > k
    w1 = w_cum[:-1] / total                       # NG weight
    w0 = 1.0 - w1                                 # G weight
    with np.errstate(divide="ignore", invalid="ignore"):
        mu1 = mass_cum[:-1] / np.maximum(w_cum[:-1], 1)
        mu0 = (mass_total - mass_cum[:-1]) / np.maximum(total - w_cum[:-1], 1)
    score = w0 * w1 * (mu0 - mu1) ** 2
    score[~np.isfinite(score)] = -1.0
    k = int(np.argmax(score))
    if score[k] <= 0:
        return float(initial)
    return float(np.exp(edges[k + 1]))


@dataclass(frozen=True)
class Segment:
    """A detected gesture extent, in sample indices ``[start, end)``."""

    start: int
    end: int

    def __post_init__(self) -> None:
        if not 0 <= self.start < self.end:
            raise ValueError(f"invalid segment [{self.start}, {self.end})")

    @property
    def length(self) -> int:
        """Number of samples covered."""
        return self.end - self.start

    def gap_to(self, other: "Segment") -> int:
        """Samples between this segment's end and *other*'s start (>= 0)."""
        if other.start < self.end:
            return 0
        return other.start - self.end

    def merged(self, other: "Segment") -> "Segment":
        """The union-extent of two segments."""
        return Segment(min(self.start, other.start), max(self.end, other.end))


class DynamicThresholdSegmenter:
    """On-line gesture segmentation over a ΔRSS² stream.

    Usage (streaming)::

        seg = DynamicThresholdSegmenter(config)
        for i, value in enumerate(delta_sq_stream):
            finished = seg.push(value)
            if finished is not None:
                ...  # a gesture spanning finished.start..finished.end

    or offline via :meth:`segment`.
    """

    def __init__(self, config: AirFingerConfig | None = None) -> None:
        self.config = config or AirFingerConfig()
        self._history: deque[float] = deque(maxlen=self.config.history_samples)
        self._threshold = float(self.config.initial_threshold)
        self._since_refresh = 0
        self._index = 0
        self._open_start: int | None = None
        self._pending: Segment | None = None
        self._gap = 0
        self._env_buffer: deque[float] = deque(maxlen=self.config.envelope_samples)
        self._env_sum = 0.0
        # causal envelope delays the apparent onset by ~half the window
        self._backdate = self.config.envelope_samples // 2

    # ------------------------------------------------------------------
    @property
    def threshold(self) -> float:
        """The current dynamic threshold ``I_seg``."""
        return self._threshold

    @property
    def samples_seen(self) -> int:
        """Total ΔRSS² samples pushed."""
        return self._index

    @property
    def open_start(self) -> int | None:
        """Start index of the currently open segment, or None when closed.

        Read-only streaming state for consumers (e.g. the live-update path
        of :class:`~repro.core.pipeline.AirFinger`) that need to know the
        in-progress gesture extent without reaching into internals.
        """
        return self._open_start

    def _refresh_threshold(self) -> None:
        history = np.fromiter(self._history, dtype=np.float64)
        # Otsu needs both modes (noise and gesture) in view to be
        # meaningful; hold the initial threshold until a second of data has
        # accumulated.
        if history.size < self.config.sample_rate_hz:
            return
        # The noise floor is estimated from the 25th percentile: even with a
        # heavy gesture duty cycle most history samples are quiet, so this
        # quantile tracks the noise mode and never creeps up with gestures.
        noise_level = float(np.quantile(history, 0.25))
        floor = max(self.config.threshold_floor_factor * noise_level, 1e-9)
        otsu = otsu_threshold(history,
                              n_bins=self.config.otsu_bins,
                              initial=self.config.initial_threshold)
        if otsu > 100.0 * floor:
            # Otsu split inside the gesture mode (e.g. the history holds
            # mostly strong gestures); fall back to the noise-based floor.
            self._threshold = floor
        else:
            self._threshold = max(otsu, floor)

    # ------------------------------------------------------------------
    def push(self, value: float) -> Segment | None:
        """Ingest one ΔRSS² sample; returns a finished gesture segment or None.

        A segment is only emitted once it has been closed for more than
        ``t_e`` samples (otherwise a following burst would have been
        clustered into it) and it passes the minimum-length filter.
        """
        raw = float(value)
        if len(self._env_buffer) == self._env_buffer.maxlen:
            self._env_sum -= self._env_buffer[0]
        self._env_buffer.append(raw)
        self._env_sum += raw
        value = self._env_sum / len(self._env_buffer)
        self._history.append(value)
        self._since_refresh += 1
        if self._since_refresh >= self.config.otsu_refresh_samples:
            self._refresh_threshold()
            self._since_refresh = 0

        i = self._index
        self._index += 1
        emitted: Segment | None = None

        above = value > self._threshold
        if above:
            if self._open_start is None:
                if self._pending is not None and self._gap < self.config.cluster_gap_samples:
                    # cluster with the previous burst (gap < t_e)
                    self._open_start = self._pending.start
                    self._pending = None
                else:
                    emitted = self._take_pending()
                    self._open_start = i
            if (self._open_start is not None
                    and i - self._open_start + 1 >= self.config.max_segment_samples):
                self._pending = Segment(self._open_start, i + 1)
                self._open_start = None
                self._gap = 0
        else:
            if self._open_start is not None:
                self._pending = Segment(self._open_start, i)
                self._open_start = None
                self._gap = 0
            elif self._pending is not None:
                self._gap += 1
                if self._gap >= self.config.cluster_gap_samples:
                    emitted = self._take_pending()
        return emitted

    def _take_pending(self) -> Segment | None:
        if self._pending is None:
            return None
        segment = self._pending
        self._pending = None
        self._gap = 0
        if segment.length < self.config.min_segment_samples:
            return None
        # compensate the causal envelope's onset delay
        start = max(0, segment.start - self._backdate)
        end = max(start + 1, segment.end - self._backdate)
        return Segment(start, end)

    def flush(self) -> Segment | None:
        """Close any open or pending segment at end of stream."""
        if self._open_start is not None:
            self._pending = Segment(self._open_start, self._index)
            self._open_start = None
        return self._take_pending()

    def discontinuity(self, n_missing: int) -> Segment | None:
        """Jump the stream position over *n_missing* lost samples.

        Called by the pipeline when a frame gap is too long to
        interpolate: any open or pending burst is flushed (returned
        truncated at the gap rather than silently dropped — the
        degradation contract), the causal envelope is cleared so stale
        pre-gap energy cannot leak into post-gap samples, and the sample
        counter advances so later segments keep absolute positions.
        Threshold history survives — the environment did not change just
        because frames were lost.
        """
        if n_missing < 1:
            raise ValueError("n_missing must be >= 1")
        tail = self.flush()
        self._index += n_missing
        self._gap = 0
        self._env_buffer.clear()
        self._env_sum = 0.0
        return tail

    def reset(self) -> None:
        """Forget all state (threshold history included)."""
        self._history.clear()
        self._threshold = float(self.config.initial_threshold)
        self._since_refresh = 0
        self._index = 0
        self._open_start = None
        self._pending = None
        self._gap = 0
        self._env_buffer.clear()
        self._env_sum = 0.0

    # ------------------------------------------------------------------
    def segment(self, delta_sq: np.ndarray) -> list[Segment]:
        """Offline segmentation of a full ΔRSS² array."""
        self.reset()
        segments: list[Segment] = []
        for value in np.asarray(delta_sq, dtype=np.float64).ravel():
            done = self.push(value)
            if done is not None:
                segments.append(done)
        tail = self.flush()
        if tail is not None:
            segments.append(tail)
        return segments
