"""Sensor self-calibration: baselines, channel gains and health checks.

A shipped sensor must calibrate itself at power-on — the paper's prototype
relies on the dynamic threshold to absorb environment changes, but a real
integration also wants:

* a **baseline estimate** per channel (the static floor: crosstalk, hand
  rest, standing ambient) so excursions can be reported in physical-ish
  units;
* **channel gain trim**: part-to-part photodiode sensitivity spreads by
  tens of percent; matching the channels keeps ZEBRA's differential
  statistics unbiased;
* a **health check** that flags dead, saturated or noise-swamped channels
  before the pipeline trusts them.

Calibration runs on an idle capture (no gestures), which the wearable can
collect whenever the segmenter has been quiet for a few seconds.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.acquisition.adc import Adc

__all__ = ["ChannelHealth", "CalibrationResult", "SensorCalibrator",
           "ChannelGuard"]


@dataclass(frozen=True)
class ChannelHealth:
    """Power-on health verdict for one photodiode channel.

    ``saturation_fraction`` is the historical both-rails aggregate;
    ``low_rail_fraction`` / ``high_rail_fraction`` split it so a dark
    (covered) sensor sitting near code 0 is distinguishable from an
    optically blinded one pinned at full scale.
    """

    name: str
    baseline: float
    noise_rms: float
    saturation_fraction: float
    status: str  # "ok" | "dead" | "saturated" | "noisy"
    low_rail_fraction: float = 0.0
    high_rail_fraction: float = 0.0

    @property
    def usable(self) -> bool:
        """True when the channel can feed the pipeline."""
        return self.status == "ok"


@dataclass
class CalibrationResult:
    """Output of :meth:`SensorCalibrator.calibrate`."""

    baselines: np.ndarray
    gains: np.ndarray
    health: list[ChannelHealth]

    @property
    def all_usable(self) -> bool:
        """True when every channel passed the health check."""
        return all(h.usable for h in self.health)

    def apply(self, rss: np.ndarray) -> np.ndarray:
        """Baseline-subtract and gain-trim a raw RSS matrix."""
        rss = np.atleast_2d(np.asarray(rss, dtype=np.float64))
        if rss.shape[1] != self.baselines.size:
            raise ValueError(
                f"rss has {rss.shape[1]} channels, calibration has "
                f"{self.baselines.size}")
        return (rss - self.baselines) * self.gains


@dataclass
class SensorCalibrator:
    """Derives a :class:`CalibrationResult` from an idle capture.

    Parameters
    ----------
    adc:
        Converter model (for the saturation codes).
    dead_noise_rms:
        Channels whose noise RMS falls below this are considered
        disconnected (a live photodiode always shows shot noise).
    max_noise_rms:
        Channels noisier than this are flagged unusable.
    max_saturation:
        Maximum tolerable fraction of pinned samples.
    reference:
        Gain-trim target: ``"median"`` scales every channel's observed
        noise RMS to the median channel's (photocurrent noise tracks
        responsivity, so it doubles as a relative-sensitivity probe).
    """

    adc: Adc = field(default_factory=Adc)
    dead_noise_rms: float = 1e-3
    max_noise_rms: float = 40.0
    max_saturation: float = 0.05
    reference: str = "median"

    def __post_init__(self) -> None:
        if self.dead_noise_rms <= 0:
            raise ValueError("dead_noise_rms must be positive")
        if self.max_noise_rms <= self.dead_noise_rms:
            raise ValueError("max_noise_rms must exceed dead_noise_rms")
        if not 0.0 <= self.max_saturation <= 1.0:
            raise ValueError("max_saturation must be within [0, 1]")
        if self.reference != "median":
            raise ValueError("only the 'median' reference is implemented")

    def calibrate(self, idle_rss: np.ndarray,
                  channel_names: tuple[str, ...] | None = None
                  ) -> CalibrationResult:
        """Calibrate from an idle multi-channel capture ``(T, C)``."""
        rss = np.atleast_2d(np.asarray(idle_rss, dtype=np.float64))
        if rss.shape[0] < 16:
            raise ValueError("idle capture too short to calibrate (need >=16)")
        n_channels = rss.shape[1]
        names = channel_names or tuple(f"P{i + 1}" for i in range(n_channels))
        if len(names) != n_channels:
            raise ValueError(
                f"{len(names)} names for {n_channels} channels")

        baselines = np.median(rss, axis=0)
        detrended = rss - baselines
        noise = detrended.std(axis=0)
        low_rail = np.array([
            self.adc.low_rail_fraction(rss[:, c]) for c in range(n_channels)])
        high_rail_frac = np.array([
            self.adc.high_rail_fraction(rss[:, c]) for c in range(n_channels)])

        health: list[ChannelHealth] = []
        high_rail = 0.5 * self.adc.full_scale
        for c, name in enumerate(names):
            flat = (noise[c] < self.dead_noise_rms
                    and np.ptp(rss[:, c]) == 0.0)
            # a flat channel sits on one of the rails: the bottom rail is a
            # broken wire, the top rail is an optically blinded photodiode
            if flat and baselines[c] < high_rail:
                status = "dead"
            elif high_rail_frac[c] > self.max_saturation:
                # only the top rail means optical overload; bottom-rail
                # codes with live noise are a covered sensor in legitimate
                # darkness, not a saturated amplifier
                status = "saturated"
            elif noise[c] > self.max_noise_rms:
                status = "noisy"
            else:
                status = "ok"
            health.append(ChannelHealth(
                name=name, baseline=float(baselines[c]),
                noise_rms=float(noise[c]),
                saturation_fraction=float(low_rail[c] + high_rail_frac[c]),
                status=status,
                low_rail_fraction=float(low_rail[c]),
                high_rail_fraction=float(high_rail_frac[c])))

        usable = np.array([h.usable for h in health])
        gains = np.ones(n_channels)
        if usable.any():
            reference_rms = float(np.median(noise[usable]))
            for c in range(n_channels):
                if usable[c] and noise[c] > 1e-12:
                    gains[c] = reference_rms / noise[c]
        return CalibrationResult(baselines=baselines, gains=gains,
                                 health=health)


class ChannelGuard:
    """Streaming counterpart of the power-on health check.

    :class:`SensorCalibrator` runs once on an idle capture; the guard runs
    continuously inside :class:`~repro.core.pipeline.AirFinger`, watching
    each channel's raw counts over a rolling window and applying the same
    two fault signatures on-line:

    * **flat** — the signal repeats itself over nearly the whole window
      (fraction of zero sample-to-sample differences above
      ``max_flat_fraction``).  A live photodiode always shows converter
      dither; a near-perfectly repeated code is a broken wire, a dead
      die, or a stuck converter slot.  Judging *dominance* rather than
      requiring the entire window flat lets the guard catch a fault whose
      edges still carry a few live samples.
    * **saturated** — the top code dominates the window (optical
      overload; the bottom rail is deliberately *not* a fault here, since
      a covered sensor in darkness legitimately sits near code 0 with
      noise).

    Masking is immediate; recovery is hysteretic: a masked channel must
    produce ``recovery_checks`` consecutive healthy verdicts before it is
    trusted again, so an intermittent (flapping) channel stays excluded.

    Parameters
    ----------
    n_channels:
        Photodiode count.
    adc:
        Converter model supplying the rail codes.
    window:
        Rolling window length in samples.
    check_every:
        Verdict cadence in samples.
    max_high_rail:
        Window fraction at the top code above which the channel is
        declared saturated (an ambient step pins essentially the whole
        window, so this sits far above the calibrator's idle tolerance).
    max_flat_fraction:
        Fraction of zero successive differences above which the channel
        is declared flat.
    recovery_checks:
        Consecutive healthy verdicts required to unmask.
    """

    def __init__(self, n_channels: int, adc: Adc | None = None,
                 window: int = 100, check_every: int = 25,
                 max_high_rail: float = 0.9,
                 max_flat_fraction: float = 0.9,
                 recovery_checks: int = 3) -> None:
        if n_channels < 1:
            raise ValueError("n_channels must be >= 1")
        if window < 8:
            raise ValueError("window must be >= 8")
        if check_every < 1:
            raise ValueError("check_every must be >= 1")
        if not 0.0 < max_high_rail <= 1.0:
            raise ValueError("max_high_rail must be within (0, 1]")
        if not 0.0 < max_flat_fraction <= 1.0:
            raise ValueError("max_flat_fraction must be within (0, 1]")
        if recovery_checks < 1:
            raise ValueError("recovery_checks must be >= 1")
        self.n_channels = n_channels
        self.adc = adc or Adc()
        self.window = window
        self.check_every = check_every
        self.max_high_rail = max_high_rail
        self.max_flat_fraction = max_flat_fraction
        self.recovery_checks = recovery_checks
        self._buffers: list[deque[float]] = [
            deque(maxlen=window) for _ in range(n_channels)]
        self._masked = [False] * n_channels
        self._reasons = [""] * n_channels
        self._healthy_streak = [0] * n_channels
        self._hold = [0.0] * n_channels
        self._since_check = 0

    @property
    def mask(self) -> tuple[bool, ...]:
        """Per-channel masked state (True = excluded from fusion)."""
        return tuple(self._masked)

    @property
    def any_masked(self) -> bool:
        """True while at least one channel is excluded."""
        return any(self._masked)

    def hold_value(self, channel: int) -> float:
        """The last healthy level for *channel* (fusion substitute)."""
        return self._hold[channel]

    def reason(self, channel: int) -> str:
        """Why *channel* is masked (empty string when healthy)."""
        return self._reasons[channel]

    def _verdict(self, values: np.ndarray) -> str:
        # saturation first: a hard pin at the top code is also flat, but
        # the rail is the more specific diagnosis
        if np.mean(values >= self.adc.full_scale) > self.max_high_rail:
            return "saturated"
        if np.mean(np.diff(values) == 0.0) > self.max_flat_fraction:
            return "flat"
        return ""

    def push(self, values: tuple[float, ...]) -> list[tuple[int, bool, str]]:
        """Ingest one raw frame; returns mask transitions, if any.

        Each transition is ``(channel, masked, reason)`` with reason
        ``"flat"``/``"saturated"`` on masking and ``"recovered"`` on
        unmasking.  Between checks this is two appends and a compare per
        channel — cheap enough for the 100 Hz hot path.
        """
        if len(values) != self.n_channels:
            raise ValueError(
                f"frame has {len(values)} channels, guard has "
                f"{self.n_channels}")
        for buffer, value in zip(self._buffers, values):
            buffer.append(float(value))
        self._since_check += 1
        if (self._since_check < self.check_every
                or len(self._buffers[0]) < self.window):
            return []
        self._since_check = 0
        transitions: list[tuple[int, bool, str]] = []
        for c in range(self.n_channels):
            window = np.fromiter(self._buffers[c], dtype=np.float64)
            fault = self._verdict(window)
            if fault:
                self._healthy_streak[c] = 0
                if not self._masked[c]:
                    self._masked[c] = True
                    self._reasons[c] = fault
                    transitions.append((c, True, fault))
            else:
                if self._masked[c]:
                    self._healthy_streak[c] += 1
                    if self._healthy_streak[c] >= self.recovery_checks:
                        self._masked[c] = False
                        self._reasons[c] = ""
                        self._healthy_streak[c] = 0
                        transitions.append((c, False, "recovered"))
                else:
                    # remember the healthy level so a masked channel can be
                    # replaced by its own recent past, not by zero
                    self._hold[c] = float(np.median(window))
        return transitions

    def push_block(self, values: np.ndarray
                   ) -> list[tuple[int, list[tuple[int, bool, str, float]]]]:
        """Ingest N raw frames at once; bit-identical to N :meth:`push` calls.

        *values* is an ``(N, n_channels)`` float matrix.  Returns
        ``(offset, transitions)`` pairs for the frames whose check produced
        mask transitions; each transition is ``(channel, masked, reason,
        hold)`` — :meth:`push`'s tuple plus a snapshot of
        :meth:`hold_value` *at that check*, which a block consumer needs
        because the guard's hold state keeps evolving through the rest of
        the block.  Check cadence is scheduled up front
        (it only depends on the sample count), the window statistics for
        all checks are computed in stacked numpy — ``np.mean`` over
        booleans and ``np.median`` over a window are order-independent, so
        axis-wise evaluation reproduces the per-window results exactly —
        and the mask/streak/hold bookkeeping replays sequentially.
        """
        x = np.asarray(values, dtype=np.float64)
        if x.ndim != 2 or x.shape[1] != self.n_channels:
            raise ValueError(
                f"frame block has {x.shape[1] if x.ndim == 2 else '?'} "
                f"channels, guard has {self.n_channels}")
        n = x.shape[0]
        if n == 0:
            return []
        w = self.window
        carried = len(self._buffers[0])
        # a check fires at offset i once since_check >= check_every AND the
        # window is full; since_check resets only when a check actually runs
        first = max(0, self.check_every - 1 - self._since_check,
                    w - 1 - carried)
        check_offsets = list(range(first, n, self.check_every))
        if carried:
            pre = np.array([list(b) for b in self._buffers],
                           dtype=np.float64).T
        else:
            pre = np.empty((0, self.n_channels), dtype=np.float64)
        # the maxlen=w deques keep only each column's tail anyway
        tail0 = max(0, n - w)
        for buffer, column in zip(self._buffers, x.T):
            buffer.extend(column[tail0:].tolist())
        if check_offsets:
            self._since_check = n - 1 - check_offsets[-1]
        else:
            self._since_check += n
            return []

        history = np.concatenate([pre, x])
        # start row in history of the window ending at each check offset
        rows = [carried + off + 1 - w for off in check_offsets]
        starts = np.asarray(rows)
        n_ch = self.n_channels
        full_scale = self.adc.full_scale
        # exact window statistics from prefix counts: np.mean over a bool
        # window is (integer count) / w — integer counts never round, so a
        # difference of cumulative counts carries the same bits as the
        # per-window mean while doing O(T) work instead of O(R * w)
        sat_cum = np.zeros((history.shape[0] + 1, n_ch), dtype=np.int64)
        np.cumsum(history >= full_scale, axis=0, out=sat_cum[1:])
        sat_count = sat_cum[starts + w] - sat_cum[starts]
        sat = sat_count / w > self.max_high_rail
        flat_cum = np.zeros((history.shape[0], n_ch), dtype=np.int64)
        np.cumsum(np.diff(history, axis=0) == 0.0, axis=0, out=flat_cum[1:])
        # the w - 1 adjacent-equal pairs of a window are the history diffs
        # at rows start .. start + w - 2
        flat_count = flat_cum[starts + w - 1] - flat_cum[starts]
        flat = flat_count / (w - 1) > self.max_flat_fraction

        # Hold medians are computed lazily: a hold is only ever observed
        # at a masking/recovery transition (the snapshot below) and at
        # block end (state for the next block), and the mask/streak
        # bookkeeping never reads it — so first replay the bookkeeping
        # tracking only *which* healthy check each hold would come from,
        # then take np.median for the handful of windows actually needed.
        pre_hold = list(self._hold)
        hold_src: list[int | None] = [None] * self.n_channels
        raw: list[tuple[int, list[tuple[int, bool, str, int | None]]]] = []
        for j, off in enumerate(check_offsets):
            transitions: list[tuple[int, bool, str, int | None]] = []
            for c in range(self.n_channels):
                if sat[j, c]:
                    fault = "saturated"
                elif flat[j, c]:
                    fault = "flat"
                else:
                    fault = ""
                if fault:
                    self._healthy_streak[c] = 0
                    if not self._masked[c]:
                        self._masked[c] = True
                        self._reasons[c] = fault
                        transitions.append((c, True, fault, hold_src[c]))
                elif self._masked[c]:
                    self._healthy_streak[c] += 1
                    if self._healthy_streak[c] >= self.recovery_checks:
                        self._masked[c] = False
                        self._reasons[c] = ""
                        self._healthy_streak[c] = 0
                        transitions.append((c, False, "recovered",
                                            hold_src[c]))
                else:
                    hold_src[c] = j
            if transitions:
                raw.append((off, transitions))

        medians: dict[tuple[int, int], float] = {}
        for _, transitions in raw:
            for c, _, _, src in transitions:
                if src is not None:
                    medians[(src, c)] = 0.0
        for c, src in enumerate(hold_src):
            if src is not None:
                medians[(src, c)] = 0.0
        for j, c in medians:
            medians[(j, c)] = float(
                np.median(history[rows[j]:rows[j] + w, c]))
        for c, src in enumerate(hold_src):
            if src is not None:
                self._hold[c] = medians[(src, c)]

        out: list[tuple[int, list[tuple[int, bool, str, float]]]] = []
        for off, transitions in raw:
            out.append((off, [
                (c, masked, reason,
                 pre_hold[c] if src is None else medians[(src, c)])
                for c, masked, reason, src in transitions]))
        return out

    def clear_window(self) -> None:
        """Forget buffered samples (after a stream gap); masks persist."""
        for buffer in self._buffers:
            buffer.clear()
        self._since_check = 0

    def reset(self) -> None:
        """Forget everything, including masks and held levels."""
        self.clear_window()
        self._masked = [False] * self.n_channels
        self._reasons = [""] * self.n_channels
        self._healthy_streak = [0] * self.n_channels
        self._hold = [0.0] * self.n_channels
