"""Sensor self-calibration: baselines, channel gains and health checks.

A shipped sensor must calibrate itself at power-on — the paper's prototype
relies on the dynamic threshold to absorb environment changes, but a real
integration also wants:

* a **baseline estimate** per channel (the static floor: crosstalk, hand
  rest, standing ambient) so excursions can be reported in physical-ish
  units;
* **channel gain trim**: part-to-part photodiode sensitivity spreads by
  tens of percent; matching the channels keeps ZEBRA's differential
  statistics unbiased;
* a **health check** that flags dead, saturated or noise-swamped channels
  before the pipeline trusts them.

Calibration runs on an idle capture (no gestures), which the wearable can
collect whenever the segmenter has been quiet for a few seconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.acquisition.adc import Adc

__all__ = ["ChannelHealth", "CalibrationResult", "SensorCalibrator"]


@dataclass(frozen=True)
class ChannelHealth:
    """Power-on health verdict for one photodiode channel."""

    name: str
    baseline: float
    noise_rms: float
    saturation_fraction: float
    status: str  # "ok" | "dead" | "saturated" | "noisy"

    @property
    def usable(self) -> bool:
        """True when the channel can feed the pipeline."""
        return self.status == "ok"


@dataclass
class CalibrationResult:
    """Output of :meth:`SensorCalibrator.calibrate`."""

    baselines: np.ndarray
    gains: np.ndarray
    health: list[ChannelHealth]

    @property
    def all_usable(self) -> bool:
        """True when every channel passed the health check."""
        return all(h.usable for h in self.health)

    def apply(self, rss: np.ndarray) -> np.ndarray:
        """Baseline-subtract and gain-trim a raw RSS matrix."""
        rss = np.atleast_2d(np.asarray(rss, dtype=np.float64))
        if rss.shape[1] != self.baselines.size:
            raise ValueError(
                f"rss has {rss.shape[1]} channels, calibration has "
                f"{self.baselines.size}")
        return (rss - self.baselines) * self.gains


@dataclass
class SensorCalibrator:
    """Derives a :class:`CalibrationResult` from an idle capture.

    Parameters
    ----------
    adc:
        Converter model (for the saturation codes).
    dead_noise_rms:
        Channels whose noise RMS falls below this are considered
        disconnected (a live photodiode always shows shot noise).
    max_noise_rms:
        Channels noisier than this are flagged unusable.
    max_saturation:
        Maximum tolerable fraction of pinned samples.
    reference:
        Gain-trim target: ``"median"`` scales every channel's observed
        noise RMS to the median channel's (photocurrent noise tracks
        responsivity, so it doubles as a relative-sensitivity probe).
    """

    adc: Adc = field(default_factory=Adc)
    dead_noise_rms: float = 1e-3
    max_noise_rms: float = 40.0
    max_saturation: float = 0.05
    reference: str = "median"

    def __post_init__(self) -> None:
        if self.dead_noise_rms <= 0:
            raise ValueError("dead_noise_rms must be positive")
        if self.max_noise_rms <= self.dead_noise_rms:
            raise ValueError("max_noise_rms must exceed dead_noise_rms")
        if not 0.0 <= self.max_saturation <= 1.0:
            raise ValueError("max_saturation must be within [0, 1]")
        if self.reference != "median":
            raise ValueError("only the 'median' reference is implemented")

    def calibrate(self, idle_rss: np.ndarray,
                  channel_names: tuple[str, ...] | None = None
                  ) -> CalibrationResult:
        """Calibrate from an idle multi-channel capture ``(T, C)``."""
        rss = np.atleast_2d(np.asarray(idle_rss, dtype=np.float64))
        if rss.shape[0] < 16:
            raise ValueError("idle capture too short to calibrate (need >=16)")
        n_channels = rss.shape[1]
        names = channel_names or tuple(f"P{i + 1}" for i in range(n_channels))
        if len(names) != n_channels:
            raise ValueError(
                f"{len(names)} names for {n_channels} channels")

        baselines = np.median(rss, axis=0)
        detrended = rss - baselines
        noise = detrended.std(axis=0)
        saturation = np.array([
            self.adc.saturation_fraction(rss[:, c]) for c in range(n_channels)])

        health: list[ChannelHealth] = []
        high_rail = 0.5 * self.adc.full_scale
        for c, name in enumerate(names):
            flat = (noise[c] < self.dead_noise_rms
                    and np.ptp(rss[:, c]) == 0.0)
            # a flat channel sits on one of the rails: the bottom rail is a
            # broken wire, the top rail is an optically blinded photodiode
            if flat and baselines[c] < high_rail:
                status = "dead"
            elif saturation[c] > self.max_saturation:
                status = "saturated"
            elif noise[c] > self.max_noise_rms:
                status = "noisy"
            else:
                status = "ok"
            health.append(ChannelHealth(
                name=name, baseline=float(baselines[c]),
                noise_rms=float(noise[c]),
                saturation_fraction=float(saturation[c]),
                status=status))

        usable = np.array([h.usable for h in health])
        gains = np.ones(n_channels)
        if usable.any():
            reference_rms = float(np.median(noise[usable]))
            for c in range(n_channels):
                if usable[c] and noise[c] > 1e-12:
                    gains[c] = reference_rms / noise[c]
        return CalibrationResult(baselines=baselines, gains=gains,
                                 health=health)
