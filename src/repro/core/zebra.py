"""The ZEBRA tracking algorithm (Algorithm 1, Section IV-D).

ZEBRA turns the ordered signal-ascending points of the outer photodiodes
(P1, P3) into the three tracked quantities of a scroll:

* **direction** ``α``: P1 ascends first (or alone) → scroll up (+1);
  P3 first (or alone) → scroll down (-1);
* **velocity** ``v``: the physical P1-P3 baseline divided by the onset
  time difference ``Δt`` (the paper states "velocity is proportional to
  Δt" loosely; physically the fixed baseline over Δt gives mm/s).  When
  only one outer photodiode ascends, Δt is incalculable and the experience
  value ``v' = 80 mm/s`` is used;
* **displacement** ``D_t = α · v · min(t, T)`` with ``T`` the gesture's
  total duration.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import AirFingerConfig
from repro.core.dispatcher import onset_times, sweep_statistics

__all__ = ["find_ascending_point", "TrackResult", "ZebraTracker"]


def find_ascending_point(delta_sq: np.ndarray, level: float,
                         sample_rate_hz: float) -> float | None:
    """Ascending time (s) of one channel's ΔRSS², or None below *level*."""
    from repro.core.dispatcher import _ascending_index
    idx = _ascending_index(np.asarray(delta_sq, dtype=np.float64), level)
    return None if idx is None else idx / sample_rate_hz


@dataclass(frozen=True)
class TrackResult:
    """Output of ZEBRA for one track-aimed gesture.

    Parameters
    ----------
    direction:
        +1 (scroll up), -1 (scroll down), or 0 when undecidable.
    velocity_mm_s:
        Estimated scroll speed.
    duration_s:
        ``T``, the gesture's total duration.
    delta_t_s:
        Onset time difference between P1 and P3 (None if incalculable).
    used_default_speed:
        True when the experience value ``v'`` was substituted.
    onsets_s:
        Per-channel ascending times relative to segment start.
    """

    direction: int
    velocity_mm_s: float
    duration_s: float
    delta_t_s: float | None
    used_default_speed: bool
    onsets_s: tuple

    @property
    def direction_name(self) -> str:
        """``"scroll_up"``, ``"scroll_down"`` or ``"unknown"``."""
        if self.direction > 0:
            return "scroll_up"
        if self.direction < 0:
            return "scroll_down"
        return "unknown"

    def displacement_at(self, t_s: float) -> float:
        """``D_t = α · v · min(t, T)`` in millimetres (signed)."""
        if t_s < 0:
            raise ValueError(f"t_s must be non-negative, got {t_s}")
        return self.direction * self.velocity_mm_s * min(t_s, self.duration_s)

    @property
    def total_displacement_mm(self) -> float:
        """Signed displacement at the end of the gesture."""
        return self.displacement_at(self.duration_s)


@dataclass(frozen=True)
class ZebraTracker:
    """Applies Algorithm 1 to a segmented multi-channel gesture.

    Parameters
    ----------
    config:
        Timing parameters and the experience speed ``v'``.
    baseline_mm:
        Physical distance between the outer photodiodes P1 and P3
        (``SensorArray.scroll_axis_span_mm()``; 24 mm for the default
        6 mm-pitch five-element board).
    """

    config: AirFingerConfig = AirFingerConfig()
    baseline_mm: float = 24.0

    def __post_init__(self) -> None:
        if self.baseline_mm <= 0:
            raise ValueError("baseline_mm must be positive")

    def track(self, rss_segment: np.ndarray, gate: float) -> TrackResult:
        """Run ZEBRA on one segmented gesture's raw RSS ``(T, C)``.

        The first and last channels are taken as P1 and P3 (the board's
        outer photodiodes).
        """
        rss = np.atleast_2d(np.asarray(rss_segment, dtype=np.float64))
        n, c = rss.shape
        if c < 2:
            raise ValueError("ZEBRA needs at least two photodiode channels")
        duration_s = n / self.config.sample_rate_hz
        onsets = onset_times(rss, self.config.sample_rate_hz, gate,
                             sbc_window=self.config.sbc_window_samples)
        t1 = onsets[0]      # P1
        t3 = onsets[-1]     # P3
        v_default = self.config.default_scroll_speed_mm_s

        # Full sweeps first (lines 8-13 / 20-25): when both outer zones were
        # genuinely excited, the energy-weighted time centroids of P1 and P3
        # sit where the finger passed each zone, so their lag gives both the
        # ascending order (α) and Δt.  This is more reliable than raw onset
        # presence — a minimum-jerk scroll starts slowly, so the first
        # photodiode's level crossing is sometimes missed entirely.
        stats = sweep_statistics(rss, self.config.sample_rate_hz)
        if stats.bipolarity > 0.05 and abs(stats.centroid_lag_s) > 1e-9:
            delta_t = abs(stats.centroid_lag_s)
            direction = +1 if stats.centroid_lag_s > 0 else -1
            velocity = self.baseline_mm / delta_t
            return TrackResult(direction, velocity, duration_s, delta_t,
                               False, tuple(onsets))
        if t1 is not None and t3 is None:
            # lines 2-7: only P1 ascends -> scroll up at experience speed
            return TrackResult(+1, v_default, duration_s, None, True,
                               tuple(onsets))
        if t3 is not None and t1 is None:
            # lines 14-19: only P3 ascends -> scroll down at experience speed
            return TrackResult(-1, v_default, duration_s, None, True,
                               tuple(onsets))
        if t1 is not None and t3 is not None and abs(t3 - t1) > 1e-9:
            delta_t = abs(t3 - t1)
            velocity = self.baseline_mm / delta_t
            return TrackResult(+1 if t1 < t3 else -1, velocity, duration_s,
                               delta_t, False, tuple(onsets))
        # one-sided difference without a usable Δt: direction from the
        # lobe order, experience speed v'
        if stats.lobe_order > 0:
            return TrackResult(+1, v_default, duration_s, None, True,
                               tuple(onsets))
        if stats.lobe_order < 0:
            return TrackResult(-1, v_default, duration_s, None, True,
                               tuple(onsets))
        return TrackResult(0, v_default, duration_s, None, True, tuple(onsets))

    def displacement_profile(self, result: TrackResult,
                             n_points: int = 50) -> np.ndarray:
        """``(n_points, 2)`` array of ``(t, D_t)`` samples over the gesture."""
        if n_points < 2:
            raise ValueError("n_points must be >= 2")
        ts = np.linspace(0.0, result.duration_s, n_points)
        return np.stack(
            [ts, [result.displacement_at(float(t)) for t in ts]], axis=1)
