"""Deterministic fault injection for imperfect sensor streams.

The pipeline's other packages assume a perfect stream: contiguous 100 Hz
frames from three healthy photodiodes.  This package breaks that
assumption on purpose — :mod:`repro.faults.models` defines the fault
families a real MCU link and cheap PD array produce (dropped ADC cycles,
timestamp jitter, dead/intermittent channels, ambient saturation, stuck
output codes), and :mod:`repro.faults.schedule` composes them into a
seeded, reproducible :class:`FaultSchedule` that wraps a recording or its
frame stream.

The degradation machinery that tolerates these faults lives in the hot
path itself (:class:`repro.core.pipeline.AirFinger` gap handling,
:class:`repro.core.calibration.ChannelGuard` masking); the accuracy cost
of each fault family is measured by :mod:`repro.eval.robustness` and the
``airfinger robustness`` CLI.
"""

from repro.faults.models import (
    ChannelDropoutFault,
    FaultEvent,
    FaultModel,
    FrameDropFault,
    JitterFault,
    SaturationFault,
    StuckCodeFault,
)
from repro.faults.schedule import FaultInjection, FaultSchedule

__all__ = [
    "ChannelDropoutFault",
    "FaultEvent",
    "FaultModel",
    "FrameDropFault",
    "JitterFault",
    "SaturationFault",
    "StuckCodeFault",
    "FaultInjection",
    "FaultSchedule",
]
