"""Fault models: the ways a real sensing front end betrays the pipeline.

Section VI of the paper stresses airFinger with direct sunlight, distance
and user diversity; a deployed sensor additionally suffers the faults of
cheap photodiodes and MCU links — lost ADC cycles, late frames, dead or
intermittent channels, ambient steps that pin the converter, stuck output
codes.  Each model here injects exactly one such fault family into a
recorded RSS array, deterministically from a caller-supplied generator,
and reports what it did as :class:`FaultEvent` ground truth.

Every model carries an ``intensity`` in ``[0, 1]`` that scales both how
often and how hard the fault hits.  Intensity 0 is a **strict no-op**: the
model draws nothing from the RNG and touches no array, so a zero-intensity
injection is bit-identical to no injection at all (pinned by
``tests/property/test_property_faults.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import ClassVar

import numpy as np

__all__ = [
    "FaultEvent",
    "FaultModel",
    "FrameDropFault",
    "JitterFault",
    "ChannelDropoutFault",
    "SaturationFault",
    "StuckCodeFault",
]

#: 10-bit full scale; models accept an override for other converters.
DEFAULT_FULL_SCALE = 1023.0


@dataclass(frozen=True)
class FaultEvent:
    """Ground truth for one injected fault occurrence.

    Parameters
    ----------
    fault:
        Model name (``"frame_drop"``, ``"jitter"``, ...).
    start_index, end_index:
        Affected sample range ``[start, end)`` in recording rows.
    channel:
        Affected channel index, or ``None`` when all channels are hit.
    magnitude:
        Model-specific severity (dropped frames, jitter seconds, pinned
        level ...); purely informational.
    """

    fault: str
    start_index: int
    end_index: int
    channel: int | None = None
    magnitude: float = 0.0

    def __post_init__(self) -> None:
        if not 0 <= self.start_index < self.end_index:
            raise ValueError(
                f"invalid fault extent [{self.start_index}, {self.end_index})")


@dataclass(frozen=True)
class FaultModel:
    """Base fault: a named, intensity-scaled mutation of a recording.

    Subclasses implement :meth:`inject`, mutating the writable ``times``
    / ``rss`` / ``keep`` arrays in place and returning the list of
    :class:`FaultEvent` they caused.  ``keep`` marks frames that survive
    (frame drops clear entries); value faults edit ``rss`` rows directly.

    Models never allocate their own randomness: the caller passes the
    generator (derived from the campaign seed by
    :class:`~repro.faults.schedule.FaultSchedule`), so injections are
    reproducible and never perturb the corpus RNG streams.
    """

    intensity: float = 1.0

    name: ClassVar[str] = "fault"

    def __post_init__(self) -> None:
        if not 0.0 <= self.intensity <= 1.0:
            raise ValueError(
                f"intensity must be within [0, 1], got {self.intensity}")

    @property
    def active(self) -> bool:
        """False when this model is a guaranteed no-op."""
        return self.intensity > 0.0

    def at(self, intensity: float) -> "FaultModel":
        """This model rescaled to ``intensity * self.intensity``."""
        return replace(self, intensity=float(intensity) * self.intensity)

    def inject(self, times_s: np.ndarray, rss: np.ndarray,
               keep: np.ndarray, rng: np.random.Generator,
               full_scale: float = DEFAULT_FULL_SCALE) -> list[FaultEvent]:
        """Apply the fault in place; returns the injected events."""
        raise NotImplementedError


def _pick_window(n: int, coverage: float,
                 rng: np.random.Generator) -> tuple[int, int] | None:
    """A random ``[start, end)`` window covering *coverage* of *n* samples."""
    length = int(round(coverage * n))
    if length < 1 or n < 1:
        return None
    length = min(length, n)
    start = int(rng.integers(0, n - length + 1))
    return start, start + length


@dataclass(frozen=True)
class FrameDropFault(FaultModel):
    """Lost ADC cycles: bursts of frames never reach the host.

    At intensity 1 a fraction ``drop_rate`` of samples starts a drop
    burst whose length is geometric with mean ``mean_burst`` — the
    byte-loss signature of the serial/BLE links in
    :mod:`repro.acquisition.protocol`.
    """

    drop_rate: float = 0.02
    mean_burst: float = 3.0

    name: ClassVar[str] = "frame_drop"

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0.0 < self.drop_rate <= 1.0:
            raise ValueError("drop_rate must be within (0, 1]")
        if self.mean_burst < 1.0:
            raise ValueError("mean_burst must be >= 1")

    def inject(self, times_s, rss, keep, rng,
               full_scale=DEFAULT_FULL_SCALE) -> list[FaultEvent]:
        if not self.active:
            return []
        n = len(keep)
        if n == 0:
            return []
        starts = np.nonzero(
            rng.random(n) < self.intensity * self.drop_rate)[0]
        if starts.size == 0:
            return []
        lengths = rng.geometric(1.0 / self.mean_burst, size=starts.size)
        events: list[FaultEvent] = []
        for start, length in zip(starts, lengths):
            end = min(int(start) + int(length), n)
            if not keep[start:end].any():
                continue
            keep[start:end] = False
            events.append(FaultEvent(
                fault=self.name, start_index=int(start), end_index=end,
                magnitude=float(end - start)))
        return events


@dataclass(frozen=True)
class JitterFault(FaultModel):
    """Late / irregular timestamps: the MCU clock is not the host clock.

    Every surviving frame's timestamp is perturbed by up to
    ``intensity * max_jitter_s`` seconds (uniform), modelling scheduling
    delay on the receive side.  Sample values and order are untouched —
    this fault probes the pipeline's indifference to wall-clock jitter.
    """

    max_jitter_s: float = 0.02

    name: ClassVar[str] = "jitter"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.max_jitter_s <= 0:
            raise ValueError("max_jitter_s must be positive")

    def inject(self, times_s, rss, keep, rng,
               full_scale=DEFAULT_FULL_SCALE) -> list[FaultEvent]:
        if not self.active:
            return []
        n = len(times_s)
        if n == 0:
            return []
        scale = self.intensity * self.max_jitter_s
        times_s += rng.uniform(-scale, scale, size=n)
        return [FaultEvent(fault=self.name, start_index=0, end_index=n,
                           magnitude=scale)]


@dataclass(frozen=True)
class ChannelDropoutFault(FaultModel):
    """A photodiode goes dead (or intermittent): its channel reads a rail.

    One channel (``channel``, or an RNG pick) outputs ``dead_value`` over
    a window covering ``intensity * coverage`` of the stream; with
    ``intermittent=True`` the outage splits into ``flaps`` separate
    windows — a loose wire rather than a dead die.
    """

    channel: int | None = None
    coverage: float = 0.8
    dead_value: float = 0.0
    intermittent: bool = False
    flaps: int = 3

    name: ClassVar[str] = "channel_dropout"

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0.0 < self.coverage <= 1.0:
            raise ValueError("coverage must be within (0, 1]")
        if self.flaps < 1:
            raise ValueError("flaps must be >= 1")

    def inject(self, times_s, rss, keep, rng,
               full_scale=DEFAULT_FULL_SCALE) -> list[FaultEvent]:
        if not self.active:
            return []
        n, c = rss.shape
        if n == 0 or c == 0:
            return []
        channel = (int(rng.integers(0, c)) if self.channel is None
                   else self.channel)
        if not 0 <= channel < c:
            raise ValueError(
                f"channel {channel} out of range for {c} channels")
        pieces = self.flaps if self.intermittent else 1
        total = self.intensity * self.coverage
        events: list[FaultEvent] = []
        for _ in range(pieces):
            window = _pick_window(n, total / pieces, rng)
            if window is None:
                continue
            start, end = window
            rss[start:end, channel] = self.dead_value
            events.append(FaultEvent(
                fault=self.name, start_index=start, end_index=end,
                channel=channel, magnitude=self.dead_value))
        return events


@dataclass(frozen=True)
class SaturationFault(FaultModel):
    """An ambient step (direct sunlight) pins channels at full scale.

    Over a window covering ``intensity * coverage`` of the stream the
    affected channels read the converter's top code — the Section VI
    sunlight scenario as a hard fault rather than graded noise.
    """

    channels: tuple[int, ...] | None = None   # None -> every channel
    coverage: float = 0.6

    name: ClassVar[str] = "saturation"

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0.0 < self.coverage <= 1.0:
            raise ValueError("coverage must be within (0, 1]")

    def inject(self, times_s, rss, keep, rng,
               full_scale=DEFAULT_FULL_SCALE) -> list[FaultEvent]:
        if not self.active:
            return []
        n, c = rss.shape
        if n == 0 or c == 0:
            return []
        window = _pick_window(n, self.intensity * self.coverage, rng)
        if window is None:
            return []
        start, end = window
        channels = (tuple(range(c)) if self.channels is None
                    else self.channels)
        events: list[FaultEvent] = []
        for channel in channels:
            if not 0 <= channel < c:
                raise ValueError(
                    f"channel {channel} out of range for {c} channels")
            rss[start:end, channel] = full_scale
            events.append(FaultEvent(
                fault=self.name, start_index=start, end_index=end,
                channel=channel, magnitude=float(full_scale)))
        return events


@dataclass(frozen=True)
class StuckCodeFault(FaultModel):
    """The converter repeats one output code: a stuck SAR bit or DMA slot.

    One channel freezes at the value it held when the fault began, over a
    window covering ``intensity * coverage`` of the stream.  Unlike
    :class:`ChannelDropoutFault` the frozen level is an in-range code, so
    only flatness (not a rail) gives the fault away.
    """

    channel: int | None = None
    coverage: float = 0.5

    name: ClassVar[str] = "stuck_code"

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0.0 < self.coverage <= 1.0:
            raise ValueError("coverage must be within (0, 1]")

    def inject(self, times_s, rss, keep, rng,
               full_scale=DEFAULT_FULL_SCALE) -> list[FaultEvent]:
        if not self.active:
            return []
        n, c = rss.shape
        if n == 0 or c == 0:
            return []
        channel = (int(rng.integers(0, c)) if self.channel is None
                   else self.channel)
        if not 0 <= channel < c:
            raise ValueError(
                f"channel {channel} out of range for {c} channels")
        window = _pick_window(n, self.intensity * self.coverage, rng)
        if window is None:
            return []
        start, end = window
        stuck = float(rss[start, channel])
        rss[start:end, channel] = stuck
        return [FaultEvent(fault=self.name, start_index=start, end_index=end,
                           channel=channel, magnitude=stuck)]
