"""Deterministic composition of fault models over recordings and streams.

A :class:`FaultSchedule` bundles fault models with a seed and applies them
to a :class:`~repro.acquisition.sampler.Recording` (or its frame stream)
through RNG streams derived with :func:`repro.utils.derive_rng` — the same
keyed-hash scheme the campaign generator uses.  Two consequences follow:

* **Reproducible corpora.** The same schedule, seed and key always injects
  the same faults, regardless of iteration order or worker count.
* **Isolated randomness.** The fault layer derives its *own* streams under
  the ``"fault"`` namespace, so injecting faults never perturbs the draws
  that synthesized the corpus — a zero-intensity schedule is bit-identical
  to no schedule at all (the ``airfinger robustness`` intensity-0 point
  must match ``airfinger evaluate`` exactly).

Injections are surfaced in :mod:`repro.obs` as ``faults.injected`` /
``faults.frames_dropped`` counters and, when tracing is on, as events on a
``faults.inject`` span.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterator, Sequence

import numpy as np

from repro.acquisition.sampler import Recording
from repro.acquisition.stream import RssFrame, stream_frames
from repro.faults.models import DEFAULT_FULL_SCALE, FaultEvent, FaultModel
from repro.obs import MetricsRegistry, Tracer, get_registry, get_tracer
from repro.utils import derive_rng

__all__ = ["FaultInjection", "FaultSchedule"]


@dataclass(frozen=True)
class FaultInjection:
    """A faulted recording plus the ground truth of what was injected.

    ``kept_indices[j]`` is the original recording row behind surviving
    frame ``j`` — dropped frames appear as jumps in this map, which is
    exactly how :meth:`FaultSchedule.stream` exposes them to the
    pipeline's gap detector.
    """

    recording: Recording
    events: tuple[FaultEvent, ...]
    kept_indices: np.ndarray

    @property
    def n_dropped(self) -> int:
        """Frames removed by drop faults."""
        return int(self.kept_indices[-1] + 1 - len(self.kept_indices)) \
            if len(self.kept_indices) else 0


@dataclass(frozen=True)
class FaultSchedule:
    """An ordered set of fault models applied under derived RNG streams.

    Parameters
    ----------
    faults:
        Models applied in order (value faults see the effects of earlier
        ones, drops are resolved last).
    seed:
        Base seed for the ``"fault"`` RNG namespace; defaults to the
        campaign default so corpus and faults share provenance.
    full_scale:
        ADC top code passed to models that pin channels.
    """

    faults: tuple[FaultModel, ...] = ()
    seed: int = 2020
    full_scale: float = DEFAULT_FULL_SCALE
    metrics: MetricsRegistry | None = field(default=None, compare=False)
    tracer: Tracer | None = field(default=None, compare=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(self.faults))

    @property
    def active(self) -> bool:
        """False when every model is a guaranteed no-op."""
        return any(model.active for model in self.faults)

    def at(self, intensity: float) -> "FaultSchedule":
        """This schedule with every model rescaled by *intensity*."""
        if not 0.0 <= intensity <= 1.0:
            raise ValueError(
                f"intensity must be within [0, 1], got {intensity}")
        return replace(
            self, faults=tuple(m.at(intensity) for m in self.faults))

    def _rng_for(self, model: FaultModel, position: int,
                 key: tuple) -> np.random.Generator:
        return derive_rng(self.seed, "fault", model.name, position, *key)

    def inject(self, recording: Recording, *key) -> FaultInjection:
        """Apply the schedule to *recording* under the RNG stream *key*.

        *key* identifies the recording within the corpus (e.g. its sample
        index, or ``(user_id, session, repetition)``) so every recording
        gets an independent, reproducible fault draw.  Inactive schedules
        return the recording object unchanged — a true passthrough.
        """
        if not self.active:
            return FaultInjection(
                recording=recording, events=(),
                kept_indices=np.arange(recording.n_samples))
        times = recording.times_s.copy()
        rss = recording.rss.copy()
        keep = np.ones(recording.n_samples, dtype=bool)
        events: list[FaultEvent] = []
        for position, model in enumerate(self.faults):
            if not model.active:
                continue
            rng = self._rng_for(model, position, key)
            events.extend(model.inject(times, rss, keep, rng,
                                       full_scale=self.full_scale))
        kept_indices = np.nonzero(keep)[0]
        meta = dict(recording.meta)
        meta["fault_events"] = tuple(events)
        faulted = Recording(
            times_s=times[keep], rss=rss[keep],
            channel_names=recording.channel_names,
            sample_rate_hz=recording.sample_rate_hz,
            label=recording.label, meta=meta)
        self._observe(events, dropped=recording.n_samples - len(kept_indices))
        return FaultInjection(recording=faulted, events=tuple(events),
                              kept_indices=kept_indices)

    def apply_recording(self, recording: Recording, *key) -> Recording:
        """The faulted recording alone (see :meth:`inject`)."""
        return self.inject(recording, *key).recording

    def stream(self, recording: Recording, *key) -> Iterator[RssFrame]:
        """Frames of the faulted recording, indexed by ORIGINAL position.

        Surviving frames keep the row index they had before injection, so
        dropped frames show up as index jumps — the exact signal
        :meth:`AirFinger.feed <repro.core.pipeline.AirFinger.feed>` uses
        for gap detection.  With no active faults this is byte-for-byte
        ``stream_frames(recording)`` (pinned by the passthrough overhead
        gate in ``benchmarks/test_faults_overhead.py``).
        """
        if not self.active:
            yield from stream_frames(recording)
            return
        injection = self.inject(recording, *key)
        faulted = injection.recording
        rss = faulted.rss
        times = faulted.times_s
        for j, original in enumerate(injection.kept_indices):
            yield RssFrame(index=int(original), time_s=float(times[j]),
                           values=tuple(float(v) for v in rss[j]))

    def _observe(self, events: Sequence[FaultEvent], dropped: int) -> None:
        metrics = self.metrics if self.metrics is not None else get_registry()
        for event in events:
            metrics.counter("faults.injected", fault=event.fault).inc()
        if dropped:
            metrics.counter("faults.frames_dropped").inc(dropped)
        tracer = self.tracer if self.tracer is not None else get_tracer()
        if tracer.active and events:
            with tracer.span("faults.inject", n_events=len(events),
                             n_dropped=dropped) as span:
                for event in events:
                    span.add_event(
                        f"fault.{event.fault}", start=event.start_index,
                        end=event.end_index,
                        channel=-1 if event.channel is None else event.channel)
