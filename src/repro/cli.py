"""Command-line interface: generate, train, evaluate, demo, serve, power.

Everything a downstream user needs without writing Python::

    airfinger generate --users 3 --sessions 2 --reps 5 --out corpus.npz
    airfinger train --corpus corpus.npz --out stack.json
    airfinger evaluate --corpus corpus.npz --protocol overall
    airfinger robustness --corpus corpus.npz --out robustness.json
    airfinger demo --stack stack.json --gestures click,scroll_up,circle
    airfinger demo --stack stack.json --metrics-json metrics.json
    airfinger generate --out corpus.npz --trace-json trace.json
    airfinger trace trace.json [--top 10]
    airfinger stats metrics.json [--prometheus]
    airfinger serve --stack stack.json --port 7420
    airfinger loadgen --port 7420 --sessions 64 --duration 5
    airfinger top --port 7420
    airfinger telemetry timeline.jsonl
    airfinger profile --collapsed flame.collapsed -- generate --out c.npz
    airfinger bench compare --baseline benchmarks/baselines --current ledger/
    airfinger power

``serve`` runs the multi-stream gesture serving front-end
(:mod:`repro.serve`): one asyncio process multiplexing N device
connections through per-session engines, with bounded ingest queues,
drop-oldest backpressure and idle eviction (see ``docs/SERVING.md``).
``loadgen`` drives simulated 100 Hz devices against a running serve
process and reports sessions/core, p99 enqueue→processed frame latency
and the deadline-miss rate (``--report-json`` writes the full report;
``--telemetry-json`` additionally subscribes a ``watch`` connection and
records the server's live telemetry timeline; ``--fault-intensity``
injects a seeded frame-drop schedule into the offered load).

``top`` is the live terminal dashboard: it subscribes to a running
serve process's telemetry pushes and refreshes a screen of sessions,
per-tenant frame rates, sliding p99 latency, SLO burn rates and firing
alerts.  ``telemetry`` replays a recorded JSONL timeline (from
``serve --telemetry-json`` or ``loadgen --telemetry-json``) into a
summary: health-state counts, alert episodes, peak rates.

``robustness`` sweeps a deterministic fault schedule
(:mod:`repro.faults`) over the corpus and reports the accuracy-vs-fault
curve (JSON via ``--out``, markdown via ``--markdown``); its intensity-0
point is bit-identical to ``evaluate --protocol overall`` on the same
corpus.

``generate``, ``evaluate``, ``robustness`` and ``demo`` accept
``--metrics-json PATH``,
which dumps the process metrics registry (:mod:`repro.obs`) — per-stage
latency histograms, event/throughput counters, deadline misses — as a
JSON snapshot after the command finishes; ``stats`` renders such a
snapshot as tables or Prometheus text format.  The same three commands
accept ``--trace-json PATH`` (Chrome/Perfetto trace, loadable at
``ui.perfetto.dev``) and ``--trace-events PATH`` (JSONL event log),
which enable span tracing for the run and write the buffered spans when
it finishes; ``--trace-sample MODE`` overrides the sampling decision
(``0``/``off``, ``1``/``always``, or a ratio).  ``trace`` summarizes a
saved trace file: top spans by self-time, the critical path, and any
deadline-miss events.

``profile`` wraps any other subcommand in the continuous-profiling layer
(:mod:`repro.obs.prof`): a background :class:`SamplingProfiler` takes
stack samples at ``--hz`` while a :class:`StageProfile` attributes exact
exclusive self-time per pipeline stage; the hottest stages print as a
table and ``--collapsed`` / ``--chrome`` / ``--json`` export
flamegraph.pl collapsed stacks, a Chrome/Perfetto trace, and the raw
profile.  The hot commands (``generate``, ``evaluate``, ``robustness``,
``demo``, ``loadgen``) also accept ``--profile-json PATH`` to record the
stage profile without the sampler.

``bench`` works the persistent benchmark ledger
(:mod:`repro.obs.ledger`): ``bench compare --baseline <dir-or-file>
--current <dir-or-file>`` renders the per-metric trajectory against the
committed baseline and exits nonzero when any metric regressed beyond
its tolerance; ``bench show <ledger>`` prints a metric's history.  The
ledgers themselves are written by the benchmark suites under
``pytest --bench-report <dir>`` (see ``benchmarks/README.md``).

``generate`` and ``evaluate`` additionally write a
:class:`~repro.obs.manifest.RunManifest` next to their output — config
digest, seeds, package versions, platform, git SHA, metrics snapshot,
monotonic run duration — so every artifact can be traced back to the
exact invocation that produced it.

(Installed as the ``airfinger`` console script; also runnable as
``python -m repro.cli``.)
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import numpy as np

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="airfinger",
        description="airFinger (ICDCS 2020) reproduction toolkit")
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate",
                         help="simulate a data-collection campaign")
    gen.add_argument("--users", type=int, default=3)
    gen.add_argument("--sessions", type=int, default=2)
    gen.add_argument("--reps", type=int, default=5)
    gen.add_argument("--seed", type=int, default=2020)
    gen.add_argument("--workers", type=int, default=1,
                     help="worker processes (output is bit-identical "
                          "for every worker count)")
    gen.add_argument("--batch", type=int, default=64,
                     help="captures per batched radiometric pass")
    gen.add_argument("--chunk", type=int, default=None,
                     help="tasks per parallel work unit (default: auto)")
    gen.add_argument("--out", type=Path, required=True,
                     help="output corpus .npz path")
    gen.add_argument("--report-json", type=Path, default=None,
                     help="write wall-clock / throughput stats to this "
                          "JSON file")
    _add_metrics_json(gen)
    _add_trace_flags(gen)
    _add_profile_flag(gen)

    train = sub.add_parser("train",
                           help="train the recognition stack from a corpus")
    train.add_argument("--corpus", type=Path, required=True)
    train.add_argument("--out", type=Path, required=True,
                       help="output stack .json path")
    train.add_argument("--trees", type=int, default=60)

    ev = sub.add_parser("evaluate", help="run a paper protocol on a corpus")
    ev.add_argument("--corpus", type=Path, required=True)
    ev.add_argument("--protocol",
                    choices=("overall", "diversity", "inconsistency",
                             "tracking", "distinguisher", "stream"),
                    default="overall")
    ev.add_argument("--seed", type=int, default=2020,
                    help="campaign seed for the synthesized labelled "
                         "streams (stream protocol only)")
    ev.add_argument("--block", type=int, default=None,
                    help="frames per feed_block batch during stream "
                         "replay (stream protocol only; 1 forces the "
                         "per-frame path, default picks the offline "
                         "block size)")
    _add_metrics_json(ev)
    _add_trace_flags(ev)
    _add_profile_flag(ev)

    rob = sub.add_parser(
        "robustness",
        help="sweep fault intensity and report accuracy-vs-fault curves")
    rob.add_argument("--corpus", type=Path, required=True)
    rob.add_argument("--faults", type=str,
                     default="frame_drop,jitter,channel_dropout,"
                             "saturation,stuck_code",
                     help="comma list of fault models to inject "
                          "(frame_drop, jitter, channel_dropout, "
                          "saturation, stuck_code)")
    rob.add_argument("--channel", type=int, default=None,
                     help="pin channel-scoped faults to this photodiode "
                          "column (default: per-recording RNG pick)")
    rob.add_argument("--intensities", type=str, default="0,0.25,0.5,0.75,1",
                     help="comma list of fault intensities to sweep "
                          "(include 0 for the clean control point)")
    rob.add_argument("--seed", type=int, default=2020,
                     help="fault-layer RNG seed (independent of the "
                          "campaign streams)")
    rob.add_argument("--splits", type=int, default=5,
                     help="stratified folds for the detect protocol")
    rob.add_argument("--stream-samples", type=int, default=6,
                     help="faulted recordings replayed through the live "
                          "engine per intensity (0 disables)")
    rob.add_argument("--block", type=int, default=None,
                     help="frames per feed_block batch during the stream "
                          "replays (1 forces the per-frame path; the "
                          "curve is identical either way)")
    rob.add_argument("--out", type=Path, default=None,
                     help="write the accuracy-vs-fault curve to this "
                          "JSON file")
    rob.add_argument("--markdown", type=Path, default=None,
                     help="write the sweep as a markdown report")
    _add_metrics_json(rob)
    _add_trace_flags(rob)
    _add_profile_flag(rob)

    demo = sub.add_parser("demo",
                          help="stream a synthetic session through a stack")
    demo.add_argument("--stack", type=Path, required=True)
    demo.add_argument("--gestures", type=str,
                      default="click,circle,scroll_up")
    demo.add_argument("--user", type=int, default=0)
    demo.add_argument("--seed", type=int, default=2020)
    demo.add_argument("--block", type=int, default=None,
                      help="frames per feed_block batch during replay "
                           "(1 forces the per-frame path; the printed "
                           "events are identical either way)")
    _add_metrics_json(demo)
    _add_trace_flags(demo)
    _add_profile_flag(demo)

    stats = sub.add_parser(
        "stats", help="render a metrics snapshot written by --metrics-json")
    stats.add_argument("snapshot", type=Path,
                       help="snapshot JSON path (from --metrics-json)")
    stats.add_argument("--prometheus", action="store_true",
                       help="emit Prometheus text exposition format "
                            "instead of tables")

    trace = sub.add_parser(
        "trace", help="summarize a trace file written by --trace-json "
                      "or --trace-events")
    trace.add_argument("trace_file", type=Path,
                       help="Chrome trace JSON or JSONL event log")
    trace.add_argument("--top", type=int, default=10,
                       help="rows to show in the self-time and "
                            "deadline-miss tables")

    report = sub.add_parser(
        "report", help="write a markdown evaluation report for a corpus")
    report.add_argument("--corpus", type=Path, required=True)
    report.add_argument("--out", type=Path, required=True)

    serve = sub.add_parser(
        "serve", help="run the multi-stream gesture serving front-end")
    serve.add_argument("--host", type=str, default="127.0.0.1")
    serve.add_argument("--port", type=int, default=7420)
    serve.add_argument("--stack", type=Path, default=None,
                       help="trained stack .json; each session gets its "
                            "own engine built from it (default: bare "
                            "engines, segmentation + tracking only)")
    serve.add_argument("--idle-timeout", type=float, default=30.0,
                       help="seconds of silence before a session is "
                            "evicted (flushed + closed)")
    serve.add_argument("--max-queue", type=int, default=4096,
                       help="per-session ingest queue bound; overflow "
                            "drops the oldest frames (visible as "
                            "StreamGap events)")
    serve.add_argument("--max-batch", type=int, default=512,
                       help="max frames per feed_block dispatch batch")
    serve.add_argument("--slo", type=float, default=0.05,
                       help="enqueue->processed latency SLO in seconds "
                            "(misses count into serve.deadline_miss)")
    serve.add_argument("--telemetry-interval", type=float, default=1.0,
                       help="seconds between telemetry samples (watch "
                            "pushes, SLO/health evaluation)")
    serve.add_argument("--no-telemetry", action="store_true",
                       help="disable the live telemetry plane (watch "
                            "subscriptions are then rejected)")
    serve.add_argument("--telemetry-json", type=Path, default=None,
                       help="append every telemetry tick to this JSONL "
                            "timeline (replay with 'airfinger telemetry')")
    serve.add_argument("--shards", type=int, default=1,
                       help="run N shard worker processes behind a fleet "
                            "control front-end; --port becomes the "
                            "control port and the per-shard data ports "
                            "are advertised in every hello_ack")
    serve.add_argument("--reuse-port", action="store_true",
                       help="bind with SO_REUSEPORT; with --shards the "
                            "workers share ONE kernel-balanced data port "
                            "instead of port-per-shard tenant routing")
    serve.add_argument("--udp", action="store_true",
                       help="serve the datagram transport instead of "
                            "TCP (per-datagram session addressing; "
                            "lost datagrams surface as StreamGap "
                            "events, never as stalls)")

    loadgen = sub.add_parser(
        "loadgen", help="drive N simulated 100 Hz devices against a "
                        "running serve process")
    loadgen.add_argument("--host", type=str, default="127.0.0.1")
    loadgen.add_argument("--port", type=int, default=7420)
    loadgen.add_argument("--sessions", type=int, default=64)
    loadgen.add_argument("--duration", type=float, default=5.0,
                         help="seconds of stream each device sends")
    loadgen.add_argument("--rate", type=float, default=100.0,
                         help="per-device frame rate (Hz)")
    loadgen.add_argument("--frames-per-send", type=int, default=10,
                         help="frames batched into one wire message")
    loadgen.add_argument("--seed", type=int, default=2020,
                         help="seed of the synthesized device capture")
    loadgen.add_argument("--tenants", type=int, default=1,
                         help="spread the devices across N tenants "
                              "(tenant-0, tenant-1, ...); against a "
                              "sharded fleet each tenant's devices are "
                              "routed to the shard owning it")
    loadgen.add_argument("--report-json", type=Path, default=None,
                         help="write the load report (sessions/core, "
                              "p99 latency, deadline-miss rate) to this "
                              "JSON file")
    loadgen.add_argument("--telemetry-json", type=Path, default=None,
                         help="subscribe a watch connection for the run "
                              "and append the server's telemetry ticks "
                              "to this JSONL timeline")
    loadgen.add_argument("--watch-interval", type=float, default=None,
                         help="requested telemetry push cadence in "
                              "seconds (default: every server tick)")
    loadgen.add_argument("--fault-intensity", type=float, default=0.0,
                         help="inject a seeded frame-drop fault schedule "
                              "into the offered load (0 = clean control; "
                              "gaps surface as SLO breaches)")
    _add_profile_flag(loadgen)

    prof = sub.add_parser(
        "profile", help="run another subcommand under the continuous "
                        "profiler (stack sampler + stage attribution)")
    prof.add_argument("--hz", type=float, default=97.0,
                      help="stack-sampling rate (an off-round default "
                           "avoids aliasing with 100 Hz frame loops)")
    prof.add_argument("--top", type=int, default=20,
                      help="rows in the printed stage table")
    prof.add_argument("--collapsed", type=Path, default=None,
                      help="write flamegraph.pl-compatible collapsed "
                           "stacks (render with flamegraph.pl or "
                           "speedscope)")
    prof.add_argument("--chrome", type=Path, default=None,
                      help="write the sample timeline as Chrome/Perfetto "
                           "trace JSON (ui.perfetto.dev)")
    prof.add_argument("--json", dest="out_json", type=Path, default=None,
                      help="write the raw sampling + stage profiles as "
                           "JSON")
    prof.add_argument("cmd", nargs=argparse.REMAINDER,
                      help="the airfinger subcommand to profile "
                           "(prefix with -- to separate its flags)")

    bench = sub.add_parser(
        "bench", help="benchmark ledger: compare against a baseline, "
                      "show trajectories")
    bench_sub = bench.add_subparsers(dest="bench_command", required=True)
    cmp_p = bench_sub.add_parser(
        "compare", help="flag per-metric regressions beyond tolerance")
    cmp_p.add_argument("--baseline", type=Path, required=True,
                       help="baseline BENCH_<suite>.json file, or a "
                            "directory of them")
    cmp_p.add_argument("--current", type=Path, required=True,
                       help="current-run ledger file or directory")
    cmp_p.add_argument("--tolerance", type=float, default=None,
                       help="default relative tolerance for records that "
                            "do not pin their own (default 0.25)")
    cmp_p.add_argument("--json", action="store_true",
                       help="emit the comparison rows as JSON")
    show_p = bench_sub.add_parser(
        "show", help="print per-metric record history from a ledger")
    show_p.add_argument("ledger", type=Path,
                        help="BENCH_<suite>.json file or a directory of "
                             "them")
    show_p.add_argument("--last", type=int, default=10,
                        help="history entries per metric")

    top = sub.add_parser(
        "top", help="live telemetry dashboard for a running serve process")
    top.add_argument("--host", type=str, default="127.0.0.1")
    top.add_argument("--port", type=int, default=7420)
    top.add_argument("--interval", type=float, default=None,
                     help="requested push cadence in seconds (default: "
                          "every server telemetry tick)")
    top.add_argument("--ticks", type=int, default=0,
                     help="exit after this many refreshes (0 = run until "
                          "interrupted)")
    top.add_argument("--no-clear", action="store_true",
                     help="append screens instead of clearing the "
                          "terminal between refreshes")

    telemetry = sub.add_parser(
        "telemetry", help="summarize a recorded JSONL telemetry timeline")
    telemetry.add_argument("timeline", type=Path,
                           help="JSONL timeline path (from serve/loadgen "
                                "--telemetry-json)")
    telemetry.add_argument("--json", action="store_true",
                           help="emit the summary as JSON instead of text")
    telemetry.add_argument("--last", action="store_true",
                           help="also render the final tick as a "
                                "dashboard screen")

    sub.add_parser("power", help="print the power budget table")
    return parser


def _add_metrics_json(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--metrics-json", type=Path, default=None,
                        help="dump the repro.obs metrics snapshot "
                             "(stage latencies, counters) to this JSON "
                             "file when the command finishes")


def _add_trace_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--trace-json", type=Path, default=None,
                        help="enable span tracing and write a "
                             "Chrome/Perfetto trace (ui.perfetto.dev) "
                             "to this file when the command finishes")
    parser.add_argument("--trace-events", type=Path, default=None,
                        help="enable span tracing and write a JSONL "
                             "event log (one line per span/event) to "
                             "this file when the command finishes")
    parser.add_argument("--trace-sample", type=str, default=None,
                        help="trace sampling: 0/off, 1/always, or a "
                             "ratio in (0, 1); defaults to REPRO_TRACE "
                             "(or 'always' when a trace output path is "
                             "given)")


def _add_profile_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--profile-json", type=Path, default=None,
                        help="record the deterministic stage profile "
                             "(exclusive time per pipeline stage) for "
                             "the run and write it to this JSON file; "
                             "use 'airfinger profile' for stack "
                             "sampling too")


def _write_metrics_json(path: Path) -> None:
    from repro.obs import get_registry

    path.write_text(get_registry().snapshot().to_json() + "\n")
    print(f"metrics snapshot -> {path}")


def _configure_tracer(args) -> None:
    """Install a sampling tracer when the invocation asked for one."""
    from repro.obs import Tracer, set_tracer

    sample = getattr(args, "trace_sample", None)
    wants_output = (getattr(args, "trace_json", None) is not None
                    or getattr(args, "trace_events", None) is not None)
    if sample is None and wants_output:
        sample = "1"
    if sample is not None:
        set_tracer(Tracer(sample=sample))


def _write_trace_outputs(args) -> None:
    """Export the buffered spans to the requested trace file(s)."""
    trace_json = getattr(args, "trace_json", None)
    trace_events = getattr(args, "trace_events", None)
    if trace_json is None and trace_events is None:
        return
    from repro.obs import chrome_trace_json, get_tracer, spans_to_jsonl

    spans = get_tracer().finished_spans()
    if trace_json is not None:
        trace_json.write_text(chrome_trace_json(spans) + "\n")
        print(f"chrome trace ({len(spans)} spans) -> {trace_json}")
    if trace_events is not None:
        trace_events.write_text(spans_to_jsonl(spans))
        print(f"trace event log ({len(spans)} spans) -> {trace_events}")


# Monotonic start of the current invocation + the profile artifact it
# will write, stamped into every RunManifest (set by main()).
_RUN_START_S: float | None = None
_PROFILE_REF: dict | None = None


def _write_manifest(command: str, config: dict, seeds: dict,
                    path: Path) -> None:
    """Write a RunManifest for the finished command next to its output."""
    import time

    from repro.obs import (
        RunManifest,
        get_registry,
        get_tracer,
        summarize_trace,
    )

    spans = get_tracer().finished_spans()
    duration_s = (time.perf_counter() - _RUN_START_S
                  if _RUN_START_S is not None else None)
    manifest = RunManifest.create(
        command, config, seeds=seeds,
        metrics=get_registry().snapshot().to_dict(),
        trace_summary=summarize_trace(spans) if spans else None,
        duration_s=duration_s,
        profile=_PROFILE_REF)
    manifest.write(path)
    print(f"run manifest -> {path}")


# ---------------------------------------------------------------------------
# commands
# ---------------------------------------------------------------------------

def _cmd_generate(args) -> int:
    import json
    import time

    from repro.datasets import (
        CampaignConfig,
        CampaignGenerator,
        ParallelCampaignGenerator,
    )
    config = CampaignConfig(
        n_users=args.users, n_sessions=args.sessions,
        repetitions=args.reps, seed=args.seed)
    if args.workers > 1:
        generator = ParallelCampaignGenerator(
            config=config, workers=args.workers,
            chunk_size=args.chunk, batch_size=args.batch)
    else:
        generator = CampaignGenerator(config=config, batch_size=args.batch)
    start = time.perf_counter()
    corpus = generator.main_campaign()
    elapsed = time.perf_counter() - start
    corpus.save(args.out)
    rate = len(corpus) / elapsed if elapsed > 0 else float("inf")
    print(f"wrote {len(corpus)} samples to {args.out} "
          f"({elapsed:.2f}s wall, {rate:.1f} samples/s, "
          f"workers={args.workers}, batch={args.batch})")
    if args.report_json is not None:
        report = {
            "command": "generate",
            "n_samples": len(corpus),
            "wall_clock_s": elapsed,
            "samples_per_sec": rate,
            "workers": args.workers,
            "batch_size": args.batch,
            "chunk_size": args.chunk,
            "seed": args.seed,
            "n_users": args.users,
            "n_sessions": args.sessions,
            "repetitions": args.reps,
        }
        args.report_json.write_text(json.dumps(report, indent=2) + "\n")
        print(f"throughput report -> {args.report_json}")
    _write_manifest(
        "generate",
        config={"n_users": args.users, "n_sessions": args.sessions,
                "repetitions": args.reps, "seed": args.seed,
                "workers": args.workers, "batch_size": args.batch,
                "chunk_size": args.chunk, "out": str(args.out)},
        seeds={"campaign": args.seed},
        path=args.out.with_suffix(".manifest.json"))
    return 0


def _cmd_train(args) -> int:
    from repro.core.detector import DetectAimedRecognizer
    from repro.core.persistence import save_stack
    from repro.datasets import GestureCorpus
    from repro.ml.forest import RandomForestClassifier

    corpus = GestureCorpus.load(args.corpus)
    detect = corpus.filter(lambda s: not s.is_track_aimed)
    if len(detect) == 0:
        print("corpus holds no detect-aimed samples", file=sys.stderr)
        return 1
    detector = DetectAimedRecognizer(
        model_factory=lambda: RandomForestClassifier(
            n_estimators=args.trees, random_state=7))
    detector.fit(detect.signals(), detect.labels)
    save_stack(args.out, detector=detector)
    print(f"trained on {len(detect)} samples "
          f"({len(set(detect.labels))} gestures); stack -> {args.out}")
    return 0


def _cmd_evaluate(args) -> int:
    from repro.datasets import GestureCorpus
    from repro.eval.protocols import (
        compute_features,
        distinguisher_performance,
        gesture_inconsistency,
        individual_diversity,
        overall_detect_performance,
        track_direction_accuracy,
    )
    from repro.eval.report import format_confusion

    corpus = GestureCorpus.load(args.corpus)

    def finish() -> int:
        _write_manifest(
            "evaluate",
            config={"corpus": str(args.corpus),
                    "protocol": args.protocol,
                    "block": args.block,
                    "n_samples": len(corpus)},
            seeds={},
            path=args.corpus.with_name(
                f"{args.corpus.stem}.{args.protocol}.manifest.json"))
        return 0

    if args.protocol == "stream":
        from repro.core.detector import DetectAimedRecognizer
        from repro.core.pipeline import AirFinger
        from repro.datasets import CampaignConfig, CampaignGenerator
        from repro.eval.stream_protocols import evaluate_streams
        from repro.hand.gestures import GESTURE_NAMES

        users = sorted({int(u) for u in corpus.users}) or [0]
        generator = CampaignGenerator(CampaignConfig(
            n_users=max(users) + 1, seed=args.seed))
        streams = [generator.stream(u, list(GESTURE_NAMES), idle_s=0.8)
                   for u in users]
        # train the recognizer on the corpus so the replay scores
        # recognition, not just segmentation
        detector = None
        detect = corpus.filter(lambda s: not s.is_track_aimed)
        if len(detect):
            detector = DetectAimedRecognizer()
            detector.fit(detect.signals(), detect.labels)
        engine = AirFinger(config=corpus.config, detector=detector)
        score = evaluate_streams(engine, streams, block_size=args.block)
        for name, acc in score.per_gesture_accuracy().items():
            print(f"{name:<14} {acc:.2%}")
        print(f"detection recall     {score.detection_recall:.2%}")
        print(f"recognition accuracy {score.recognition_accuracy:.2%}")
        print(f"spurious events      {score.spurious_events}")
        return finish()
    if args.protocol == "tracking":
        result = track_direction_accuracy(corpus)
        for name, acc in result.direction_accuracy.items():
            print(f"{name:<14} {acc:.2%}")
        print(f"average        {result.average_direction_accuracy:.2%}")
        return finish()
    if args.protocol == "distinguisher":
        result = distinguisher_performance(corpus)
        print(str(result.summary))
        return finish()
    X = compute_features(corpus)
    protocol = {
        "overall": overall_detect_performance,
        "diversity": individual_diversity,
        "inconsistency": gesture_inconsistency,
    }[args.protocol]
    try:
        result = protocol(corpus, X=X)
    except ValueError as exc:
        print(f"cannot run {args.protocol!r} on this corpus: {exc}",
              file=sys.stderr)
        return 1
    print(format_confusion(result.summary.labels, result.summary.confusion))
    print()
    print(str(result.summary))
    return finish()


def _cmd_robustness(args) -> int:
    import json

    from repro.datasets import GestureCorpus
    from repro.eval.robustness import (
        render_robustness_markdown,
        robustness_sweep,
    )
    from repro.faults import (
        ChannelDropoutFault,
        FaultSchedule,
        FrameDropFault,
        JitterFault,
        SaturationFault,
        StuckCodeFault,
    )

    factories = {
        "frame_drop": lambda: FrameDropFault(),
        "jitter": lambda: JitterFault(),
        "channel_dropout": lambda: ChannelDropoutFault(channel=args.channel),
        "saturation": lambda: SaturationFault(),
        "stuck_code": lambda: StuckCodeFault(channel=args.channel),
    }
    names = [f.strip() for f in args.faults.split(",") if f.strip()]
    unknown = [n for n in names if n not in factories]
    if unknown:
        print(f"unknown fault model(s): {', '.join(unknown)} "
              f"(choose from {', '.join(sorted(factories))})",
              file=sys.stderr)
        return 1
    try:
        intensities = [float(w) for w in args.intensities.split(",") if w]
    except ValueError:
        print(f"cannot parse --intensities {args.intensities!r}",
              file=sys.stderr)
        return 1

    corpus = GestureCorpus.load(args.corpus)
    schedule = FaultSchedule(
        faults=tuple(factories[n]() for n in names), seed=args.seed)
    try:
        result = robustness_sweep(
            corpus, schedule, intensities=intensities,
            n_splits=args.splits, stream_samples=args.stream_samples,
            block_size=args.block)
    except ValueError as exc:
        print(f"cannot run robustness sweep on this corpus: {exc}",
              file=sys.stderr)
        return 1

    print(f"{'intensity':>9} {'accuracy':>9} {'injected':>9} "
          f"{'dropped':>8} {'gaps':>5} {'masks':>6}")
    for p in result.points:
        print(f"{p.intensity:>9g} {p.accuracy:>9.4f} {p.n_injected:>9} "
              f"{p.n_dropped:>8} {p.stream_gaps:>5} "
              f"{p.stream_mask_transitions:>6}")
    drop = result.accuracy_drop()
    if drop is not None:
        print(f"accuracy drop at worst intensity: {drop:.4f}")
    if args.out is not None:
        args.out.write_text(json.dumps(result.to_dict(), indent=2) + "\n")
        print(f"robustness curve -> {args.out}")
    if args.markdown is not None:
        args.markdown.write_text(render_robustness_markdown(result))
        print(f"robustness report -> {args.markdown}")
    _write_manifest(
        "robustness",
        config={"corpus": str(args.corpus), "faults": names,
                "intensities": intensities, "seed": args.seed,
                "splits": args.splits, "channel": args.channel,
                "block": args.block, "n_samples": len(corpus)},
        seeds={"faults": args.seed},
        path=args.corpus.with_name(
            f"{args.corpus.stem}.robustness.manifest.json"))
    return 0


def _cmd_demo(args) -> int:
    from repro.core.events import GestureEvent, ScrollUpdate, SegmentEvent
    from repro.core.persistence import load_stack
    from repro.datasets import CampaignConfig, CampaignGenerator

    stack = load_stack(args.stack)
    engine = stack["engine"]
    gestures = [g.strip() for g in args.gestures.split(",") if g.strip()]
    generator = CampaignGenerator(CampaignConfig(
        n_users=max(args.user + 1, 1), seed=args.seed))
    stream = generator.stream(args.user, gestures)
    truth = [n for n, _, _ in stream.recording.meta["segments"]
             if n != "idle"]
    print(f"ground truth: {truth}")
    for event in engine.feed_recording(stream.recording,
                                       block_size=args.block):
        if isinstance(event, SegmentEvent):
            print(f"t={event.start_time_s:6.2f}s segment "
                  f"[{event.start_index}, {event.end_index})")
        elif isinstance(event, GestureEvent):
            tag = "gesture" if event.accepted else "rejected"
            print(f"    -> {tag} {event.label!r} ({event.confidence:.0%})")
        elif isinstance(event, ScrollUpdate) and event.final:
            print(f"    -> {event.direction_name} at "
                  f"{event.velocity_mm_s:.0f} mm/s")
    return 0


def _cmd_serve(args) -> int:
    import asyncio

    from repro.serve import AirFingerServer, ServeConfig, SessionManager

    config = ServeConfig(
        max_queue_frames=args.max_queue, max_batch_frames=args.max_batch,
        idle_timeout_s=args.idle_timeout, latency_slo_s=args.slo)
    if args.shards > 1 and args.udp:
        print("--shards and --udp are mutually exclusive",
              file=sys.stderr)
        return 2
    if args.shards > 1:
        if args.stack is not None:
            print("--stack is not supported with --shards: the worker "
                  "processes build their own engines", file=sys.stderr)
            return 2
        return _serve_sharded(args, config)
    engine_factory = None
    if args.stack is not None:
        from repro.core.persistence import load_stack
        from repro.core.pipeline import AirFinger, AirFingerConfig
        from repro.obs import get_registry, get_tracer

        stack = load_stack(args.stack)
        detector = stack["detector"]
        interference = stack["interference_filter"]
        # stacks saved without an explicit config serve with the defaults
        stack_config = stack["config"] or AirFingerConfig()

        def engine_factory() -> AirFinger:
            return AirFinger(config=stack_config, detector=detector,
                             interference_filter=interference,
                             metrics=get_registry(), tracer=get_tracer())

    manager = SessionManager(config, engine_factory=engine_factory)
    if args.udp:
        from repro.serve import UdpAirFingerServer

        udp_server = UdpAirFingerServer(manager, host=args.host,
                                        port=args.port)

        async def run_udp() -> None:
            await udp_server.start()
            print(f"serving UDP on {udp_server.host}:{udp_server.port} "
                  f"(slo={config.latency_slo_s * 1e3:.0f}ms, "
                  f"idle-timeout={config.idle_timeout_s:.0f}s)")
            await asyncio.Event().wait()

        try:
            asyncio.run(run_udp())
        except KeyboardInterrupt:
            print("\nserve stopped")
        return 0
    server = AirFingerServer(
        manager, host=args.host, port=args.port,
        telemetry=not args.no_telemetry,
        telemetry_interval_s=args.telemetry_interval,
        timeline_path=args.telemetry_json, reuse_port=args.reuse_port)

    async def run() -> None:
        await server.start()
        telemetry = ("off" if server.telemetry is None
                     else f"{server.telemetry.interval_s:g}s")
        print(f"serving on {server.host}:{server.port} "
              f"(slo={config.latency_slo_s * 1e3:.0f}ms, "
              f"idle-timeout={config.idle_timeout_s:.0f}s, "
              f"telemetry={telemetry})")
        await server.serve_forever()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        print("\nserve stopped")
    return 0


def _serve_sharded(args, config) -> int:
    """``serve --shards N``: the multi-process fleet front-end."""
    import asyncio

    from repro.serve import ShardCluster, ShardConfig

    shard_config = ShardConfig(
        shards=args.shards, host=args.host, control_port=args.port,
        reuse_port=args.reuse_port, serve=config,
        telemetry_interval_s=args.telemetry_interval)

    async def run() -> None:
        async with ShardCluster(shard_config) as cluster:
            control = cluster.control
            ports = sorted({s["port"] for s in cluster.shard_listing})
            layout = (f"shared data port {ports[0]}" if len(ports) == 1
                      and shard_config.reuse_port
                      else f"data ports {ports}")
            print(f"fleet control on {control.host}:{control.port} — "
                  f"{args.shards} shard workers, {layout} "
                  f"(slo={config.latency_slo_s * 1e3:.0f}ms)")
            print("clients read the shard listing from hello_ack and "
                  "route data connections by tenant")
            await asyncio.Event().wait()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        print("\nfleet stopped")
    return 0


def _cmd_loadgen(args) -> int:
    import asyncio
    import json

    from repro.serve import LoadConfig, ServeClient, run_load

    config = LoadConfig(host=args.host, port=args.port,
                        sessions=args.sessions, duration_s=args.duration,
                        rate_hz=args.rate,
                        frames_per_send=args.frames_per_send,
                        seed=args.seed, tenants=args.tenants,
                        fault_intensity=args.fault_intensity)

    async def run():
        # a fleet front-end advertises its shard listing in hello_ack;
        # route the device connections accordingly, control/telemetry
        # stay on the dialed port (the merged view)
        probe = await ServeClient.connect(args.host, args.port,
                                          config.tenant, "route-probe")
        shards = probe.shards or None
        await probe.bye(timeout_s=5.0)
        return shards, await run_load(
            config, telemetry_path=args.telemetry_json,
            watch_interval_s=args.watch_interval, shards=shards)

    try:
        shards, report = asyncio.run(run())
    except ConnectionError as exc:
        print(f"cannot reach serve process at {args.host}:{args.port}: "
              f"{exc}", file=sys.stderr)
        return 1
    p99 = report.frame_latency_p99_s
    if shards:
        print(f"fleet             {len(shards)} shards "
              f"(routing {report.tenants} tenants by crc32)")
    print(f"sessions          {report.sessions}")
    print(f"frames sent       {report.frames_sent}")
    print(f"events received   {report.events_received}")
    print(f"backpressure drops {report.backpressure_drops:.0f}")
    print(f"p99 frame latency {p99 * 1e3:.2f} ms"
          if p99 is not None else "p99 frame latency n/a")
    print(f"deadline misses   {report.deadline_misses:.0f} "
          f"({report.deadline_miss_rate:.2%})")
    if report.late_batches:
        print(f"late send batches {report.late_batches} "
              f"(max lag {report.max_send_lag_s * 1e3:.1f} ms — the "
              f"offered load lagged its own schedule)")
    print(f"sessions/core     {report.sessions_per_core:.1f}")
    rtt = report.heartbeat_rtt_p99_ms
    if rtt is not None:
        print(f"heartbeat RTT p99 {rtt:.2f} ms")
    if args.telemetry_json is not None:
        print(f"telemetry ticks   {report.telemetry_ticks} "
              f"(alert episodes: {report.alerts_fired})")
        print(f"telemetry timeline -> {args.telemetry_json}")
    if args.report_json is not None:
        args.report_json.write_text(
            json.dumps(report.to_dict(), indent=2) + "\n")
        print(f"load report -> {args.report_json}")
    return 0


def _cmd_top(args) -> int:
    import asyncio
    import os

    from repro.obs import render_top
    from repro.serve import ServeClient

    async def run() -> int:
        try:
            client = await ServeClient.connect(
                args.host, args.port, "ops", f"top-{os.getpid()}")
        except (ConnectionError, OSError) as exc:
            print(f"cannot reach serve process at {args.host}:{args.port}: "
                  f"{exc}", file=sys.stderr)
            return 1
        await client.watch(args.interval)
        shown = 0
        try:
            while args.ticks <= 0 or shown < args.ticks:
                tick = await client.next_telemetry(timeout_s=60.0)
                if not args.no_clear:
                    # ANSI clear + home: repaint in place like top(1)
                    sys.stdout.write("\x1b[2J\x1b[H")
                print(render_top(tick))
                sys.stdout.flush()
                shown += 1
        finally:
            try:
                await client.bye(timeout_s=5.0)
            except Exception:
                pass
        return 0

    try:
        return asyncio.run(run())
    except KeyboardInterrupt:
        print("\ntop stopped")
        return 0


def _cmd_telemetry(args) -> int:
    import json

    from repro.obs import (
        load_timeline,
        render_telemetry_summary,
        render_top,
        summarize_timeline,
    )

    try:
        ticks = load_timeline(args.timeline)
    except (OSError, ValueError) as exc:
        print(f"cannot read telemetry timeline {args.timeline}: {exc}",
              file=sys.stderr)
        return 1
    summary = summarize_timeline(ticks)
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
    else:
        print(render_telemetry_summary(summary))
    if args.last and ticks:
        print()
        print(render_top(ticks[-1]))
    return 0


def _cmd_power(args) -> int:
    from repro.power import DutyCycle, PowerBudget, battery_life_hours
    schemes = {
        "always-on (paper)": DutyCycle.always_on(),
        "strobed LEDs": DutyCycle.strobed(),
        "wristband + BLE": DutyCycle.wristband(),
    }
    print(f"{'scheme':<20} {'front end':>10} {'total':>10} {'100mAh life':>12}")
    for name, duty in schemes.items():
        budget = PowerBudget(duty=duty)
        print(f"{name:<20} {budget.sensing_front_end_mw():>8.1f}mW "
              f"{budget.total_mw():>8.1f}mW "
              f"{battery_life_hours(budget):>10.1f}h")
    return 0


def _cmd_stats(args) -> int:
    from repro.obs import MetricsSnapshot, prometheus_text, render_snapshot

    try:
        snapshot = MetricsSnapshot.from_json(args.snapshot.read_text())
    except (OSError, ValueError, KeyError) as exc:
        print(f"cannot read metrics snapshot {args.snapshot}: {exc}",
              file=sys.stderr)
        return 1
    if args.prometheus:
        sys.stdout.write(prometheus_text(snapshot))
    else:
        print(render_snapshot(snapshot))
    return 0


def _cmd_trace(args) -> int:
    from repro.obs import load_trace, render_trace_summary, summarize_trace

    try:
        spans = load_trace(args.trace_file)
    except (OSError, ValueError, KeyError) as exc:
        print(f"cannot read trace {args.trace_file}: {exc}",
              file=sys.stderr)
        return 1
    sys.stdout.write(render_trace_summary(summarize_trace(spans),
                                          top=args.top))
    return 0


def _cmd_report(args) -> int:
    from repro.datasets import GestureCorpus
    from repro.eval.report_markdown import generate_report

    corpus = GestureCorpus.load(args.corpus)
    path = generate_report(corpus, args.out)
    print(f"report for {len(corpus)} samples -> {path}")
    return 0


def _cmd_profile(args) -> int:
    import json
    import time

    from repro.obs import (
        SamplingProfiler,
        StageProfile,
        render_stage_profile,
        set_stage_profile,
    )

    argv = list(args.cmd)
    if argv and argv[0] == "--":
        argv = argv[1:]
    if not argv:
        print("profile: no subcommand given (e.g. 'airfinger profile -- "
              "generate --out corpus.npz')", file=sys.stderr)
        return 2
    if argv[0] in ("profile", "bench"):
        print(f"profile: cannot wrap {argv[0]!r}", file=sys.stderr)
        return 2

    profiler = SamplingProfiler(hz=args.hz)
    profile = StageProfile()
    previous = set_stage_profile(profile)
    t0 = time.perf_counter()
    profiler.start()
    try:
        code = main(argv)
    finally:
        profiler.stop()
        set_stage_profile(previous)
    duration_s = time.perf_counter() - t0

    print()
    print(f"profiled '{' '.join(argv)}': {duration_s:.2f}s wall, "
          f"{profiler.n_samples} stack samples @ {profiler.hz:g} Hz")
    print(render_stage_profile(profile, top=args.top))
    if args.collapsed is not None:
        args.collapsed.write_text(profiler.collapsed() + "\n")
        print(f"collapsed stacks -> {args.collapsed}")
    if args.chrome is not None:
        args.chrome.write_text(profiler.chrome_json() + "\n")
        print(f"chrome trace -> {args.chrome}")
    if args.out_json is not None:
        payload = {
            "schema": 1,
            "command": argv,
            "duration_s": duration_s,
            "sampling": profiler.to_dict(),
            "stage_profile": profile.to_dict(),
        }
        args.out_json.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"profile -> {args.out_json}")
    return code


def _cmd_bench(args) -> int:
    import json

    from repro.obs import (
        compare_records,
        load_ledgers,
        render_comparison,
        render_trajectory,
    )

    if args.bench_command == "show":
        try:
            records = load_ledgers(args.ledger)
        except (OSError, ValueError, KeyError) as exc:
            print(f"cannot read ledger {args.ledger}: {exc}",
                  file=sys.stderr)
            return 1
        print(render_trajectory(records, last=args.last))
        return 0

    # A typo'd path must fail loudly: silently comparing an empty ledger
    # would wave every regression through the CI gate.
    for label, path in (("baseline", args.baseline),
                        ("current", args.current)):
        if not Path(path).exists():
            print(f"cannot read {label} ledger: {path} does not exist",
                  file=sys.stderr)
            return 1
    try:
        baseline = load_ledgers(args.baseline)
        current = load_ledgers(args.current)
    except (OSError, ValueError, KeyError) as exc:
        print(f"cannot read ledger: {exc}", file=sys.stderr)
        return 1
    rows = compare_records(baseline, current, tolerance=args.tolerance)
    if args.json:
        print(json.dumps([row.to_dict() for row in rows], indent=2))
    else:
        print(render_comparison(rows))
    regressions = [row for row in rows if row.status == "regression"]
    if regressions:
        for row in regressions:
            change = ("" if row.change is None
                      else f" ({row.change:+.1%}, tolerance "
                           f"{row.tolerance:.0%})")
            print(f"REGRESSION: {row.suite}/{row.benchmark}/{row.metric}"
                  f"{change}", file=sys.stderr)
        return 1
    return 0


_COMMANDS = {
    "generate": _cmd_generate,
    "train": _cmd_train,
    "evaluate": _cmd_evaluate,
    "robustness": _cmd_robustness,
    "demo": _cmd_demo,
    "report": _cmd_report,
    "stats": _cmd_stats,
    "trace": _cmd_trace,
    "serve": _cmd_serve,
    "loadgen": _cmd_loadgen,
    "top": _cmd_top,
    "telemetry": _cmd_telemetry,
    "power": _cmd_power,
    "profile": _cmd_profile,
    "bench": _cmd_bench,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    import time

    global _RUN_START_S, _PROFILE_REF
    args = build_parser().parse_args(argv)
    _RUN_START_S = time.perf_counter()
    _configure_tracer(args)
    profile_json = getattr(args, "profile_json", None)
    installed = previous = None
    swapped = False
    if profile_json is not None:
        from repro.obs import StageProfile, get_stage_profile, set_stage_profile

        # Under 'airfinger profile' a profile is already active — record
        # into it so the wrapper's table and this file agree.
        installed = get_stage_profile()
        if installed is None:
            installed = StageProfile()
            previous = set_stage_profile(installed)
            swapped = True
        _PROFILE_REF = {"path": str(profile_json), "kind": "stage_profile"}
    try:
        code = _COMMANDS[args.command](args)
    finally:
        if swapped:
            from repro.obs import set_stage_profile

            set_stage_profile(previous)
        if installed is not None:
            _PROFILE_REF = None
    if installed is not None:
        import json

        payload = {
            "schema": 1,
            "command": args.command,
            "duration_s": time.perf_counter() - _RUN_START_S,
            "stage_profile": installed.to_dict(),
        }
        profile_json.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"stage profile -> {profile_json}")
    if getattr(args, "metrics_json", None) is not None:
        _write_metrics_json(args.metrics_json)
    _write_trace_outputs(args)
    return code


if __name__ == "__main__":
    raise SystemExit(main())
