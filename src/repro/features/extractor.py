"""Feature-matrix extraction from segmented gesture signals."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.features import frequency as fd
from repro.features.registry import FeatureSpec, feature_registry

__all__ = ["FeatureExtractor", "extract_feature_matrix"]


@dataclass(frozen=True)
class FeatureExtractor:
    """Computes a fixed-order feature vector from a 1-D signal.

    The input signal is the ``ΔRSS^2`` output of the SBC stage for one
    segmented gesture (channel-combined), matching "extract a large number
    of features from the results of Data Processing" (Section IV-C1).

    Parameters
    ----------
    specs:
        Concrete features to compute, in output-column order.  Defaults to
        the full registry.
    """

    specs: tuple[FeatureSpec, ...] = ()

    def __post_init__(self) -> None:
        if not self.specs:
            object.__setattr__(self, "specs", feature_registry())
        names = [s.name for s in self.specs]
        if len(set(names)) != len(names):
            raise ValueError("duplicate feature names in extractor")
        object.__setattr__(
            self, "_wants_spectrum",
            any(s.family == "fft" for s in self.specs))

    @classmethod
    def full(cls) -> "FeatureExtractor":
        """Extractor over the entire registry."""
        return cls(specs=feature_registry())

    @classmethod
    def bold(cls) -> "FeatureExtractor":
        """Extractor over the bold subset (interference filter features)."""
        return cls(specs=tuple(s for s in feature_registry() if s.bold))

    @classmethod
    def for_families(cls, families: Iterable[str]) -> "FeatureExtractor":
        """Extractor restricted to the given Table-I families."""
        wanted = set(families)
        specs = tuple(s for s in feature_registry() if s.family in wanted)
        if not specs:
            raise ValueError(f"no registry features in families {sorted(wanted)}")
        return cls(specs=specs)

    @classmethod
    def for_names(cls, names: Iterable[str]) -> "FeatureExtractor":
        """Extractor restricted to the given concrete feature names."""
        wanted = list(names)
        by_name = {s.name: s for s in feature_registry()}
        missing = [n for n in wanted if n not in by_name]
        if missing:
            raise KeyError(f"unknown feature names: {missing}")
        return cls(specs=tuple(by_name[n] for n in wanted))

    @property
    def names(self) -> tuple[str, ...]:
        """Output column names."""
        return tuple(s.name for s in self.specs)

    @property
    def families(self) -> tuple[str, ...]:
        """Family of each output column."""
        return tuple(s.family for s in self.specs)

    @property
    def n_features(self) -> int:
        """Number of output columns."""
        return len(self.specs)

    def extract(self, signal: np.ndarray) -> np.ndarray:
        """Feature vector for one signal (finite float64, shape ``(F,)``).

        When the extractor carries FFT-family specs, the magnitude
        spectrum is computed once and shared across all of them (via
        :func:`repro.features.frequency.shared_spectrum`); each feature
        value stays bit-identical to computing it standalone.
        """
        signal = np.asarray(signal, dtype=np.float64).ravel()
        if self._wants_spectrum:
            with fd.shared_spectrum(signal):
                return np.array([spec.compute(signal) for spec in self.specs])
        return np.array([spec.compute(signal) for spec in self.specs])

    def extract_many(self, signals: Sequence[np.ndarray]) -> np.ndarray:
        """Feature matrix ``(N, F)`` for a batch of signals.

        Row ``i`` is exactly ``extract(signals[i])`` — the batch surface
        exists so callers (corpus extraction, the detector stack, the
        eval protocols) hit the shared-spectrum fast path per signal
        without writing their own loop.
        """
        if len(signals) == 0:
            return np.zeros((0, self.n_features))
        return np.stack([self.extract(s) for s in signals])


def extract_feature_matrix(signals: Sequence[np.ndarray],
                           extractor: FeatureExtractor | None = None,
                           ) -> tuple[np.ndarray, tuple[str, ...]]:
    """Convenience: ``(X, feature_names)`` for a batch of signals."""
    extractor = extractor or FeatureExtractor.full()
    return extractor.extract_many(signals), extractor.names
