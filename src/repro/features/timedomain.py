"""The 23 time-domain feature families of Table I, implemented from scratch.

Every function takes a 1-D ``float64`` array and returns a scalar ``float``
(or is parameterized by keyword arguments declared in the registry).  All
functions are total: degenerate inputs (empty, constant, too short for the
requested lag) return well-defined finite values rather than raising, since
a segmenter occasionally produces very short gesture candidates and the
classifier must still receive a finite feature vector.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "standard_deviation",
    "variance",
    "count_above_mean",
    "count_below_mean",
    "last_location_of_maximum",
    "first_location_of_maximum",
    "first_location_of_minimum",
    "partial_autocorrelation",
    "sample_entropy",
    "longest_strike_above_mean",
    "longest_strike_below_mean",
    "kurtosis",
    "ar_coefficient",
    "autocorrelation",
    "autocorrelation_relative",
    "number_of_peaks",
    "quantile",
    "complexity_invariant_distance",
    "mean_absolute_change",
    "time_reversal_asymmetry",
    "absolute_energy",
    "energy_ratio_by_chunks",
    "approximate_entropy",
    "series_length",
    "linear_trend_slope",
    "linear_trend_r2",
    "augmented_dickey_fuller",
    "c3",
]


def _clean(x: np.ndarray) -> np.ndarray:
    x = np.asarray(x, dtype=np.float64).ravel()
    if x.size == 0:
        return x
    return np.nan_to_num(x, nan=0.0, posinf=0.0, neginf=0.0)


# ---------------------------------------------------------------------------
# dispersion & location
# ---------------------------------------------------------------------------

def standard_deviation(x: np.ndarray) -> float:
    """Population standard deviation."""
    x = _clean(x)
    return float(np.std(x)) if x.size else 0.0


def variance(x: np.ndarray) -> float:
    """Population variance."""
    x = _clean(x)
    return float(np.var(x)) if x.size else 0.0


def count_above_mean(x: np.ndarray) -> float:
    """Fraction of samples strictly above the mean (length-normalized)."""
    x = _clean(x)
    if x.size == 0:
        return 0.0
    return float(np.mean(x > x.mean()))


def count_below_mean(x: np.ndarray) -> float:
    """Fraction of samples strictly below the mean (length-normalized)."""
    x = _clean(x)
    if x.size == 0:
        return 0.0
    return float(np.mean(x < x.mean()))


def last_location_of_maximum(x: np.ndarray) -> float:
    """Relative index (0..1) of the last occurrence of the maximum."""
    x = _clean(x)
    if x.size == 0:
        return 0.0
    return float((x.size - 1 - np.argmax(x[::-1])) / x.size)


def first_location_of_maximum(x: np.ndarray) -> float:
    """Relative index (0..1) of the first occurrence of the maximum."""
    x = _clean(x)
    if x.size == 0:
        return 0.0
    return float(np.argmax(x) / x.size)


def first_location_of_minimum(x: np.ndarray) -> float:
    """Relative index (0..1) of the first occurrence of the minimum."""
    x = _clean(x)
    if x.size == 0:
        return 0.0
    return float(np.argmin(x) / x.size)


def quantile(x: np.ndarray, q: float = 0.5) -> float:
    """The q-quantile of the series."""
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"q must be within [0, 1], got {q}")
    x = _clean(x)
    if x.size == 0:
        return 0.0
    return float(np.quantile(x, q))


def series_length(x: np.ndarray) -> float:
    """Number of samples ("Length" in Table I)."""
    return float(np.asarray(x).size)


# ---------------------------------------------------------------------------
# correlation structure
# ---------------------------------------------------------------------------

def autocorrelation(x: np.ndarray, lag: int = 1) -> float:
    """Sample autocorrelation at *lag* (0 for degenerate input).

    Computed as the Pearson correlation of the series with its lagged
    self, normalizing by both segments' own variances: Cauchy-Schwarz
    then bounds the value to ``[-1, 1]`` for every input, where the
    whole-series-variance estimator can exceed 1 at large lags on short,
    spiky series.
    """
    if lag < 1:
        raise ValueError(f"lag must be >= 1, got {lag}")
    x = _clean(x)
    n = x.size
    if n <= lag + 1:
        return 0.0
    head = x[:-lag]
    tail = x[lag:]
    # sqrt each variance before multiplying: the product of two tiny
    # variances (a near-constant series of denormal-scale values) can
    # underflow to zero even when both factors are representable
    s_head = float(np.sqrt(head.var()))
    s_tail = float(np.sqrt(tail.var()))
    denominator = s_head * s_tail
    if denominator < 1e-300:
        return 0.0
    cov = np.mean((head - head.mean()) * (tail - tail.mean()))
    return float(np.clip(cov / denominator, -1.0, 1.0))


def autocorrelation_relative(x: np.ndarray, fraction: float = 0.5) -> float:
    """Autocorrelation at a lag that is a *fraction* of the series length.

    Gesture repetitions scale the whole waveform in time (a double circle
    is two copies of a circle), so periodicity shows up at length-relative
    lags rather than at any fixed lag.
    """
    if not 0.0 < fraction < 1.0:
        raise ValueError(f"fraction must be in (0, 1), got {fraction}")
    x = _clean(x)
    lag = max(1, int(round(fraction * x.size)))
    if x.size <= lag + 1:
        return 0.0
    return autocorrelation(x, lag)


def partial_autocorrelation(x: np.ndarray, lag: int = 1) -> float:
    """Partial autocorrelation at *lag* via the Durbin-Levinson recursion."""
    if lag < 1:
        raise ValueError(f"lag must be >= 1, got {lag}")
    x = _clean(x)
    if x.size <= lag + 1:
        return 0.0
    rho = np.array([1.0] + [autocorrelation(x, k) for k in range(1, lag + 1)])
    # Durbin-Levinson
    phi = np.zeros((lag + 1, lag + 1))
    phi[1, 1] = rho[1]
    for k in range(2, lag + 1):
        num = rho[k] - np.dot(phi[k - 1, 1:k], rho[1:k][::-1])
        den = 1.0 - np.dot(phi[k - 1, 1:k], rho[1:k])
        phi[k, k] = num / den if abs(den) > 1e-12 else 0.0
        for j in range(1, k):
            phi[k, j] = phi[k - 1, j] - phi[k, k] * phi[k - 1, k - j]
    return float(np.clip(phi[lag, lag], -1.0, 1.0))


def ar_coefficient(x: np.ndarray, k: int = 1, order: int = 4) -> float:
    """Coefficient *k* of a least-squares AR(*order*) model (k=0 is intercept)."""
    if order < 1:
        raise ValueError(f"order must be >= 1, got {order}")
    if not 0 <= k <= order:
        raise ValueError(f"k must be within [0, {order}], got {k}")
    x = _clean(x)
    n = x.size
    if n <= order + 2:
        return 0.0
    rows = np.stack([x[order - j - 1: n - j - 1] for j in range(order)], axis=1)
    design = np.column_stack([np.ones(len(rows)), rows])
    target = x[order:]
    coeffs, *_ = np.linalg.lstsq(design, target, rcond=None)
    value = float(coeffs[k])
    return value if math.isfinite(value) else 0.0


# ---------------------------------------------------------------------------
# entropy & complexity
# ---------------------------------------------------------------------------

def _phi_counts(x: np.ndarray, m: int, r: float, count_self: bool) -> np.ndarray:
    """Per-template counts of m-length template matches within tolerance r."""
    n = x.size - m + 1
    templates = np.lib.stride_tricks.sliding_window_view(x, m)
    # Chebyshev distance between all template pairs, vectorized
    diff = np.abs(templates[:, None, :] - templates[None, :, :]).max(axis=2)
    matches = (diff <= r).sum(axis=1).astype(np.float64)
    if not count_self:
        matches -= 1.0
    return np.maximum(matches, 0.0)


def approximate_entropy(x: np.ndarray, m: int = 2, r_factor: float = 0.2) -> float:
    """ApEn(m, r) with tolerance ``r = r_factor * std(x)``."""
    if m < 1:
        raise ValueError(f"m must be >= 1, got {m}")
    x = _clean(x)
    n = x.size
    if n < m + 2 or n > 4000:  # quadratic cost guard
        x = x[:4000]
        n = x.size
        if n < m + 2:
            return 0.0
    r = r_factor * np.std(x)
    if r < 1e-300:
        return 0.0

    def phi(mm: int) -> float:
        counts = _phi_counts(x, mm, r, count_self=True)
        frac = counts / (n - mm + 1)
        return float(np.mean(np.log(np.maximum(frac, 1e-300))))

    return abs(phi(m) - phi(m + 1))


def sample_entropy(x: np.ndarray, m: int = 2, r_factor: float = 0.2) -> float:
    """SampEn(m, r) with tolerance ``r = r_factor * std(x)``."""
    if m < 1:
        raise ValueError(f"m must be >= 1, got {m}")
    x = _clean(x)
    n = x.size
    if n > 4000:
        x = x[:4000]
        n = x.size
    if n < m + 2:
        return 0.0
    r = r_factor * np.std(x)
    if r < 1e-300:
        return 0.0
    # B: m-length matches, A: (m+1)-length matches, excluding self-matches
    b = _phi_counts(x[: n - 1], m, r, count_self=False).sum()
    a = _phi_counts(x, m + 1, r, count_self=False).sum()
    if b <= 0.0:
        return 0.0
    if a <= 0.0:
        return float(np.log(b) + 1e-12)  # no (m+1) matches: maximal irregularity proxy
    return float(-np.log(a / b))


def complexity_invariant_distance(x: np.ndarray, normalize: bool = True) -> float:
    """CID (Batista et al. 2014): ``sqrt(sum(diff(x)^2))``, optionally z-normed."""
    x = _clean(x)
    if x.size < 2:
        return 0.0
    if normalize:
        s = np.std(x)
        if s < 1e-300:
            return 0.0
        x = (x - x.mean()) / s
    return float(np.sqrt(np.sum(np.diff(x) ** 2)))


def c3(x: np.ndarray, lag: int = 1) -> float:
    """The c3 nonlinearity statistic (Schreiber & Schmitz 1997)."""
    if lag < 1:
        raise ValueError(f"lag must be >= 1, got {lag}")
    x = _clean(x)
    n = x.size
    if n <= 2 * lag:
        return 0.0
    return float(np.mean(x[2 * lag:] * x[lag:n - lag] * x[: n - 2 * lag]))


def time_reversal_asymmetry(x: np.ndarray, lag: int = 1) -> float:
    """Time-reversal asymmetry statistic at *lag*."""
    if lag < 1:
        raise ValueError(f"lag must be >= 1, got {lag}")
    x = _clean(x)
    n = x.size
    if n <= 2 * lag:
        return 0.0
    a = x[2 * lag:]
    b = x[lag: n - lag]
    c = x[: n - 2 * lag]
    return float(np.mean(a * a * b - b * c * c))


# ---------------------------------------------------------------------------
# shape & runs
# ---------------------------------------------------------------------------

def kurtosis(x: np.ndarray) -> float:
    """Excess kurtosis (Fisher definition)."""
    x = _clean(x)
    if x.size < 4:
        return 0.0
    s = np.std(x)
    if s < 1e-300:
        return 0.0
    return float(np.mean(((x - x.mean()) / s) ** 4) - 3.0)


def _longest_run(mask: np.ndarray) -> int:
    if mask.size == 0 or not mask.any():
        return 0
    padded = np.concatenate([[0], mask.astype(np.int8), [0]])
    edges = np.diff(padded)
    starts = np.nonzero(edges == 1)[0]
    ends = np.nonzero(edges == -1)[0]
    return int((ends - starts).max())


def longest_strike_above_mean(x: np.ndarray) -> float:
    """Longest run of consecutive samples above the mean (length-normalized)."""
    x = _clean(x)
    if x.size == 0:
        return 0.0
    return _longest_run(x > x.mean()) / x.size


def longest_strike_below_mean(x: np.ndarray) -> float:
    """Longest run of consecutive samples below the mean (length-normalized)."""
    x = _clean(x)
    if x.size == 0:
        return 0.0
    return _longest_run(x < x.mean()) / x.size


def number_of_peaks(x: np.ndarray, support: int = 3,
                    smooth: int = 1) -> float:
    """Count of samples larger than their *support* neighbours on both sides.

    With ``smooth > 1`` the signal is moving-average filtered first, so the
    count reflects envelope humps (gesture strokes) rather than sample
    noise — a double circle has twice the humps of a circle regardless of
    tempo.
    """
    if support < 1:
        raise ValueError(f"support must be >= 1, got {support}")
    if smooth < 1:
        raise ValueError(f"smooth must be >= 1, got {smooth}")
    x = _clean(x)
    if smooth > 1 and x.size >= smooth:
        x = np.convolve(x, np.ones(smooth) / smooth, mode="same")
    n = x.size
    if n < 2 * support + 1:
        return 0.0
    core = x[support: n - support]
    is_peak = np.ones(core.size, dtype=bool)
    for k in range(1, support + 1):
        is_peak &= core > x[support - k: n - support - k]
        is_peak &= core > x[support + k: n - support + k]
    return float(is_peak.sum())


# ---------------------------------------------------------------------------
# energy & change
# ---------------------------------------------------------------------------

def absolute_energy(x: np.ndarray) -> float:
    """Sum of squared values, normalized by length (mean power)."""
    x = _clean(x)
    if x.size == 0:
        return 0.0
    return float(np.mean(x * x))


def mean_absolute_change(x: np.ndarray) -> float:
    """Mean of absolute first differences."""
    x = _clean(x)
    if x.size < 2:
        return 0.0
    return float(np.mean(np.abs(np.diff(x))))


def energy_ratio_by_chunks(x: np.ndarray, n_chunks: int = 10,
                           chunk: int = 0) -> float:
    """Energy of chunk *chunk* divided by total energy."""
    if n_chunks < 1:
        raise ValueError(f"n_chunks must be >= 1, got {n_chunks}")
    if not 0 <= chunk < n_chunks:
        raise ValueError(f"chunk must be within [0, {n_chunks}), got {chunk}")
    x = _clean(x)
    if x.size == 0:
        return 0.0
    total = float(np.sum(x * x))
    if total < 1e-300:
        return 0.0
    parts = np.array_split(x, n_chunks)
    return float(np.sum(parts[chunk] ** 2) / total)


# ---------------------------------------------------------------------------
# trend & stationarity
# ---------------------------------------------------------------------------

def _linear_fit(x: np.ndarray) -> tuple[float, float]:
    """(slope, r^2) of x against its sample index."""
    n = x.size
    t = np.arange(n, dtype=np.float64)
    t -= t.mean()
    y = x - x.mean()
    denom = np.sum(t * t)
    if denom < 1e-300:
        return 0.0, 0.0
    slope = float(np.sum(t * y) / denom)
    ss_tot = float(np.sum(y * y))
    if ss_tot < 1e-300:
        return slope, 0.0
    ss_reg = slope * slope * denom
    return slope, float(min(ss_reg / ss_tot, 1.0))


def linear_trend_slope(x: np.ndarray) -> float:
    """Slope of the least-squares line through the series."""
    x = _clean(x)
    if x.size < 2:
        return 0.0
    return _linear_fit(x)[0]


def linear_trend_r2(x: np.ndarray) -> float:
    """R^2 of the least-squares line through the series."""
    x = _clean(x)
    if x.size < 2:
        return 0.0
    return _linear_fit(x)[1]


def augmented_dickey_fuller(x: np.ndarray, max_lag: int = 1) -> float:
    """ADF test statistic (t-ratio of the unit-root coefficient).

    A fixed-lag implementation of the augmented Dickey-Fuller regression
    ``Δx_t = α + β x_{t-1} + Σ γ_i Δx_{t-i} + ε``; returns the t-statistic
    of ``β``.  Strongly negative values indicate stationarity.
    """
    if max_lag < 0:
        raise ValueError(f"max_lag must be >= 0, got {max_lag}")
    x = _clean(x)
    n = x.size
    if n < max_lag + 8:
        return 0.0
    dx = np.diff(x)
    start = max_lag
    target = dx[start:]
    cols = [np.ones(target.size), x[start:-1]]
    for i in range(1, max_lag + 1):
        cols.append(dx[start - i: dx.size - i])
    design = np.column_stack(cols)
    coeffs, residuals, rank, _ = np.linalg.lstsq(design, target, rcond=None)
    dof = target.size - design.shape[1]
    if dof <= 0 or rank < design.shape[1]:
        return 0.0
    resid = target - design @ coeffs
    sigma2 = float(resid @ resid) / dof
    try:
        cov = sigma2 * np.linalg.inv(design.T @ design)
    except np.linalg.LinAlgError:
        return 0.0
    se = math.sqrt(max(cov[1, 1], 1e-300))
    stat = float(coeffs[1] / se)
    return stat if math.isfinite(stat) else 0.0
