"""Feature selection via Random Forest importance feedback (Section IV-C1).

The paper extracts a large candidate pool with tsfresh, ranks candidates by
the importance feedback of an RF classifier, and keeps the top 25 feature
*kinds* (families).  :func:`rank_families` reproduces the ranking;
:class:`FeatureSelector` wraps it in a fit/transform interface and can also
select individual feature columns for the ablation benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.features.extractor import FeatureExtractor
from repro.ml.forest import RandomForestClassifier

__all__ = ["rank_families", "FeatureSelector"]


def rank_families(X: np.ndarray,
                  feature_names: Sequence[str],
                  families: Sequence[str],
                  y: np.ndarray,
                  n_estimators: int = 40,
                  random_state: int = 0) -> list[tuple[str, float]]:
    """Rank Table-I families by summed RF Gini importance, descending.

    Parameters
    ----------
    X, y:
        Candidate feature matrix and labels.
    feature_names, families:
        Per-column name and family (as provided by
        :class:`~repro.features.extractor.FeatureExtractor`).
    n_estimators, random_state:
        Ranking-forest parameters.
    """
    X = np.asarray(X, dtype=np.float64)
    if X.shape[1] != len(feature_names) or X.shape[1] != len(families):
        raise ValueError(
            f"X has {X.shape[1]} columns but {len(feature_names)} names / "
            f"{len(families)} families")
    forest = RandomForestClassifier(
        n_estimators=n_estimators, random_state=random_state)
    forest.fit(X, y)
    totals: dict[str, float] = {}
    for family, importance in zip(families, forest.feature_importances_):
        totals[family] = totals.get(family, 0.0) + float(importance)
    return sorted(totals.items(), key=lambda kv: kv[1], reverse=True)


@dataclass
class FeatureSelector:
    """Select the most important families (or columns) from the registry pool.

    Parameters
    ----------
    top_k_families:
        Number of families to keep.  25 keeps every Table-I family — the
        paper's final configuration; smaller values drive the feature-count
        ablation.
    n_estimators, random_state:
        Parameters of the ranking forest.
    """

    top_k_families: int = 25
    n_estimators: int = 40
    random_state: int = 0

    ranking_: list[tuple[str, float]] = field(init=False, repr=False,
                                              default_factory=list)
    selected_families_: tuple[str, ...] = field(init=False, repr=False,
                                                default=())
    column_mask_: np.ndarray = field(init=False, repr=False, default=None)

    def __post_init__(self) -> None:
        if self.top_k_families < 1:
            raise ValueError("top_k_families must be >= 1")

    def fit(self, X: np.ndarray, y: np.ndarray,
            extractor: FeatureExtractor | None = None) -> "FeatureSelector":
        """Rank families on ``(X, y)`` and record the selection mask."""
        extractor = extractor or FeatureExtractor.full()
        self.ranking_ = rank_families(
            X, extractor.names, extractor.families, y,
            n_estimators=self.n_estimators, random_state=self.random_state)
        keep = [fam for fam, _ in self.ranking_[: self.top_k_families]]
        self.selected_families_ = tuple(keep)
        keep_set = set(keep)
        self.column_mask_ = np.array(
            [fam in keep_set for fam in extractor.families])
        return self

    def _check_fitted(self) -> None:
        if self.column_mask_ is None:
            raise RuntimeError("selector is not fitted; call fit() first")

    def transform(self, X: np.ndarray) -> np.ndarray:
        """Project a full-registry feature matrix onto the selected columns."""
        self._check_fitted()
        X = np.asarray(X, dtype=np.float64)
        if X.shape[1] != self.column_mask_.size:
            raise ValueError(
                f"X has {X.shape[1]} columns, selector was fit on "
                f"{self.column_mask_.size}")
        return X[:, self.column_mask_]

    def fit_transform(self, X: np.ndarray, y: np.ndarray,
                      extractor: FeatureExtractor | None = None) -> np.ndarray:
        """Fit then transform in one call."""
        return self.fit(X, y, extractor).transform(X)

    def selected_extractor(self) -> FeatureExtractor:
        """An extractor that computes only the selected families."""
        self._check_fitted()
        return FeatureExtractor.for_families(self.selected_families_)
