"""Frequency-domain feature families of Table I: FFT and CWT (Ricker).

The FFT features describe the magnitude spectrum of the ``ΔRSS^2`` signal
(rub gestures concentrate energy at the stroke frequency; clicks are
broadband; circles are low-frequency).  The continuous wavelet transform
uses the Ricker ("Mexican hat") wavelet, implemented directly since recent
scipy versions removed ``scipy.signal.ricker``.
"""

from __future__ import annotations

from contextlib import contextmanager

import numpy as np

__all__ = [
    "fft_coefficient_abs",
    "fft_spectral_centroid",
    "fft_spectral_spread",
    "fft_spectral_entropy",
    "fft_peak_frequency_bin",
    "ricker_wavelet",
    "cwt_ricker",
    "cwt_energy",
    "cwt_peak_width",
    "shared_spectrum",
]


def _clean(x: np.ndarray) -> np.ndarray:
    x = np.asarray(x, dtype=np.float64).ravel()
    return np.nan_to_num(x, nan=0.0, posinf=0.0, neginf=0.0)


def _compute_magnitude_spectrum(x: np.ndarray) -> np.ndarray:
    x = _clean(x)
    if x.size < 2:
        return np.zeros(1)
    return np.abs(np.fft.rfft(x - x.mean()))


# (signal, spectrum) installed by shared_spectrum(); every FFT feature of
# the Table-I family starts from this spectrum, so an extractor sweeping
# many FFT specs over one segment can compute the rfft once.
_active_spectrum: tuple[np.ndarray, np.ndarray] | None = None


@contextmanager
def shared_spectrum(x: np.ndarray):
    """Compute the magnitude spectrum of *x* once and share it.

    Inside the context, any FFT feature called on the *same array object*
    reuses the precomputed spectrum instead of re-running the rfft.  The
    shared value is the output of the exact computation each feature
    would have performed itself, so every feature value is bit-identical
    with or without the context.  Contexts nest; other signals are
    unaffected.
    """
    global _active_spectrum
    previous = _active_spectrum
    _active_spectrum = (x, _compute_magnitude_spectrum(x))
    try:
        yield
    finally:
        _active_spectrum = previous


def _magnitude_spectrum(x: np.ndarray) -> np.ndarray:
    """One-sided magnitude spectrum of the mean-removed signal."""
    active = _active_spectrum
    if active is not None and active[0] is x:
        return active[1]
    return _compute_magnitude_spectrum(x)


# ---------------------------------------------------------------------------
# FFT family
# ---------------------------------------------------------------------------

def fft_coefficient_abs(x: np.ndarray, k: int = 1) -> float:
    """Magnitude of the k-th FFT coefficient, energy-normalized.

    Normalizing by the total spectral magnitude makes the coefficient a
    *shape* descriptor, invariant to the raw RSS amplitude — exactly the
    robustness property the paper's selection favours.
    """
    if k < 0:
        raise ValueError(f"k must be >= 0, got {k}")
    mag = _magnitude_spectrum(x)
    total = mag.sum()
    if total < 1e-300 or k >= mag.size:
        return 0.0
    return float(mag[k] / total)


def fft_spectral_centroid(x: np.ndarray) -> float:
    """Centroid of the magnitude spectrum in relative frequency (0..0.5)."""
    mag = _magnitude_spectrum(x)
    total = mag.sum()
    if total < 1e-300:
        return 0.0
    n_fft = 2 * (mag.size - 1) if mag.size > 1 else 1
    freqs = np.arange(mag.size) / max(n_fft, 1)
    return float(np.sum(freqs * mag) / total)


def fft_spectral_spread(x: np.ndarray) -> float:
    """Standard deviation of the spectrum around its centroid."""
    mag = _magnitude_spectrum(x)
    total = mag.sum()
    if total < 1e-300:
        return 0.0
    n_fft = 2 * (mag.size - 1) if mag.size > 1 else 1
    freqs = np.arange(mag.size) / max(n_fft, 1)
    centroid = np.sum(freqs * mag) / total
    return float(np.sqrt(np.sum(((freqs - centroid) ** 2) * mag) / total))


def fft_spectral_entropy(x: np.ndarray) -> float:
    """Shannon entropy of the normalized power spectrum (nats)."""
    mag = _magnitude_spectrum(x)
    power = mag * mag
    total = power.sum()
    if total < 1e-300:
        return 0.0
    p = power / total
    p = p[p > 1e-300]
    return float(-np.sum(p * np.log(p)))


def fft_peak_frequency_bin(x: np.ndarray) -> float:
    """Relative frequency (0..0.5) of the strongest non-DC component."""
    mag = _magnitude_spectrum(x)
    if mag.size < 2:
        return 0.0
    k = int(np.argmax(mag[1:])) + 1
    n_fft = 2 * (mag.size - 1)
    return float(k / n_fft)


# ---------------------------------------------------------------------------
# CWT family (Ricker / Mexican-hat)
# ---------------------------------------------------------------------------

def ricker_wavelet(points: int, width: float) -> np.ndarray:
    """The Ricker wavelet of the given *width* sampled over *points*."""
    if points < 1:
        raise ValueError(f"points must be >= 1, got {points}")
    if width <= 0:
        raise ValueError(f"width must be positive, got {width}")
    a = float(width)
    norm = 2.0 / (np.sqrt(3.0 * a) * np.pi ** 0.25)
    t = np.arange(points) - (points - 1) / 2.0
    gauss = np.exp(-(t * t) / (2.0 * a * a))
    return norm * (1.0 - (t * t) / (a * a)) * gauss


def cwt_ricker(x: np.ndarray, widths: tuple[float, ...] = (2.0, 5.0, 10.0, 20.0)
               ) -> np.ndarray:
    """Continuous wavelet transform, one row per width (same length as x)."""
    x = _clean(x)
    if x.size == 0:
        return np.zeros((len(widths), 0))
    rows = []
    for w in widths:
        points = min(10 * int(np.ceil(w)), max(x.size, 1))
        kernel = ricker_wavelet(points, w)
        rows.append(np.convolve(x, kernel, mode="same"))
    return np.stack(rows)


def cwt_energy(x: np.ndarray, width: float = 5.0) -> float:
    """Mean squared CWT response at *width*, normalized by signal energy.

    The normalization removes raw amplitude, leaving a scale-occupancy
    descriptor: how much of the signal's structure lives at this width.
    """
    x = _clean(x)
    if x.size < 2:
        return 0.0
    energy = float(np.mean(x * x))
    if energy < 1e-300:
        return 0.0
    row = cwt_ricker(x, (width,))[0]
    return float(np.mean(row * row) / energy)


def cwt_peak_width(x: np.ndarray,
                   widths: tuple[float, ...] = (2.0, 4.0, 8.0, 16.0, 32.0)
                   ) -> float:
    """The width whose CWT response is strongest (dominant event scale)."""
    x = _clean(x)
    if x.size < 2:
        return 0.0
    responses = cwt_ricker(x, widths)
    scores = np.max(np.abs(responses), axis=1)
    if float(scores.max()) < 1e-300:
        return 0.0
    return float(widths[int(np.argmax(scores))])
