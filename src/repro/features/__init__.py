"""Feature-extraction substrate: the paper's tsfresh-equivalent toolbox.

Table I of the paper lists 25 selected feature *families* (23 time-domain +
FFT + CWT), chosen from a large tsfresh candidate pool via Random Forest
importance feedback.  Since tsfresh is not available offline, this
subpackage implements every Table-I family from scratch:

* :mod:`repro.features.timedomain` — the 23 time-domain families.
* :mod:`repro.features.frequency` — FFT and continuous wavelet (Ricker)
  features.
* :mod:`repro.features.registry` — the named, parameterized feature
  catalogue, including the 9 **bold** families reused by the
  interference-removal classifier (Section IV-F).
* :mod:`repro.features.extractor` — vectorized extraction of feature
  matrices from segmented ``ΔRSS^2`` signals.
* :mod:`repro.features.selection` — importance ranking and family-level
  top-k selection (Section IV-C1).
"""

from repro.features.registry import (
    BOLD_FAMILIES,
    CANDIDATE_FAMILIES,
    FAMILY_NAMES,
    FeatureSpec,
    all_feature_names,
    bold_feature_names,
    extended_registry,
    feature_registry,
    family_of,
)
from repro.features.extractor import FeatureExtractor, extract_feature_matrix
from repro.features.selection import FeatureSelector, rank_families

__all__ = [
    "BOLD_FAMILIES",
    "CANDIDATE_FAMILIES",
    "FAMILY_NAMES",
    "FeatureSpec",
    "all_feature_names",
    "bold_feature_names",
    "feature_registry",
    "extended_registry",
    "family_of",
    "FeatureExtractor",
    "extract_feature_matrix",
    "FeatureSelector",
    "rank_families",
]
