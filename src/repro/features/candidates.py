"""Candidate features beyond Table I — the rest of the tsfresh-style pool.

Section IV-C1 extracts "a large number of candidate features" and keeps
the 25 kinds of Table I after Random-Forest importance ranking.  To
reproduce the *selection* (not just its outcome) the pool must contain
plausible candidates that did **not** make the cut; this module implements
a representative set of standard tsfresh calculators outside Table I.
They are excluded from the recognition pipeline — their only job is to
compete in `benchmarks/test_table1_selection.py`.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "mean_value",
    "median_value",
    "max_value",
    "min_value",
    "skewness",
    "zero_crossings",
    "mean_second_derivative",
    "ratio_beyond_sigma",
    "binned_entropy",
    "variance_larger_than_std",
    "index_mass_quantile",
    "range_ratio",
    "sum_of_reoccurring_values",
    "percentage_of_reoccurring_points",
]


def _clean(x: np.ndarray) -> np.ndarray:
    x = np.asarray(x, dtype=np.float64).ravel()
    if x.size == 0:
        return x
    return np.nan_to_num(x, nan=0.0, posinf=0.0, neginf=0.0)


def mean_value(x: np.ndarray) -> float:
    """Plain mean — amplitude-coupled, a classic selection victim."""
    x = _clean(x)
    return float(x.mean()) if x.size else 0.0


def median_value(x: np.ndarray) -> float:
    """Plain median."""
    x = _clean(x)
    return float(np.median(x)) if x.size else 0.0


def max_value(x: np.ndarray) -> float:
    """Maximum sample value."""
    x = _clean(x)
    return float(x.max()) if x.size else 0.0


def min_value(x: np.ndarray) -> float:
    """Minimum sample value."""
    x = _clean(x)
    return float(x.min()) if x.size else 0.0


def skewness(x: np.ndarray) -> float:
    """Third standardized moment."""
    x = _clean(x)
    if x.size < 3:
        return 0.0
    s = x.std()
    if s < 1e-300:
        return 0.0
    return float(np.mean(((x - x.mean()) / s) ** 3))


def zero_crossings(x: np.ndarray) -> float:
    """Sign changes of the mean-removed series (length-normalized)."""
    x = _clean(x)
    if x.size < 2:
        return 0.0
    centred = x - x.mean()
    signs = np.sign(centred)
    signs[signs == 0] = 1
    return float(np.mean(signs[1:] != signs[:-1]))


def mean_second_derivative(x: np.ndarray) -> float:
    """Mean central second difference."""
    x = _clean(x)
    if x.size < 3:
        return 0.0
    return float(np.mean(x[2:] - 2 * x[1:-1] + x[:-2]) / 2.0)


def ratio_beyond_sigma(x: np.ndarray, r: float = 2.0) -> float:
    """Fraction of samples more than ``r`` standard deviations from the mean."""
    if r <= 0:
        raise ValueError(f"r must be positive, got {r}")
    x = _clean(x)
    if x.size == 0:
        return 0.0
    s = x.std()
    if s < 1e-300:
        return 0.0
    return float(np.mean(np.abs(x - x.mean()) > r * s))


def binned_entropy(x: np.ndarray, bins: int = 10) -> float:
    """Shannon entropy of the value histogram (nats)."""
    if bins < 2:
        raise ValueError(f"bins must be >= 2, got {bins}")
    x = _clean(x)
    if x.size == 0 or np.ptp(x) < 1e-300:
        return 0.0
    hist, _ = np.histogram(x, bins=bins)
    p = hist / hist.sum()
    p = p[p > 0]
    return float(-np.sum(p * np.log(p)))


def variance_larger_than_std(x: np.ndarray) -> float:
    """1.0 when variance exceeds the standard deviation (units artefact)."""
    x = _clean(x)
    if x.size == 0:
        return 0.0
    v = x.var()
    return float(v > np.sqrt(v))


def index_mass_quantile(x: np.ndarray, q: float = 0.5) -> float:
    """Relative index where the cumulative |x| mass reaches quantile *q*."""
    if not 0.0 < q < 1.0:
        raise ValueError(f"q must be in (0, 1), got {q}")
    x = np.abs(_clean(x))
    total = x.sum()
    if x.size == 0 or total < 1e-300:
        return 0.0
    cum = np.cumsum(x) / total
    return float((np.argmax(cum >= q) + 1) / x.size)


def range_ratio(x: np.ndarray) -> float:
    """Peak-to-peak over max |value| — a crude crest descriptor."""
    x = _clean(x)
    if x.size == 0:
        return 0.0
    denom = np.abs(x).max()
    if denom < 1e-300:
        return 0.0
    return float(np.ptp(x) / denom)


def sum_of_reoccurring_values(x: np.ndarray) -> float:
    """Sum of values that occur more than once (quantized to counts)."""
    x = np.round(_clean(x), 6)
    if x.size == 0:
        return 0.0
    values, counts = np.unique(x, return_counts=True)
    return float(values[counts > 1].sum())


def percentage_of_reoccurring_points(x: np.ndarray) -> float:
    """Fraction of samples whose (quantized) value occurs more than once."""
    x = np.round(_clean(x), 6)
    if x.size == 0:
        return 0.0
    _, inverse, counts = np.unique(x, return_inverse=True,
                                   return_counts=True)
    return float(np.mean(counts[inverse] > 1))
