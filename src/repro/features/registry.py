"""The named feature catalogue: every Table-I family with its variants.

Table I of the paper lists 25 selected feature *families* (rows); most
families expand into several concrete parameterized features (e.g.
``quantile`` at several ``q``, ``autocorrelation`` at several lags), the
same way tsfresh expands its calculators.  The registry enumerates all
concrete features with stable names of the form ``family[__param=value...]``.

Nine families are printed **bold** in Table I — they are the subset reused
by the interference-removal classifier of Section IV-F.  The markdown
source of the paper loses the bold markup, so which nine rows were bold is
not recoverable; we designate the nine families below (amplitude, energy,
regularity and trend descriptors) as the bold set and record the assumption
in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Callable

import numpy as np

from repro.features import frequency as fd
from repro.features import timedomain as td

__all__ = [
    "FeatureSpec",
    "feature_registry",
    "extended_registry",
    "all_feature_names",
    "bold_feature_names",
    "family_of",
    "FAMILY_NAMES",
    "BOLD_FAMILIES",
    "CANDIDATE_FAMILIES",
]

# The 25 Table-I families (23 time-domain + FFT + CWT).
FAMILY_NAMES: tuple[str, ...] = (
    "standard_deviation",
    "variance",
    "count_mean",                 # Count below/above mean
    "last_location_of_maximum",
    "partial_autocorrelation",
    "first_location_extrema",     # First location of minimum/maximum
    "sample_entropy",
    "longest_strike",             # Longest strike above/below mean
    "kurtosis",
    "ar",
    "autocorrelation",
    "number_of_peaks",
    "quantile",
    "cid",                        # Complexity-invariant distance
    "mean_absolute_change",
    "time_reversal_asymmetry",
    "absolute_energy",
    "energy_ratio_by_chunks",
    "approximate_entropy",
    "length",
    "linear_trend",
    "augmented_dickey_fuller",
    "c3",
    "fft",
    "cwt",
)

# Candidate families from the wider tsfresh-style pool that Table I does
# NOT include: they compete in the selection reproduction
# (benchmarks/test_table1_selection.py) but never feed the pipeline.
CANDIDATE_FAMILIES: tuple[str, ...] = (
    "cand_mean",
    "cand_median",
    "cand_extrema",
    "cand_skewness",
    "cand_zero_crossings",
    "cand_second_derivative",
    "cand_ratio_beyond_sigma",
    "cand_binned_entropy",
    "cand_variance_flag",
    "cand_index_mass_quantile",
    "cand_range_ratio",
    "cand_reoccurring",
)

# The nine bold families used by the gesture / non-gesture filter.
BOLD_FAMILIES: tuple[str, ...] = (
    "standard_deviation",
    "variance",
    "number_of_peaks",
    "mean_absolute_change",
    "absolute_energy",
    "sample_entropy",
    "autocorrelation",
    "fft",
    "linear_trend",
)


@dataclass(frozen=True)
class FeatureSpec:
    """One concrete, parameterized feature.

    Parameters
    ----------
    name:
        Unique stable identifier, e.g. ``"quantile__q=0.8"``.
    family:
        The Table-I row this feature belongs to.
    func:
        Scalar feature function ``f(x, **params) -> float``.
    params:
        Keyword arguments bound at extraction time.
    category:
        ``"time"`` or ``"frequency"``.
    bold:
        Whether the family is in the bold (interference-filter) subset.
    """

    name: str
    family: str
    func: Callable[..., float]
    params: dict = field(default_factory=dict)
    category: str = "time"
    bold: bool = False

    def __post_init__(self) -> None:
        if (self.family not in FAMILY_NAMES
                and self.family not in CANDIDATE_FAMILIES):
            raise ValueError(f"unknown family {self.family!r}")
        if self.category not in ("time", "frequency"):
            raise ValueError(f"category must be 'time' or 'frequency'")

    @property
    def is_table1(self) -> bool:
        """True when the family is one of the paper's Table-I rows."""
        return self.family in FAMILY_NAMES

    def compute(self, signal: np.ndarray) -> float:
        """Evaluate the feature on *signal*, guaranteeing a finite float."""
        value = float(self.func(signal, **self.params))
        if not np.isfinite(value):
            return 0.0
        return value


def _spec(family: str, func: Callable[..., float],
          category: str = "time", **params) -> FeatureSpec:
    if params:
        suffix = "__" + "_".join(f"{k}={v}" for k, v in sorted(params.items()))
    else:
        suffix = ""
    base = func.__name__
    return FeatureSpec(
        name=f"{base}{suffix}",
        family=family,
        func=func,
        params=params,
        category=category,
        bold=family in BOLD_FAMILIES)


@lru_cache(maxsize=1)
def feature_registry() -> tuple[FeatureSpec, ...]:
    """All concrete features, in a stable order."""
    specs: list[FeatureSpec] = [
        _spec("standard_deviation", td.standard_deviation),
        _spec("variance", td.variance),
        _spec("count_mean", td.count_above_mean),
        _spec("count_mean", td.count_below_mean),
        _spec("last_location_of_maximum", td.last_location_of_maximum),
        _spec("first_location_extrema", td.first_location_of_maximum),
        _spec("first_location_extrema", td.first_location_of_minimum),
        _spec("sample_entropy", td.sample_entropy),
        _spec("longest_strike", td.longest_strike_above_mean),
        _spec("longest_strike", td.longest_strike_below_mean),
        _spec("kurtosis", td.kurtosis),
        _spec("mean_absolute_change", td.mean_absolute_change),
        _spec("absolute_energy", td.absolute_energy),
        _spec("approximate_entropy", td.approximate_entropy),
        _spec("length", td.series_length),
        _spec("linear_trend", td.linear_trend_slope),
        _spec("linear_trend", td.linear_trend_r2),
        _spec("augmented_dickey_fuller", td.augmented_dickey_fuller),
        _spec("cid", td.complexity_invariant_distance, normalize=True),
        _spec("cid", td.complexity_invariant_distance, normalize=False),
    ]
    for lag in (1, 2, 3):
        specs.append(_spec("partial_autocorrelation",
                           td.partial_autocorrelation, lag=lag))
        specs.append(_spec("time_reversal_asymmetry",
                           td.time_reversal_asymmetry, lag=lag))
        specs.append(_spec("c3", td.c3, lag=lag))
    for lag in (1, 2, 3, 5, 10, 20, 40):
        specs.append(_spec("autocorrelation", td.autocorrelation, lag=lag))
    for fraction in (0.25, 0.33, 0.5):
        specs.append(_spec("autocorrelation", td.autocorrelation_relative,
                           fraction=fraction))
    for k in range(5):
        specs.append(_spec("ar", td.ar_coefficient, k=k, order=4))
    for support in (1, 3, 5):
        specs.append(_spec("number_of_peaks", td.number_of_peaks,
                           support=support))
    for support in (3, 6):
        specs.append(_spec("number_of_peaks", td.number_of_peaks,
                           support=support, smooth=15))
    for q in (0.1, 0.25, 0.5, 0.75, 0.9):
        specs.append(_spec("quantile", td.quantile, q=q))
    for chunk in range(10):
        specs.append(_spec("energy_ratio_by_chunks",
                           td.energy_ratio_by_chunks,
                           n_chunks=10, chunk=chunk))
    for k in (1, 2, 3, 4, 5, 6, 8):
        specs.append(_spec("fft", fd.fft_coefficient_abs,
                           category="frequency", k=k))
    specs.extend([
        _spec("fft", fd.fft_spectral_centroid, category="frequency"),
        _spec("fft", fd.fft_spectral_spread, category="frequency"),
        _spec("fft", fd.fft_spectral_entropy, category="frequency"),
        _spec("fft", fd.fft_peak_frequency_bin, category="frequency"),
    ])
    for width in (2.0, 5.0, 10.0, 20.0):
        specs.append(_spec("cwt", fd.cwt_energy,
                           category="frequency", width=width))
    specs.append(_spec("cwt", fd.cwt_peak_width, category="frequency"))

    names = [s.name for s in specs]
    if len(set(names)) != len(names):
        dupes = sorted({n for n in names if names.count(n) > 1})
        raise RuntimeError(f"duplicate feature names in registry: {dupes}")
    return tuple(specs)


@lru_cache(maxsize=1)
def extended_registry() -> tuple[FeatureSpec, ...]:
    """The Table-I features plus the wider candidate pool.

    This is the "large number of candidate features" of Section IV-C1:
    the selection benchmark ranks this pool and checks that the Table-I
    families dominate the top of the ranking.
    """
    from repro.features import candidates as cd

    extra: list[FeatureSpec] = [
        _spec("cand_mean", cd.mean_value),
        _spec("cand_median", cd.median_value),
        _spec("cand_extrema", cd.max_value),
        _spec("cand_extrema", cd.min_value),
        _spec("cand_skewness", cd.skewness),
        _spec("cand_zero_crossings", cd.zero_crossings),
        _spec("cand_second_derivative", cd.mean_second_derivative),
        _spec("cand_variance_flag", cd.variance_larger_than_std),
        _spec("cand_range_ratio", cd.range_ratio),
        _spec("cand_reoccurring", cd.sum_of_reoccurring_values),
        _spec("cand_reoccurring", cd.percentage_of_reoccurring_points),
    ]
    for r in (1.0, 2.0, 3.0):
        extra.append(_spec("cand_ratio_beyond_sigma",
                           cd.ratio_beyond_sigma, r=r))
    for bins in (5, 10, 20):
        extra.append(_spec("cand_binned_entropy",
                           cd.binned_entropy, bins=bins))
    for q in (0.25, 0.5, 0.75):
        extra.append(_spec("cand_index_mass_quantile",
                           cd.index_mass_quantile, q=q))
    return feature_registry() + tuple(extra)


def all_feature_names() -> tuple[str, ...]:
    """Names of every concrete feature, in registry order."""
    return tuple(s.name for s in feature_registry())


def bold_feature_names() -> tuple[str, ...]:
    """Names of the bold-subset features (interference filter inputs)."""
    return tuple(s.name for s in feature_registry() if s.bold)


def family_of(feature_name: str) -> str:
    """The Table-I family a concrete feature belongs to."""
    for s in feature_registry():
        if s.name == feature_name:
            return s.family
    raise KeyError(f"unknown feature {feature_name!r}")
