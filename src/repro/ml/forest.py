"""Random forest: bagged CART trees with Gini importances and OOB scoring.

This is the paper's workhorse classifier (Section IV-C2) and the source of
the feature-importance feedback that drives feature selection (Section
IV-C1).  Bootstrap resampling is implemented as integer sample weights so
no resampled matrices are materialized.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.ml.base import check_X, check_X_y, encode_labels
from repro.ml.tree import DecisionTreeClassifier
from repro.utils import derive_seed, ensure_rng

__all__ = ["RandomForestClassifier"]


@dataclass
class RandomForestClassifier:
    """Bagged ensemble of randomized CART trees.

    Parameters
    ----------
    n_estimators:
        Number of trees.
    max_depth, min_samples_split, min_samples_leaf:
        Passed to every tree.
    max_features:
        Features sampled per node; default ``"sqrt"`` (the standard forest
        setting).
    bootstrap:
        Draw a bootstrap resample per tree (False trains every tree on the
        full data; only the per-node feature sampling then differs).
    oob_score:
        Compute the out-of-bag accuracy estimate after fitting.
    random_state:
        Master seed; per-tree seeds are derived deterministically.
    """

    n_estimators: int = 60
    max_depth: int | None = None
    min_samples_split: int = 2
    min_samples_leaf: int = 1
    max_features: int | str | None = "sqrt"
    bootstrap: bool = True
    oob_score: bool = False
    random_state: int | None = None

    classes_: np.ndarray = field(init=False, repr=False, default=None)
    estimators_: list[DecisionTreeClassifier] = field(
        init=False, repr=False, default_factory=list)
    feature_importances_: np.ndarray = field(init=False, repr=False, default=None)
    oob_score_: float | None = field(init=False, repr=False, default=None)

    def __post_init__(self) -> None:
        if self.n_estimators < 1:
            raise ValueError(f"n_estimators must be >= 1, got {self.n_estimators}")

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RandomForestClassifier":
        """Fit the ensemble on ``(X, y)``."""
        X, y = check_X_y(X, y)
        self.classes_, codes = encode_labels(y)
        n = len(X)
        master = self.random_state if self.random_state is not None else 0
        rng = ensure_rng(master)
        self.estimators_ = []
        importances = np.zeros(X.shape[1])
        oob_votes = np.zeros((n, len(self.classes_)))
        for t in range(self.n_estimators):
            seed = derive_seed(master, "tree", t)
            tree = DecisionTreeClassifier(
                max_depth=self.max_depth,
                min_samples_split=self.min_samples_split,
                min_samples_leaf=self.min_samples_leaf,
                max_features=self.max_features,
                random_state=seed)
            if self.bootstrap:
                picks = rng.integers(0, n, size=n)
                weights = np.bincount(picks, minlength=n).astype(np.float64)
            else:
                weights = np.ones(n)
            tree.fit(X, codes, sample_weight=weights,
                     n_classes=len(self.classes_))
            self.estimators_.append(tree)
            importances += tree.feature_importances_
            if self.oob_score and self.bootstrap:
                oob_mask = weights == 0
                if oob_mask.any():
                    oob_votes[oob_mask] += tree.predict_proba(X[oob_mask])
        self.feature_importances_ = importances / self.n_estimators
        total = self.feature_importances_.sum()
        if total > 0:
            self.feature_importances_ /= total
        if self.oob_score and self.bootstrap:
            voted = oob_votes.sum(axis=1) > 0
            if voted.any():
                pred = np.argmax(oob_votes[voted], axis=1)
                self.oob_score_ = float(np.mean(pred == codes[voted]))
            else:
                self.oob_score_ = None
        return self

    def _check_fitted(self) -> None:
        if not self.estimators_:
            raise RuntimeError("classifier is not fitted; call fit() first")

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Mean leaf-histogram probability over trees, ``(N, K)``."""
        self._check_fitted()
        X = check_X(X)
        acc = np.zeros((len(X), len(self.classes_)))
        for tree in self.estimators_:
            acc += tree.predict_proba(X)
        return acc / len(self.estimators_)

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predicted labels (majority soft vote)."""
        proba = self.predict_proba(X)
        return self.classes_[np.argmax(proba, axis=1)]

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        """Mean accuracy on ``(X, y)``."""
        return float(np.mean(self.predict(X) == np.asarray(y)))
