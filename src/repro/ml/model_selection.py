"""Data-splitting protocols used by the paper's evaluation.

* Stratified train/test split at a given test fraction (Fig. 9 sweep).
* Stratified k-fold cross-validation (the "five cross-validation" of the
  overall evaluation, Fig. 10).
* Leave-one-group-out, the protocol behind both the individual-diversity
  experiment (groups = users, Fig. 11) and the gesture-inconsistency
  experiment (groups = sessions, Fig. 12).
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.utils import ensure_rng

__all__ = [
    "train_test_split",
    "StratifiedKFold",
    "leave_one_group_out",
    "cross_val_accuracy",
]


def train_test_split(n: int, test_fraction: float,
                     y: np.ndarray | None = None,
                     rng: int | np.random.Generator | None = None
                     ) -> tuple[np.ndarray, np.ndarray]:
    """Index split ``(train_idx, test_idx)``; stratified when *y* is given."""
    if n < 2:
        raise ValueError(f"need at least 2 samples, got {n}")
    if not 0.0 < test_fraction < 1.0:
        raise ValueError(f"test_fraction must be in (0, 1), got {test_fraction}")
    rng = ensure_rng(rng)
    if y is None:
        order = rng.permutation(n)
        n_test = min(max(1, int(round(n * test_fraction))), n - 1)
        return np.sort(order[n_test:]), np.sort(order[:n_test])
    y = np.asarray(y)
    if len(y) != n:
        raise ValueError(f"y has {len(y)} labels for n={n}")
    test_parts = []
    for label in np.unique(y):
        idx = np.nonzero(y == label)[0]
        idx = rng.permutation(idx)
        n_test = min(max(1, int(round(len(idx) * test_fraction))),
                     max(len(idx) - 1, 1))
        test_parts.append(idx[:n_test])
    test_idx = np.sort(np.concatenate(test_parts))
    mask = np.ones(n, dtype=bool)
    mask[test_idx] = False
    return np.nonzero(mask)[0], test_idx


class StratifiedKFold:
    """Stratified k-fold iterator over ``(train_idx, test_idx)`` pairs."""

    def __init__(self, n_splits: int = 5, shuffle: bool = True,
                 random_state: int | None = None) -> None:
        if n_splits < 2:
            raise ValueError(f"n_splits must be >= 2, got {n_splits}")
        self.n_splits = n_splits
        self.shuffle = shuffle
        self.random_state = random_state

    def split(self, y: np.ndarray) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """Yield folds; every class is spread as evenly as possible."""
        y = np.asarray(y)
        n = len(y)
        if n < self.n_splits:
            raise ValueError(
                f"cannot make {self.n_splits} folds from {n} samples")
        rng = ensure_rng(self.random_state)
        fold_of = np.zeros(n, dtype=np.int64)
        for label in np.unique(y):
            idx = np.nonzero(y == label)[0]
            if self.shuffle:
                idx = rng.permutation(idx)
            fold_of[idx] = np.arange(len(idx)) % self.n_splits
        for k in range(self.n_splits):
            test_idx = np.nonzero(fold_of == k)[0]
            train_idx = np.nonzero(fold_of != k)[0]
            if test_idx.size == 0 or train_idx.size == 0:
                raise ValueError("degenerate fold; reduce n_splits")
            yield train_idx, test_idx


def leave_one_group_out(groups: np.ndarray
                        ) -> Iterator[tuple[object, np.ndarray, np.ndarray]]:
    """Yield ``(held_out_group, train_idx, test_idx)`` per distinct group."""
    groups = np.asarray(groups)
    unique = np.unique(groups)
    if len(unique) < 2:
        raise ValueError("need at least two distinct groups")
    for g in unique:
        test_idx = np.nonzero(groups == g)[0]
        train_idx = np.nonzero(groups != g)[0]
        yield g, train_idx, test_idx


def cross_val_accuracy(model_factory, X: np.ndarray, y: np.ndarray,
                       n_splits: int = 5,
                       random_state: int | None = 0) -> list[float]:
    """Stratified k-fold accuracies using fresh models from *model_factory*."""
    X = np.asarray(X)
    y = np.asarray(y)
    scores = []
    for train_idx, test_idx in StratifiedKFold(
            n_splits=n_splits, random_state=random_state).split(y):
        model = model_factory()
        model.fit(X[train_idx], y[train_idx])
        scores.append(float(model.score(X[test_idx], y[test_idx])))
    return scores
