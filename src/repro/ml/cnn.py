"""A small 1-D convolutional network — the paper's third cost counterpoint.

Section IV-C2 names CNNs (with HMMs and DTW) as the accurate-but-heavy
alternatives to the Random Forest on wearables.  This is a compact,
dependency-free implementation: two convolution blocks with ReLU and max
pooling, global average pooling, and a softmax head, trained with Adam on
z-normalized, length-resampled signals.  Everything — forward, backward,
optimizer — is plain numpy, so the computational-cost comparison of
``benchmarks/test_ablation_classifier_cost.py`` measures a real network.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.ml.base import encode_labels
from repro.utils import ensure_rng

__all__ = ["Conv1dClassifier"]


def _resample(x: np.ndarray, n: int) -> np.ndarray:
    x = np.asarray(x, dtype=np.float64).ravel()
    if x.size == 0:
        return np.zeros(n)
    if x.size == n:
        out = x
    else:
        grid = np.linspace(0, x.size - 1, n)
        out = np.interp(grid, np.arange(x.size), x)
    std = out.std()
    # the constant-signal guard must scale with magnitude: interpolation
    # of a large constant leaves float dust proportional to its value
    floor = 1e-9 * max(1.0, float(np.abs(out).max()))
    return (out - out.mean()) / std if std > floor else np.zeros(n)


def _conv1d_forward(x: np.ndarray, w: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Valid 1-D convolution: x (N,C,L), w (F,C,K) -> (N,F,L-K+1)."""
    n, c, length = x.shape
    f, _, k = w.shape
    out_len = length - k + 1
    # im2col: (N, C*K, out_len)
    cols = np.empty((n, c * k, out_len))
    for i in range(k):
        cols[:, i::k, :] = x[:, :, i:i + out_len]
    w_mat = w.reshape(f, c * k)
    out = np.einsum("fj,njl->nfl", w_mat, cols) + b[None, :, None]
    return out


def _conv1d_backward(x: np.ndarray, w: np.ndarray, grad_out: np.ndarray):
    """Gradients of the valid convolution w.r.t. x, w, b."""
    n, c, length = x.shape
    f, _, k = w.shape
    out_len = grad_out.shape[2]
    cols = np.empty((n, c * k, out_len))
    for i in range(k):
        cols[:, i::k, :] = x[:, :, i:i + out_len]
    grad_w = np.einsum("nfl,njl->fj", grad_out, cols).reshape(f, c, k)
    grad_b = grad_out.sum(axis=(0, 2))
    w_mat = w.reshape(f, c * k)
    grad_cols = np.einsum("fj,nfl->njl", w_mat, grad_out)
    grad_x = np.zeros_like(x)
    for i in range(k):
        grad_x[:, :, i:i + out_len] += grad_cols[:, i::k, :]
    return grad_x, grad_w, grad_b


def _maxpool_forward(x: np.ndarray, size: int):
    n, c, length = x.shape
    trimmed = length - length % size
    blocks = x[:, :, :trimmed].reshape(n, c, trimmed // size, size)
    out = blocks.max(axis=3)
    argmax = blocks.argmax(axis=3)
    return out, (argmax, trimmed, size, x.shape)


def _maxpool_backward(grad_out: np.ndarray, cache) -> np.ndarray:
    argmax, trimmed, size, shape = cache
    n, c, blocks = grad_out.shape
    grad_x = np.zeros(shape)
    idx_n, idx_c, idx_b = np.meshgrid(
        np.arange(n), np.arange(c), np.arange(blocks), indexing="ij")
    positions = idx_b * size + argmax
    grad_x[idx_n, idx_c, positions] = grad_out
    return grad_x


@dataclass
class Conv1dClassifier:
    """Two-block 1-D CNN with a softmax head.

    Parameters
    ----------
    input_length:
        Signals are resampled to this length before the network.
    channels:
        Filters in the two convolution blocks.
    kernel_sizes:
        Kernel width per block.
    pool:
        Max-pool factor after each block.
    epochs, batch_size, learning_rate:
        Adam training schedule.
    random_state:
        Weight-initialization seed.
    """

    input_length: int = 128
    channels: tuple[int, int] = (8, 16)
    kernel_sizes: tuple[int, int] = (7, 5)
    pool: int = 4
    epochs: int = 30
    batch_size: int = 32
    learning_rate: float = 3e-3
    random_state: int | None = 0

    classes_: np.ndarray = field(init=False, repr=False, default=None)
    params_: dict = field(init=False, repr=False, default_factory=dict)
    _adam_m: dict = field(init=False, repr=False, default_factory=dict)
    _adam_v: dict = field(init=False, repr=False, default_factory=dict)
    _adam_t: int = field(init=False, repr=False, default=0)

    def __post_init__(self) -> None:
        if self.input_length < 16:
            raise ValueError("input_length must be >= 16")
        if self.epochs < 1 or self.batch_size < 1:
            raise ValueError("epochs and batch_size must be >= 1")
        if self.pool < 1:
            raise ValueError("pool must be >= 1")

    # ------------------------------------------------------------------
    def _init_params(self, n_classes: int) -> None:
        rng = ensure_rng(self.random_state)
        c1, c2 = self.channels
        k1, k2 = self.kernel_sizes
        self.params_ = {
            "w1": rng.normal(0, np.sqrt(2.0 / k1), (c1, 1, k1)),
            "b1": np.zeros(c1),
            "w2": rng.normal(0, np.sqrt(2.0 / (c1 * k2)), (c2, c1, k2)),
            "b2": np.zeros(c2),
            "w3": rng.normal(0, np.sqrt(2.0 / c2), (c2, n_classes)),
            "b3": np.zeros(n_classes),
        }
        self._adam_m = {k: np.zeros_like(v) for k, v in self.params_.items()}
        self._adam_v = {k: np.zeros_like(v) for k, v in self.params_.items()}
        self._adam_t = 0

    def _forward(self, x: np.ndarray, keep_cache: bool = False):
        p = self.params_
        z1 = _conv1d_forward(x, p["w1"], p["b1"])
        a1 = np.maximum(z1, 0.0)
        p1, cache1 = _maxpool_forward(a1, self.pool)
        z2 = _conv1d_forward(p1, p["w2"], p["b2"])
        a2 = np.maximum(z2, 0.0)
        gap = a2.mean(axis=2)                         # global average pool
        logits = gap @ p["w3"] + p["b3"]
        shifted = logits - logits.max(axis=1, keepdims=True)
        exp = np.exp(shifted)
        proba = exp / exp.sum(axis=1, keepdims=True)
        if not keep_cache:
            return proba, None
        return proba, (x, z1, a1, p1, cache1, z2, a2, gap)

    def _backward(self, proba: np.ndarray, onehot: np.ndarray, cache) -> dict:
        x, z1, a1, p1, cache1, z2, a2, gap = cache
        p = self.params_
        n = len(x)
        grad_logits = (proba - onehot) / n
        grads = {
            "w3": gap.T @ grad_logits,
            "b3": grad_logits.sum(axis=0),
        }
        grad_gap = grad_logits @ p["w3"].T                 # (N, C2)
        grad_a2 = (grad_gap[:, :, None]
                   / a2.shape[2]) * np.ones_like(a2)
        grad_z2 = grad_a2 * (z2 > 0)
        grad_p1, grads["w2"], grads["b2"] = _conv1d_backward(
            p1, p["w2"], grad_z2)
        grad_a1 = _maxpool_backward(grad_p1, cache1)
        grad_z1 = grad_a1 * (z1 > 0)
        _, grads["w1"], grads["b1"] = _conv1d_backward(x, p["w1"], grad_z1)
        return grads

    def _adam_step(self, grads: dict) -> None:
        self._adam_t += 1
        beta1, beta2, eps = 0.9, 0.999, 1e-8
        for key, grad in grads.items():
            self._adam_m[key] = beta1 * self._adam_m[key] + (1 - beta1) * grad
            self._adam_v[key] = (beta2 * self._adam_v[key]
                                 + (1 - beta2) * grad * grad)
            m_hat = self._adam_m[key] / (1 - beta1 ** self._adam_t)
            v_hat = self._adam_v[key] / (1 - beta2 ** self._adam_t)
            self.params_[key] -= (self.learning_rate * m_hat
                                  / (np.sqrt(v_hat) + eps))

    # ------------------------------------------------------------------
    def _prepare(self, signals) -> np.ndarray:
        batch = np.stack([_resample(s, self.input_length) for s in signals])
        return batch[:, None, :]  # (N, 1, L)

    def fit(self, signals, labels) -> "Conv1dClassifier":
        """Train the network on raw segmented signals."""
        if len(signals) != len(labels):
            raise ValueError(f"{len(signals)} signals but {len(labels)} labels")
        if len(signals) == 0:
            raise ValueError("cannot fit on zero signals")
        self.classes_, codes = encode_labels(np.asarray(labels))
        n_classes = len(self.classes_)
        self._init_params(n_classes)
        X = self._prepare(signals)
        onehot = np.zeros((len(X), n_classes))
        onehot[np.arange(len(X)), codes] = 1.0
        rng = ensure_rng(self.random_state)
        for _ in range(self.epochs):
            order = rng.permutation(len(X))
            for start in range(0, len(X), self.batch_size):
                idx = order[start:start + self.batch_size]
                proba, cache = self._forward(X[idx], keep_cache=True)
                grads = self._backward(proba, onehot[idx], cache)
                self._adam_step(grads)
        return self

    def _check_fitted(self) -> None:
        if not self.params_:
            raise RuntimeError("classifier is not fitted; call fit() first")

    def predict_proba(self, signals) -> np.ndarray:
        """Softmax probabilities, ``(N, K)``."""
        self._check_fitted()
        proba, _ = self._forward(self._prepare(signals))
        return proba

    def predict(self, signals) -> np.ndarray:
        """Predicted labels."""
        return self.classes_[np.argmax(self.predict_proba(signals), axis=1)]

    def score(self, signals, labels) -> float:
        """Mean accuracy."""
        return float(np.mean(self.predict(signals) == np.asarray(labels)))
