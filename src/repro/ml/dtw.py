"""Dynamic Time Warping: the paper's computational-cost counterpoint.

Section IV-C2 argues for the Random Forest because "comparing to Hidden
Markov Models (HMM), Dynamic Time Warping (DTW), and Convolutional Neural
Networks (CNN), RF has lower computational expense, which is more suitable
for real-time gesture recognition on wearable smart devices".  To make
that comparison reproducible this module implements a banded
(Sakoe-Chiba) DTW distance and a k-NN classifier over it — accurate but
expensive at prediction time, exactly the trade-off the paper cites.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["dtw_distance", "KnnDtwClassifier"]


def _znorm(x: np.ndarray) -> np.ndarray:
    x = np.asarray(x, dtype=np.float64).ravel()
    if x.size == 0:
        # std()/mean() of an empty array emit "Mean of empty slice" /
        # invalid-divide RuntimeWarnings; an empty series normalizes to
        # itself.
        return x
    std = x.std()
    if std < 1e-12:
        return np.zeros_like(x)
    return (x - x.mean()) / std


def dtw_distance(a: np.ndarray, b: np.ndarray,
                 band_fraction: float = 0.1,
                 normalize: bool = True) -> float:
    """Banded DTW distance between two 1-D series.

    Parameters
    ----------
    a, b:
        Input series (any lengths).
    band_fraction:
        Sakoe-Chiba band half-width as a fraction of the longer series;
        constrains warping and cuts cost from O(n*m) to O(n*band).
    normalize:
        z-normalize both series first (amplitude invariance) and divide
        the final cost by the warping-path-length bound so series of
        different lengths compare fairly.
    """
    if not 0.0 < band_fraction <= 1.0:
        raise ValueError(f"band_fraction must be in (0, 1], got {band_fraction}")
    x = _znorm(a) if normalize else np.asarray(a, dtype=np.float64).ravel()
    y = _znorm(b) if normalize else np.asarray(b, dtype=np.float64).ravel()
    # canonical orientation: the band is laid out relative to the first
    # series, so order by length to make the distance exactly symmetric
    if len(y) > len(x) or (len(y) == len(x)
                           and y.tobytes() < x.tobytes()):
        x, y = y, x
    n, m = len(x), len(y)
    if n == 0 or m == 0:
        return float("inf")
    band = max(int(band_fraction * max(n, m)), abs(n - m) + 1)

    inf = float("inf")
    prev = np.full(m + 1, inf)
    prev[0] = 0.0
    for i in range(1, n + 1):
        cur = np.full(m + 1, inf)
        # stay inside the band around the diagonal
        centre = int(round(i * m / n))
        lo = max(1, centre - band)
        hi = min(m, centre + band)
        xi = x[i - 1]
        for j in range(lo, hi + 1):
            cost = (xi - y[j - 1]) ** 2
            cur[j] = cost + min(prev[j], prev[j - 1], cur[j - 1])
        prev = cur
    value = float(prev[m])
    if normalize and np.isfinite(value):
        value /= (n + m)
    return value


@dataclass
class KnnDtwClassifier:
    """k-nearest-neighbour classification under the DTW distance.

    Unlike the feature-based classifiers this one consumes the raw
    segmented signals directly (no extraction step), which is its appeal —
    and its prediction cost scales with the whole training set, which is
    the paper's argument against it for wearables.

    Parameters
    ----------
    n_neighbors:
        Votes per prediction.
    band_fraction:
        Sakoe-Chiba band of the underlying distance.
    max_reference_length:
        Training series are decimated to at most this many samples to
        bound the quadratic DTW cost.
    """

    n_neighbors: int = 1
    band_fraction: float = 0.1
    max_reference_length: int = 128

    _references: list[np.ndarray] = field(init=False, repr=False,
                                          default_factory=list)
    _labels: np.ndarray = field(init=False, repr=False, default=None)
    classes_: np.ndarray = field(init=False, repr=False, default=None)

    def __post_init__(self) -> None:
        if self.n_neighbors < 1:
            raise ValueError("n_neighbors must be >= 1")
        if self.max_reference_length < 8:
            raise ValueError("max_reference_length must be >= 8")

    def _condense(self, signal: np.ndarray) -> np.ndarray:
        signal = np.asarray(signal, dtype=np.float64).ravel()
        if len(signal) <= self.max_reference_length:
            return signal
        grid = np.linspace(0, len(signal) - 1, self.max_reference_length)
        return np.interp(grid, np.arange(len(signal)), signal)

    def fit(self, signals, labels) -> "KnnDtwClassifier":
        """Store the training series (lazy learner)."""
        if len(signals) != len(labels):
            raise ValueError(f"{len(signals)} signals but {len(labels)} labels")
        if len(signals) == 0:
            raise ValueError("cannot fit on zero signals")
        self._references = [self._condense(s) for s in signals]
        self._labels = np.asarray(labels)
        self.classes_ = np.unique(self._labels)
        return self

    def _check_fitted(self) -> None:
        if not self._references:
            raise RuntimeError("classifier is not fitted; call fit() first")

    def predict_one(self, signal: np.ndarray) -> str:
        """Label of the DTW-nearest training neighbours."""
        self._check_fitted()
        query = self._condense(signal)
        distances = np.array([
            dtw_distance(query, ref, self.band_fraction)
            for ref in self._references])
        order = np.argsort(distances)[: self.n_neighbors]
        votes, counts = np.unique(self._labels[order], return_counts=True)
        return votes[np.argmax(counts)]

    def predict(self, signals) -> np.ndarray:
        """Labels for a batch of raw signals."""
        return np.asarray([self.predict_one(s) for s in signals])

    def score(self, signals, labels) -> float:
        """Mean accuracy on labelled signals."""
        return float(np.mean(self.predict(signals) == np.asarray(labels)))
