"""Evaluation metrics matching the paper's Section V-C definitions.

* **Confusion matrix** — row = ground truth, column = prediction, each row
  normalized by the row's sample count (the paper reports ratios).
* **Accuracy** — correctly classified / total classified.
* **Recall of label g** — correct among all samples *with* label g.
* **Precision of label g** — correct among all samples *predicted* g.

When an explicit ``labels`` argument does not cover every value in the
data, no pair is ever silently dropped: ground-truth values outside the
label set raise, and out-of-label predictions are either surfaced in a
dedicated ``"<other>"`` confusion column or raise (see
:func:`confusion_matrix`).  This keeps the confusion matrix consistent
with :func:`accuracy_score`, which always counts every pair.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "confusion_matrix",
    "accuracy_score",
    "per_class_recall",
    "per_class_precision",
    "classification_summary",
    "ClassificationSummary",
]


def _align(y_true: np.ndarray, y_pred: np.ndarray,
           labels: np.ndarray | None) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    y_true = np.asarray(y_true).ravel()
    y_pred = np.asarray(y_pred).ravel()
    if y_true.shape != y_pred.shape:
        raise ValueError(
            f"y_true has {y_true.size} entries, y_pred has {y_pred.size}")
    if y_true.size == 0:
        raise ValueError("cannot score an empty prediction set")
    if labels is None:
        labels = np.unique(np.concatenate([y_true, y_pred]))
    else:
        labels = np.asarray(labels)
    return y_true, y_pred, labels


def confusion_matrix(y_true: np.ndarray, y_pred: np.ndarray,
                     labels: np.ndarray | None = None,
                     normalize: bool = True,
                     out_of_label: str = "column"
                     ) -> tuple[np.ndarray, np.ndarray]:
    """Confusion matrix ``(labels, matrix)``; rows are ground truth.

    With ``normalize=True`` each row is divided by its ground-truth count
    (rows of all-zero stay zero), matching the paper's definition.

    When an explicit ``labels`` argument omits values present in the data,
    pairs are never silently dropped (dropping them would make the matrix
    disagree with :func:`accuracy_score`, which counts every pair):

    * a ground-truth value outside ``labels`` always raises ``ValueError``
      — the caller's label set does not cover the evaluation;
    * predictions outside ``labels`` are counted in a trailing
      ``"<other>"`` column with ``out_of_label="column"`` (the default),
      so every row still accounts for all of its samples, or raise
      ``ValueError`` with ``out_of_label="raise"``.

    The returned ``labels`` gain the ``"<other>"`` entry only when such
    predictions actually occur; the matrix then has one more column than
    rows (rows correspond to the first ``len(labels) - 1`` entries).
    """
    if out_of_label not in ("column", "raise"):
        raise ValueError(
            f"out_of_label must be 'column' or 'raise', got {out_of_label!r}")
    y_true, y_pred, labels = _align(y_true, y_pred, labels)
    index = {label: i for i, label in enumerate(labels)}
    stray_truth = sorted({str(t) for t in y_true if t not in index})
    if stray_truth:
        raise ValueError(
            f"ground-truth values outside labels: {stray_truth}; the label "
            "set must cover every ground-truth value")
    stray_pred = sorted({str(p) for p in y_pred if p not in index})
    if stray_pred and out_of_label == "raise":
        raise ValueError(f"predictions outside labels: {stray_pred}")
    k = len(labels)
    matrix = np.zeros((k, k + 1 if stray_pred else k), dtype=np.float64)
    for t, p in zip(y_true, y_pred):
        matrix[index[t], index.get(p, k)] += 1.0
    if normalize:
        row_sums = matrix.sum(axis=1, keepdims=True)
        matrix = np.divide(matrix, row_sums,
                           out=np.zeros_like(matrix), where=row_sums > 0)
    if stray_pred:
        labels = np.append(labels, "<other>")
    return labels, matrix


def accuracy_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Fraction of correctly classified samples."""
    y_true, y_pred, _ = _align(y_true, y_pred, None)
    return float(np.mean(y_true == y_pred))


def per_class_recall(y_true: np.ndarray, y_pred: np.ndarray,
                     labels: np.ndarray | None = None) -> dict:
    """Recall per label; labels absent from the ground truth map to 0.0."""
    y_true, y_pred, labels = _align(y_true, y_pred, labels)
    out = {}
    for label in labels:
        mask = y_true == label
        out[label] = float(np.mean(y_pred[mask] == label)) if mask.any() else 0.0
    return out


def per_class_precision(y_true: np.ndarray, y_pred: np.ndarray,
                        labels: np.ndarray | None = None) -> dict:
    """Precision per label; labels never predicted map to 0.0."""
    y_true, y_pred, labels = _align(y_true, y_pred, labels)
    out = {}
    for label in labels:
        mask = y_pred == label
        out[label] = float(np.mean(y_true[mask] == label)) if mask.any() else 0.0
    return out


@dataclass(frozen=True)
class ClassificationSummary:
    """Accuracy plus macro-averaged recall/precision and per-class detail."""

    accuracy: float
    macro_recall: float
    macro_precision: float
    labels: tuple
    recall: dict
    precision: dict
    confusion: np.ndarray

    def __str__(self) -> str:
        lines = [
            f"accuracy:        {self.accuracy:7.2%}",
            f"macro recall:    {self.macro_recall:7.2%}",
            f"macro precision: {self.macro_precision:7.2%}",
        ]
        for label in self.labels:
            lines.append(
                f"  {str(label):16s} recall={self.recall[label]:6.2%} "
                f"precision={self.precision[label]:6.2%}")
        return "\n".join(lines)


def classification_summary(y_true: np.ndarray, y_pred: np.ndarray,
                           labels: np.ndarray | None = None
                           ) -> ClassificationSummary:
    """Bundle every Section V-C metric for one evaluation.

    An explicit ``labels`` argument must cover every value in ``y_true``
    and ``y_pred`` (``ValueError`` otherwise): the summary's accuracy is
    :func:`accuracy_score` over *all* pairs, so its square confusion
    matrix must account for all of them too.
    """
    y_true, y_pred, labels = _align(y_true, y_pred, labels)
    known = set(labels.tolist())
    stray = sorted({str(v) for v in np.concatenate([y_true, y_pred])
                    if v not in known})
    if stray:
        raise ValueError(
            f"values outside the explicit labels: {stray}; "
            "classification_summary needs a label set covering every "
            "value so accuracy and confusion stay consistent")
    recall = per_class_recall(y_true, y_pred, labels)
    precision = per_class_precision(y_true, y_pred, labels)
    _, conf = confusion_matrix(y_true, y_pred, labels)
    return ClassificationSummary(
        accuracy=accuracy_score(y_true, y_pred),
        macro_recall=float(np.mean(list(recall.values()))),
        macro_precision=float(np.mean(list(precision.values()))),
        labels=tuple(labels.tolist()),
        recall=recall,
        precision=precision,
        confusion=conf)
