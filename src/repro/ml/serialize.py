"""Serialization of the from-scratch classifiers (JSON-compatible dicts).

Deployed recognizers must ship without retraining (the paper stresses that
airFinger works pre-trained, with no per-user calibration), so every model
here round-trips through a plain-``dict`` representation:

    payload = serialize_model(model)      # JSON-compatible
    clone   = deserialize_model(payload)  # predicts identically

Trees are flattened pre-order into parallel arrays; probabilities and
predictions are bit-identical after a round trip.
"""

from __future__ import annotations

import numpy as np

from repro.ml.forest import RandomForestClassifier
from repro.ml.logistic import LogisticRegressionClassifier
from repro.ml.naive_bayes import BernoulliNaiveBayes
from repro.ml.tree import DecisionTreeClassifier, _Node

__all__ = ["serialize_model", "deserialize_model"]


# ---------------------------------------------------------------------------
# decision tree
# ---------------------------------------------------------------------------

def _flatten_tree(root: _Node) -> dict:
    features: list[int] = []
    thresholds: list[float] = []
    lefts: list[int] = []
    rights: list[int] = []
    counts: list[list[float]] = []

    def visit(node: _Node) -> int:
        index = len(features)
        features.append(int(node.feature))
        thresholds.append(float(node.threshold))
        counts.append([float(c) for c in (node.counts if node.counts is not None
                                          else [])])
        lefts.append(-1)
        rights.append(-1)
        if not node.is_leaf:
            lefts[index] = visit(node.left)
            rights[index] = visit(node.right)
        return index

    visit(root)
    return {"features": features, "thresholds": thresholds,
            "lefts": lefts, "rights": rights, "counts": counts}


def _rebuild_tree(data: dict) -> _Node:
    nodes = [
        _Node(feature=int(f), threshold=float(t),
              counts=np.asarray(c, dtype=np.float64))
        for f, t, c in zip(data["features"], data["thresholds"],
                           data["counts"])]
    for i, (l, r) in enumerate(zip(data["lefts"], data["rights"])):
        if l >= 0:
            nodes[i].left = nodes[l]
        if r >= 0:
            nodes[i].right = nodes[r]
    return nodes[0]


def _classes_payload(classes: np.ndarray) -> dict:
    return {"values": [c.item() if hasattr(c, "item") else c
                       for c in classes],
            "dtype": str(np.asarray(classes).dtype.kind)}


def _classes_restore(payload: dict) -> np.ndarray:
    kind = payload["dtype"]
    if kind in ("U", "S", "O"):
        return np.asarray(payload["values"], dtype=object).astype(str)
    if kind in ("i", "u"):
        return np.asarray(payload["values"], dtype=np.int64)
    return np.asarray(payload["values"])


def _serialize_tree(model: DecisionTreeClassifier) -> dict:
    if model._root is None:
        raise ValueError("cannot serialize an unfitted tree")
    return {
        "kind": "decision_tree",
        "params": {
            "max_depth": model.max_depth,
            "min_samples_split": model.min_samples_split,
            "min_samples_leaf": model.min_samples_leaf,
            "max_features": model.max_features,
            "random_state": model.random_state,
        },
        "classes": _classes_payload(model.classes_),
        "n_features": int(model.n_features_),
        "importances": [float(v) for v in model.feature_importances_],
        "tree": _flatten_tree(model._root),
    }


def _deserialize_tree(payload: dict) -> DecisionTreeClassifier:
    model = DecisionTreeClassifier(**payload["params"])
    model.classes_ = _classes_restore(payload["classes"])
    model.n_features_ = payload["n_features"]
    model.feature_importances_ = np.asarray(payload["importances"])
    model._root = _rebuild_tree(payload["tree"])
    return model


# ---------------------------------------------------------------------------
# other models
# ---------------------------------------------------------------------------

def _serialize_forest(model: RandomForestClassifier) -> dict:
    if not model.estimators_:
        raise ValueError("cannot serialize an unfitted forest")
    return {
        "kind": "random_forest",
        "params": {
            "n_estimators": model.n_estimators,
            "max_depth": model.max_depth,
            "min_samples_split": model.min_samples_split,
            "min_samples_leaf": model.min_samples_leaf,
            "max_features": model.max_features,
            "bootstrap": model.bootstrap,
            "oob_score": model.oob_score,
            "random_state": model.random_state,
        },
        "classes": _classes_payload(model.classes_),
        "importances": [float(v) for v in model.feature_importances_],
        "oob_score_": model.oob_score_,
        "trees": [_serialize_tree(t) for t in model.estimators_],
    }


def _deserialize_forest(payload: dict) -> RandomForestClassifier:
    model = RandomForestClassifier(**payload["params"])
    model.classes_ = _classes_restore(payload["classes"])
    model.feature_importances_ = np.asarray(payload["importances"])
    model.oob_score_ = payload["oob_score_"]
    model.estimators_ = [_deserialize_tree(t) for t in payload["trees"]]
    return model


def _serialize_logistic(model: LogisticRegressionClassifier) -> dict:
    if model.coef_ is None:
        raise ValueError("cannot serialize an unfitted model")
    return {
        "kind": "logistic_regression",
        "params": {"l2": model.l2, "max_iter": model.max_iter,
                   "tol": model.tol, "learning_rate": model.learning_rate},
        "classes": _classes_payload(model.classes_),
        "coef": model.coef_.tolist(),
        "intercept": model.intercept_.tolist(),
        "mean": model._mean.tolist(),
        "scale": model._scale.tolist(),
    }


def _deserialize_logistic(payload: dict) -> LogisticRegressionClassifier:
    model = LogisticRegressionClassifier(**payload["params"])
    model.classes_ = _classes_restore(payload["classes"])
    model.coef_ = np.asarray(payload["coef"])
    model.intercept_ = np.asarray(payload["intercept"])
    model._mean = np.asarray(payload["mean"])
    model._scale = np.asarray(payload["scale"])
    return model


def _serialize_nb(model: BernoulliNaiveBayes) -> dict:
    if model.feature_log_prob_ is None:
        raise ValueError("cannot serialize an unfitted model")
    return {
        "kind": "bernoulli_nb",
        "params": {"alpha": model.alpha},
        "classes": _classes_payload(model.classes_),
        "thresholds": model.thresholds_.tolist(),
        "log_prior": model.log_prior_.tolist(),
        "log_prob": model.feature_log_prob_.tolist(),
        "log_prob_neg": model.feature_log_prob_neg_.tolist(),
    }


def _deserialize_nb(payload: dict) -> BernoulliNaiveBayes:
    model = BernoulliNaiveBayes(**payload["params"])
    model.classes_ = _classes_restore(payload["classes"])
    model.thresholds_ = np.asarray(payload["thresholds"])
    model.log_prior_ = np.asarray(payload["log_prior"])
    model.feature_log_prob_ = np.asarray(payload["log_prob"])
    model.feature_log_prob_neg_ = np.asarray(payload["log_prob_neg"])
    return model


# ---------------------------------------------------------------------------
# dispatch
# ---------------------------------------------------------------------------

_SERIALIZERS = {
    DecisionTreeClassifier: _serialize_tree,
    RandomForestClassifier: _serialize_forest,
    LogisticRegressionClassifier: _serialize_logistic,
    BernoulliNaiveBayes: _serialize_nb,
}

_DESERIALIZERS = {
    "decision_tree": _deserialize_tree,
    "random_forest": _deserialize_forest,
    "logistic_regression": _deserialize_logistic,
    "bernoulli_nb": _deserialize_nb,
}


def serialize_model(model) -> dict:
    """A JSON-compatible payload for any fitted repro.ml classifier."""
    for cls, func in _SERIALIZERS.items():
        if isinstance(model, cls):
            return func(model)
    raise TypeError(f"cannot serialize model of type {type(model).__name__}")


def deserialize_model(payload: dict):
    """Rebuild a classifier from :func:`serialize_model` output."""
    kind = payload.get("kind")
    if kind not in _DESERIALIZERS:
        raise ValueError(f"unknown model kind {kind!r}")
    return _DESERIALIZERS[kind](payload)
