"""CART decision-tree classifier with Gini impurity.

A vectorized implementation: at each node the best split over a (possibly
random) feature subset is found by sorting each candidate column once and
scanning cumulative class counts, so split search costs
``O(F * n log n)`` per node rather than ``O(F * n^2)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.ml.base import check_X, check_X_y, encode_labels
from repro.utils import ensure_rng

__all__ = ["DecisionTreeClassifier"]


@dataclass
class _Node:
    """One tree node; leaves have ``feature == -1``."""
    feature: int = -1
    threshold: float = 0.0
    left: "_Node | None" = None
    right: "_Node | None" = None
    counts: np.ndarray | None = None  # class histogram at the node

    @property
    def is_leaf(self) -> bool:
        """True when the node has no split."""
        return self.feature < 0


def _gini(counts: np.ndarray) -> float:
    total = counts.sum()
    if total <= 0:
        return 0.0
    p = counts / total
    return float(1.0 - np.sum(p * p))


@dataclass
class DecisionTreeClassifier:
    """A CART classifier.

    Parameters
    ----------
    max_depth:
        Depth limit; ``None`` grows until pure or below minimum sizes.
    min_samples_split:
        Minimum node size eligible for splitting.
    min_samples_leaf:
        Minimum samples each child must keep.
    max_features:
        ``None`` (all), ``"sqrt"``, or an integer count of features sampled
        per node (this is the randomness a forest injects).
    random_state:
        Seed for the per-node feature subsampling.
    """

    max_depth: int | None = None
    min_samples_split: int = 2
    min_samples_leaf: int = 1
    max_features: int | str | None = None
    random_state: int | None = None

    classes_: np.ndarray = field(init=False, repr=False, default=None)
    n_features_: int = field(init=False, repr=False, default=0)
    feature_importances_: np.ndarray = field(init=False, repr=False, default=None)
    _root: _Node | None = field(init=False, repr=False, default=None)
    _n_nodes: int = field(init=False, repr=False, default=0)

    def __post_init__(self) -> None:
        if self.max_depth is not None and self.max_depth < 1:
            raise ValueError(f"max_depth must be >= 1, got {self.max_depth}")
        if self.min_samples_split < 2:
            raise ValueError("min_samples_split must be >= 2")
        if self.min_samples_leaf < 1:
            raise ValueError("min_samples_leaf must be >= 1")

    # ------------------------------------------------------------------
    def _n_candidate_features(self) -> int:
        if self.max_features is None:
            return self.n_features_
        if self.max_features == "sqrt":
            return max(1, int(np.sqrt(self.n_features_)))
        n = int(self.max_features)
        if n < 1:
            raise ValueError(f"max_features must be >= 1, got {n}")
        return min(n, self.n_features_)

    def fit(self, X: np.ndarray, y: np.ndarray,
            sample_weight: np.ndarray | None = None,
            n_classes: int | None = None) -> "DecisionTreeClassifier":
        """Grow the tree on ``(X, y)``.

        ``sample_weight`` supports the forest's bootstrap-by-weights mode
        (integer multiplicities avoid materializing resampled matrices).
        When ``n_classes`` is given, ``y`` must already be integer codes in
        ``0..n_classes-1``; this keeps probability columns aligned across
        an ensemble even when a bootstrap misses a class entirely.
        """
        X, y = check_X_y(X, y)
        if n_classes is not None:
            if n_classes < 1:
                raise ValueError(f"n_classes must be >= 1, got {n_classes}")
            codes = np.asarray(y, dtype=np.int64)
            if codes.size and (codes.min() < 0 or codes.max() >= n_classes):
                raise ValueError(
                    f"pre-encoded labels must lie in [0, {n_classes}), "
                    f"got range [{codes.min()}, {codes.max()}]")
            self.classes_ = np.arange(n_classes)
        else:
            self.classes_, codes = encode_labels(y)
            n_classes = len(self.classes_)
        self.n_features_ = X.shape[1]
        if sample_weight is None:
            weights = np.ones(len(X), dtype=np.float64)
        else:
            weights = np.asarray(sample_weight, dtype=np.float64)
            if weights.shape != (len(X),):
                raise ValueError("sample_weight must have one entry per row")
            if np.any(weights < 0):
                raise ValueError("sample_weight must be non-negative")
        rng = ensure_rng(self.random_state)
        self.feature_importances_ = np.zeros(self.n_features_)
        active = weights > 0
        self._n_nodes = 0
        self._root = self._grow(X[active], codes[active], weights[active],
                                n_classes, depth=0, rng=rng)
        total = self.feature_importances_.sum()
        if total > 0:
            self.feature_importances_ = self.feature_importances_ / total
        return self

    def _class_counts(self, codes: np.ndarray, weights: np.ndarray,
                      n_classes: int) -> np.ndarray:
        return np.bincount(codes, weights=weights, minlength=n_classes)

    def _grow(self, X: np.ndarray, codes: np.ndarray, weights: np.ndarray,
              n_classes: int, depth: int,
              rng: np.random.Generator) -> _Node:
        self._n_nodes += 1
        counts = self._class_counts(codes, weights, n_classes)
        node = _Node(counts=counts)
        n_eff = weights.sum()
        if (len(X) < self.min_samples_split
                or (self.max_depth is not None and depth >= self.max_depth)
                or _gini(counts) <= 1e-12):
            return node

        best = self._best_split(X, codes, weights, counts, rng)
        if best is None:
            return node
        feature, threshold, gain, left_mask = best
        node.feature = feature
        node.threshold = threshold
        self.feature_importances_[feature] += gain * n_eff
        node.left = self._grow(X[left_mask], codes[left_mask],
                               weights[left_mask], n_classes, depth + 1, rng)
        node.right = self._grow(X[~left_mask], codes[~left_mask],
                                weights[~left_mask], n_classes, depth + 1, rng)
        return node

    def _best_split(self, X: np.ndarray, codes: np.ndarray,
                    weights: np.ndarray, counts: np.ndarray,
                    rng: np.random.Generator):
        n, f_total = X.shape
        k = self._n_candidate_features()
        if k < f_total:
            candidates = rng.choice(f_total, size=k, replace=False)
        else:
            candidates = np.arange(f_total)
        parent_gini = _gini(counts)
        total_w = weights.sum()
        n_classes = len(counts)
        best_gain = 1e-12
        best = None
        onehot = np.zeros((n, n_classes))
        onehot[np.arange(n), codes] = weights
        for f in candidates:
            col = X[:, f]
            order = np.argsort(col, kind="stable")
            sorted_col = col[order]
            # cumulative weighted class counts left of each split position
            cum = np.cumsum(onehot[order], axis=0)
            w_left = cum.sum(axis=1)
            w_right = total_w - w_left
            # valid split positions: value changes and both sides non-trivial
            distinct = sorted_col[1:] != sorted_col[:-1]
            pos = np.nonzero(distinct)[0]
            if pos.size == 0:
                continue
            # enforce min_samples_leaf in raw sample counts
            raw_left = np.arange(1, n)
            ok = ((raw_left[pos - 0] >= self.min_samples_leaf)
                  & ((n - raw_left[pos - 0]) >= self.min_samples_leaf))
            pos = pos[ok]
            if pos.size == 0:
                continue
            left_counts = cum[pos]
            right_counts = counts - left_counts
            wl = w_left[pos]
            wr = w_right[pos]
            valid = (wl > 0) & (wr > 0)
            if not valid.any():
                continue
            pl = left_counts / np.maximum(wl[:, None], 1e-300)
            pr = right_counts / np.maximum(wr[:, None], 1e-300)
            gini_l = 1.0 - np.sum(pl * pl, axis=1)
            gini_r = 1.0 - np.sum(pr * pr, axis=1)
            child = (wl * gini_l + wr * gini_r) / total_w
            gain = parent_gini - child
            gain[~valid] = -np.inf
            j = int(np.argmax(gain))
            if gain[j] > best_gain:
                split_idx = pos[j]
                threshold = 0.5 * (sorted_col[split_idx] + sorted_col[split_idx + 1])
                left_mask = col <= threshold
                # guard against numerically degenerate thresholds
                if left_mask.all() or not left_mask.any():
                    continue
                best_gain = float(gain[j])
                best = (int(f), float(threshold), best_gain, left_mask)
        return best

    # ------------------------------------------------------------------
    def _check_fitted(self) -> None:
        if self._root is None:
            raise RuntimeError("classifier is not fitted; call fit() first")

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Class-probability estimates from leaf histograms, ``(N, K)``."""
        self._check_fitted()
        X = check_X(X)
        if X.shape[1] != self.n_features_:
            raise ValueError(
                f"X has {X.shape[1]} features, tree was fit on {self.n_features_}")
        out = np.zeros((len(X), len(self.classes_)))
        self._predict_into(self._root, X, np.arange(len(X)), out)
        return out

    def _predict_into(self, node: _Node, X: np.ndarray,
                      idx: np.ndarray, out: np.ndarray) -> None:
        if idx.size == 0:
            return
        if node.is_leaf:
            total = node.counts.sum()
            proba = (node.counts / total) if total > 0 else (
                np.ones_like(node.counts) / len(node.counts))
            out[idx] = proba
            return
        go_left = X[idx, node.feature] <= node.threshold
        self._predict_into(node.left, X, idx[go_left], out)
        self._predict_into(node.right, X, idx[~go_left], out)

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predicted labels."""
        proba = self.predict_proba(X)
        return self.classes_[np.argmax(proba, axis=1)]

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        """Mean accuracy on ``(X, y)``."""
        return float(np.mean(self.predict(X) == np.asarray(y)))

    @property
    def n_nodes(self) -> int:
        """Number of nodes grown (diagnostics)."""
        return self._n_nodes
