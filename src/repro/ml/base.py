"""Shared validation and label-encoding helpers for the classifiers."""

from __future__ import annotations

import numpy as np

__all__ = ["check_X_y", "check_X", "encode_labels"]


def check_X(X: np.ndarray) -> np.ndarray:
    """Validate a feature matrix: 2-D, finite, float64."""
    X = np.asarray(X, dtype=np.float64)
    if X.ndim == 1:
        X = X.reshape(-1, 1)
    if X.ndim != 2:
        raise ValueError(f"X must be 2-D, got shape {X.shape}")
    if X.size and not np.all(np.isfinite(X)):
        raise ValueError("X contains NaN or inf")
    return X


def check_X_y(X: np.ndarray, y: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Validate a feature matrix / label vector pair."""
    X = check_X(X)
    y = np.asarray(y)
    if y.ndim != 1:
        y = y.ravel()
    if len(y) != len(X):
        raise ValueError(f"X has {len(X)} rows but y has {len(y)} labels")
    if len(y) == 0:
        raise ValueError("cannot fit on an empty dataset")
    return X, y


def encode_labels(y: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Map arbitrary labels to 0..K-1 integers.

    Returns
    -------
    (classes, encoded):
        ``classes`` is the sorted unique label array; ``encoded`` the
        integer codes such that ``classes[encoded] == y``.
    """
    classes, encoded = np.unique(np.asarray(y), return_inverse=True)
    return classes, encoded.astype(np.int64)
