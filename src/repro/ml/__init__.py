"""From-scratch ML substrate (scikit-learn is unavailable offline).

The paper's recognition stage is a Random Forest chosen over Logistic
Regression, Decision Trees and Bernoulli Naive Bayes (Fig. 9), with RF
feature importances driving feature selection (Section IV-C1).  This
subpackage implements those four classifier families plus the metrics and
cross-validation protocols the evaluation section uses:

* :mod:`repro.ml.tree` — CART decision tree with Gini impurity.
* :mod:`repro.ml.forest` — bagged random forest with Gini importances and
  out-of-bag scoring.
* :mod:`repro.ml.logistic` — multinomial L2 logistic regression.
* :mod:`repro.ml.naive_bayes` — Bernoulli naive Bayes with median
  binarization.
* :mod:`repro.ml.metrics` — confusion matrix, accuracy, per-class recall /
  precision (Section V-C definitions).
* :mod:`repro.ml.model_selection` — stratified splits, k-fold, and the
  leave-one-group-out protocols behind Fig. 10-12.
"""

from repro.ml.base import check_X_y, encode_labels
from repro.ml.cnn import Conv1dClassifier
from repro.ml.dtw import KnnDtwClassifier, dtw_distance
from repro.ml.hmm import GaussianHmm, HmmClassifier
from repro.ml.serialize import deserialize_model, serialize_model
from repro.ml.tree import DecisionTreeClassifier
from repro.ml.forest import RandomForestClassifier
from repro.ml.logistic import LogisticRegressionClassifier
from repro.ml.naive_bayes import BernoulliNaiveBayes
from repro.ml.metrics import (
    accuracy_score,
    confusion_matrix,
    per_class_precision,
    per_class_recall,
    classification_summary,
)
from repro.ml.model_selection import (
    train_test_split,
    StratifiedKFold,
    leave_one_group_out,
    cross_val_accuracy,
)

__all__ = [
    "check_X_y",
    "encode_labels",
    "DecisionTreeClassifier",
    "RandomForestClassifier",
    "LogisticRegressionClassifier",
    "BernoulliNaiveBayes",
    "accuracy_score",
    "confusion_matrix",
    "per_class_precision",
    "per_class_recall",
    "classification_summary",
    "train_test_split",
    "StratifiedKFold",
    "leave_one_group_out",
    "cross_val_accuracy",
    "KnnDtwClassifier",
    "dtw_distance",
    "GaussianHmm",
    "HmmClassifier",
    "Conv1dClassifier",
    "serialize_model",
    "deserialize_model",
]
