"""Gaussian hidden Markov models — the paper's second cost counterpoint.

Section IV-C2 cites HMMs alongside DTW and CNNs as accurate but
computationally heavier alternatives to the Random Forest.  This module
implements a left-to-right Gaussian-emission HMM trained per class with
Baum-Welch (EM) on 1-D sequences, plus a maximum-likelihood classifier
over a bank of them — the classic sequence-recognition recipe of the
gesture literature.

All forward/backward passes run in the log domain for numerical safety.
Sequences are z-normalized and length-normalized log-likelihoods are
compared, so classes with different typical durations compete fairly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.utils import ensure_rng

__all__ = ["GaussianHmm", "HmmClassifier"]

_LOG_EPS = -1e30


def _logsumexp(values: np.ndarray, axis: int | None = None):
    peak = np.max(values, axis=axis, keepdims=True)
    peak = np.where(np.isfinite(peak), peak, 0.0)
    out = peak + np.log(np.sum(np.exp(values - peak), axis=axis,
                               keepdims=True))
    if axis is None:
        return float(out.ravel()[0])
    return np.squeeze(out, axis=axis)


def _znorm(x: np.ndarray) -> np.ndarray:
    x = np.asarray(x, dtype=np.float64).ravel()
    std = x.std()
    if std < 1e-12:
        return np.zeros_like(x)
    return (x - x.mean()) / std


@dataclass
class GaussianHmm:
    """A left-to-right HMM with scalar Gaussian emissions.

    Parameters
    ----------
    n_states:
        Hidden states; gestures segment naturally into a handful of phases.
    n_iter:
        Baum-Welch iterations.
    min_variance:
        Variance floor for the emission Gaussians.
    random_state:
        Seed for the emission-mean initialization.
    """

    n_states: int = 5
    n_iter: int = 12
    min_variance: float = 1e-3
    random_state: int | None = 0

    log_start_: np.ndarray = field(init=False, repr=False, default=None)
    log_trans_: np.ndarray = field(init=False, repr=False, default=None)
    means_: np.ndarray = field(init=False, repr=False, default=None)
    variances_: np.ndarray = field(init=False, repr=False, default=None)

    def __post_init__(self) -> None:
        if self.n_states < 1:
            raise ValueError("n_states must be >= 1")
        if self.n_iter < 1:
            raise ValueError("n_iter must be >= 1")
        if self.min_variance <= 0:
            raise ValueError("min_variance must be positive")

    # ------------------------------------------------------------------
    def _init_params(self, sequences: list[np.ndarray]) -> None:
        rng = ensure_rng(self.random_state)
        k = self.n_states
        # left-to-right: start in state 0, move forward or stay
        start = np.full(k, 1e-4)
        start[0] = 1.0
        self.log_start_ = np.log(start / start.sum())
        trans = np.full((k, k), 1e-6)
        for i in range(k):
            trans[i, i] = 0.6
            if i + 1 < k:
                trans[i, i + 1] = 0.4
            else:
                trans[i, i] = 1.0
        self.log_trans_ = np.log(trans / trans.sum(axis=1, keepdims=True))
        # initialize means from temporal segments of the training data
        segment_means = []
        for s in range(k):
            vals = []
            for seq in sequences:
                chunk = np.array_split(seq, k)[s]
                if chunk.size:
                    vals.append(chunk.mean())
            segment_means.append(np.mean(vals) if vals else rng.normal())
        self.means_ = np.asarray(segment_means, dtype=np.float64)
        self.variances_ = np.full(k, 1.0)

    def _log_emissions(self, seq: np.ndarray) -> np.ndarray:
        diff = seq[:, None] - self.means_[None, :]
        return (-0.5 * np.log(2 * np.pi * self.variances_)[None, :]
                - 0.5 * diff * diff / self.variances_[None, :])

    def _forward(self, log_b: np.ndarray) -> np.ndarray:
        n, k = log_b.shape
        alpha = np.full((n, k), _LOG_EPS)
        alpha[0] = self.log_start_ + log_b[0]
        for t in range(1, n):
            alpha[t] = log_b[t] + _logsumexp(
                alpha[t - 1][:, None] + self.log_trans_, axis=0)
        return alpha

    def _backward(self, log_b: np.ndarray) -> np.ndarray:
        n, k = log_b.shape
        beta = np.zeros((n, k))
        for t in range(n - 2, -1, -1):
            beta[t] = _logsumexp(
                self.log_trans_ + (log_b[t + 1] + beta[t + 1])[None, :],
                axis=1)
        return beta

    # ------------------------------------------------------------------
    def fit(self, sequences) -> "GaussianHmm":
        """Baum-Welch over a list of 1-D sequences."""
        sequences = [_znorm(s) for s in sequences if np.asarray(s).size >= 2]
        if not sequences:
            raise ValueError("need at least one non-trivial sequence")
        self._init_params(sequences)
        k = self.n_states
        for _ in range(self.n_iter):
            trans_num = np.full((k, k), 1e-12)
            gamma0 = np.full(k, 1e-12)
            mean_num = np.zeros(k)
            var_num = np.zeros(k)
            gamma_sum = np.full(k, 1e-12)
            for seq in sequences:
                log_b = self._log_emissions(seq)
                alpha = self._forward(log_b)
                beta = self._backward(log_b)
                log_likelihood = _logsumexp(alpha[-1], axis=None)
                gamma = np.exp(alpha + beta - log_likelihood)
                gamma /= np.maximum(gamma.sum(axis=1, keepdims=True), 1e-300)
                gamma0 += gamma[0]
                for t in range(len(seq) - 1):
                    xi = np.exp(alpha[t][:, None] + self.log_trans_
                                + log_b[t + 1][None, :] + beta[t + 1][None, :]
                                - log_likelihood)
                    trans_num += xi
                gamma_sum += gamma.sum(axis=0)
                mean_num += gamma.T @ seq
            means = mean_num / gamma_sum
            for seq in sequences:
                log_b = self._log_emissions(seq)
                alpha = self._forward(log_b)
                beta = self._backward(log_b)
                log_likelihood = _logsumexp(alpha[-1], axis=None)
                gamma = np.exp(alpha + beta - log_likelihood)
                gamma /= np.maximum(gamma.sum(axis=1, keepdims=True), 1e-300)
                var_num += (gamma
                            * (seq[:, None] - means[None, :]) ** 2).sum(axis=0)
            self.means_ = means
            self.variances_ = np.maximum(var_num / gamma_sum,
                                         self.min_variance)
            self.log_start_ = np.log(gamma0 / gamma0.sum())
            self.log_trans_ = np.log(
                trans_num / trans_num.sum(axis=1, keepdims=True))
        return self

    def log_likelihood(self, sequence) -> float:
        """Length-normalized log-likelihood of one sequence."""
        if self.means_ is None:
            raise RuntimeError("model is not fitted; call fit() first")
        seq = _znorm(sequence)
        if seq.size < 2:
            return float("-inf")
        log_b = self._log_emissions(seq)
        alpha = self._forward(log_b)
        return float(_logsumexp(alpha[-1], axis=None)) / len(seq)


@dataclass
class HmmClassifier:
    """One Gaussian HMM per class; predict by maximum likelihood.

    Parameters
    ----------
    n_states, n_iter:
        Passed to every class model.
    """

    n_states: int = 5
    n_iter: int = 10

    models_: dict = field(init=False, repr=False, default_factory=dict)
    classes_: np.ndarray = field(init=False, repr=False, default=None)

    def fit(self, sequences, labels) -> "HmmClassifier":
        """Fit a per-class model bank."""
        if len(sequences) != len(labels):
            raise ValueError(
                f"{len(sequences)} sequences but {len(labels)} labels")
        labels = np.asarray(labels)
        self.classes_ = np.unique(labels)
        self.models_ = {}
        for label in self.classes_:
            subset = [s for s, l in zip(sequences, labels) if l == label]
            model = GaussianHmm(n_states=self.n_states, n_iter=self.n_iter)
            self.models_[label] = model.fit(subset)
        return self

    def _check_fitted(self) -> None:
        if not self.models_:
            raise RuntimeError("classifier is not fitted; call fit() first")

    def predict_one(self, sequence) -> str:
        """The maximum-likelihood class of one sequence."""
        self._check_fitted()
        scores = {label: model.log_likelihood(sequence)
                  for label, model in self.models_.items()}
        return max(scores, key=scores.get)

    def predict(self, sequences) -> np.ndarray:
        """Labels for a batch of sequences."""
        return np.asarray([self.predict_one(s) for s in sequences])

    def score(self, sequences, labels) -> float:
        """Mean accuracy."""
        return float(np.mean(self.predict(sequences) == np.asarray(labels)))
