"""Multinomial (softmax) logistic regression with L2 regularization.

Fitted by full-batch gradient descent with backtracking step control on
internally standardized features — simple, dependency-free, and accurate
enough to reproduce the paper's "LR also performs not bad" result (Fig. 9).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.ml.base import check_X, check_X_y, encode_labels

__all__ = ["LogisticRegressionClassifier"]


@dataclass
class LogisticRegressionClassifier:
    """Softmax regression.

    Parameters
    ----------
    l2:
        Ridge penalty on the weights (not the intercepts).
    max_iter:
        Gradient-descent iterations.
    tol:
        Stop when the gradient norm falls below this.
    learning_rate:
        Initial step size (adapted by backtracking).
    """

    l2: float = 1e-3
    max_iter: int = 300
    tol: float = 1e-6
    learning_rate: float = 1.0

    classes_: np.ndarray = field(init=False, repr=False, default=None)
    coef_: np.ndarray = field(init=False, repr=False, default=None)
    intercept_: np.ndarray = field(init=False, repr=False, default=None)
    n_iter_: int = field(init=False, repr=False, default=0)
    _mean: np.ndarray = field(init=False, repr=False, default=None)
    _scale: np.ndarray = field(init=False, repr=False, default=None)

    def __post_init__(self) -> None:
        if self.l2 < 0:
            raise ValueError("l2 must be non-negative")
        if self.max_iter < 1:
            raise ValueError("max_iter must be >= 1")
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be positive")

    # ------------------------------------------------------------------
    def _standardize(self, X: np.ndarray, fit: bool) -> np.ndarray:
        if fit:
            self._mean = X.mean(axis=0)
            scale = X.std(axis=0)
            scale[scale < 1e-12] = 1.0
            self._scale = scale
        return (X - self._mean) / self._scale

    @staticmethod
    def _softmax(z: np.ndarray) -> np.ndarray:
        z = z - z.max(axis=1, keepdims=True)
        e = np.exp(z)
        return e / e.sum(axis=1, keepdims=True)

    def _loss_grad(self, Xs: np.ndarray, onehot: np.ndarray,
                   w: np.ndarray, b: np.ndarray):
        n = len(Xs)
        proba = self._softmax(Xs @ w + b)
        err = (proba - onehot) / n
        grad_w = Xs.T @ err + self.l2 * w
        grad_b = err.sum(axis=0)
        loss = (-np.sum(onehot * np.log(np.maximum(proba, 1e-300))) / n
                + 0.5 * self.l2 * float(np.sum(w * w)))
        return loss, grad_w, grad_b

    def fit(self, X: np.ndarray, y: np.ndarray) -> "LogisticRegressionClassifier":
        """Fit by gradient descent with backtracking line search."""
        X, y = check_X_y(X, y)
        self.classes_, codes = encode_labels(y)
        k = len(self.classes_)
        Xs = self._standardize(X, fit=True)
        n, f = Xs.shape
        onehot = np.zeros((n, k))
        onehot[np.arange(n), codes] = 1.0
        w = np.zeros((f, k))
        b = np.zeros(k)
        step = self.learning_rate
        loss, gw, gb = self._loss_grad(Xs, onehot, w, b)
        for it in range(self.max_iter):
            gnorm = float(np.sqrt(np.sum(gw * gw) + np.sum(gb * gb)))
            if gnorm < self.tol:
                break
            # backtracking: halve the step until the loss decreases
            for _ in range(30):
                w_new = w - step * gw
                b_new = b - step * gb
                new_loss, gw_new, gb_new = self._loss_grad(Xs, onehot, w_new, b_new)
                if new_loss <= loss:
                    break
                step *= 0.5
            else:
                break
            w, b, loss, gw, gb = w_new, b_new, new_loss, gw_new, gb_new
            step *= 1.1  # gentle re-expansion
            self.n_iter_ = it + 1
        self.coef_ = w
        self.intercept_ = b
        return self

    def _check_fitted(self) -> None:
        if self.coef_ is None:
            raise RuntimeError("classifier is not fitted; call fit() first")

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Softmax class probabilities, ``(N, K)``."""
        self._check_fitted()
        X = check_X(X)
        Xs = self._standardize(X, fit=False)
        return self._softmax(Xs @ self.coef_ + self.intercept_)

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predicted labels."""
        return self.classes_[np.argmax(self.predict_proba(X), axis=1)]

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        """Mean accuracy on ``(X, y)``."""
        return float(np.mean(self.predict(X) == np.asarray(y)))
