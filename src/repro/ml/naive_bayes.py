"""Bernoulli naive Bayes with per-feature median binarization.

The paper's fourth baseline (BNB in Fig. 9).  Continuous features are
binarized at their training-set medians; class-conditional Bernoulli
parameters use Laplace smoothing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.ml.base import check_X, check_X_y, encode_labels

__all__ = ["BernoulliNaiveBayes"]


@dataclass
class BernoulliNaiveBayes:
    """Naive Bayes over median-binarized features.

    Parameters
    ----------
    alpha:
        Laplace smoothing strength.
    """

    alpha: float = 1.0

    classes_: np.ndarray = field(init=False, repr=False, default=None)
    thresholds_: np.ndarray = field(init=False, repr=False, default=None)
    log_prior_: np.ndarray = field(init=False, repr=False, default=None)
    feature_log_prob_: np.ndarray = field(init=False, repr=False, default=None)
    feature_log_prob_neg_: np.ndarray = field(init=False, repr=False, default=None)

    def __post_init__(self) -> None:
        if self.alpha <= 0:
            raise ValueError("alpha must be positive")

    def fit(self, X: np.ndarray, y: np.ndarray) -> "BernoulliNaiveBayes":
        """Estimate thresholds, priors and Bernoulli parameters."""
        X, y = check_X_y(X, y)
        self.classes_, codes = encode_labels(y)
        k = len(self.classes_)
        self.thresholds_ = np.median(X, axis=0)
        binary = (X > self.thresholds_).astype(np.float64)
        n, f = binary.shape
        counts = np.zeros(k)
        ones = np.zeros((k, f))
        for c in range(k):
            mask = codes == c
            counts[c] = mask.sum()
            ones[c] = binary[mask].sum(axis=0)
        self.log_prior_ = np.log(np.maximum(counts, 1e-300) / n)
        p = (ones + self.alpha) / (counts[:, None] + 2.0 * self.alpha)
        self.feature_log_prob_ = np.log(p)
        self.feature_log_prob_neg_ = np.log(1.0 - p)
        return self

    def _check_fitted(self) -> None:
        if self.feature_log_prob_ is None:
            raise RuntimeError("classifier is not fitted; call fit() first")

    def _joint_log_likelihood(self, X: np.ndarray) -> np.ndarray:
        X = check_X(X)
        binary = (X > self.thresholds_).astype(np.float64)
        jll = (binary @ self.feature_log_prob_.T
               + (1.0 - binary) @ self.feature_log_prob_neg_.T)
        return jll + self.log_prior_

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Posterior class probabilities, ``(N, K)``."""
        self._check_fitted()
        jll = self._joint_log_likelihood(X)
        jll -= jll.max(axis=1, keepdims=True)
        proba = np.exp(jll)
        return proba / proba.sum(axis=1, keepdims=True)

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predicted labels."""
        self._check_fitted()
        jll = self._joint_log_likelihood(X)
        return self.classes_[np.argmax(jll, axis=1)]

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        """Mean accuracy on ``(X, y)``."""
        return float(np.mean(self.predict(X) == np.asarray(y)))
