#!/usr/bin/env python
"""Power-on sensor self-test: calibration, gain trim and fault isolation.

A shipped airFinger wearable must verify its own photodiodes before it
trusts them.  This example simulates a power-on sequence:

1. capture a short idle window from the simulated sensor;
2. run :class:`~repro.core.calibration.SensorCalibrator` to estimate
   per-channel baselines, trim part-to-part sensitivity spread, and grade
   every channel's health;
3. inject two faults — a disconnected photodiode and one blinded by
   direct sunlight — and show the health check isolating them;
4. demonstrate that recognition still works on the surviving channels.

Run with::

    python examples/sensor_health_check.py
"""

from __future__ import annotations

import numpy as np

from repro import CampaignConfig, CampaignGenerator
from repro.acquisition import SensorSampler
from repro.core import AirFinger, SensorCalibrator
from repro.core.detector import DetectAimedRecognizer
from repro.core.events import GestureEvent
from repro.hand import idle_trajectory, scene_for_trajectory
from repro.noise import indoor_ambient
from repro.optics import airfinger_array


def print_health(result) -> None:
    print(f"  {'channel':<8} {'baseline':>9} {'noise RMS':>10} "
          f"{'saturated':>10} {'status':>10}")
    for h in result.health:
        print(f"  {h.name:<8} {h.baseline:>9.1f} {h.noise_rms:>10.2f} "
              f"{h.saturation_fraction:>9.1%} {h.status:>10}")
    verdict = "all channels usable" if result.all_usable \
        else "DEGRADED — see flags above"
    print(f"  => {verdict}\n")


def capture_idle(sampler, seconds: float = 4.0, seed: int = 7):
    """Record an idle window: resting hand, indoor ambient, no gestures."""
    traj = idle_trajectory(seconds, sampler.sample_rate_hz,
                           rest_position_mm=(0.0, 20.0, 45.0))
    ambient = indoor_ambient().irradiance(traj.times_s, rng=seed)
    scene = scene_for_trajectory(traj, ambient_mw_mm2=ambient, rng=seed)
    return sampler.record(scene, rng=seed)


def main() -> None:
    print("=== airFinger power-on self-test ===\n")
    sampler = SensorSampler(array=airfinger_array())

    # ------------------------------------------------------------------
    # 1-2. healthy power-on
    # ------------------------------------------------------------------
    print("[1/4] idle capture on a healthy board...")
    recording = capture_idle(sampler)
    calibrator = SensorCalibrator()
    healthy = calibrator.calibrate(recording.rss,
                                   channel_names=recording.channel_names)
    print_health(healthy)

    trimmed = healthy.apply(recording.rss)
    rms = trimmed.std(axis=0)
    print(f"  post-trim noise RMS per channel: "
          f"{np.array2string(rms, precision=2)}")
    print(f"  spread before trim: "
          f"{np.ptp(recording.rss.std(axis=0)):.2f} counts, "
          f"after: {np.ptp(rms):.2f} counts\n")

    # ------------------------------------------------------------------
    # 3. fault injection
    # ------------------------------------------------------------------
    print("[2/4] same board with P2 disconnected...")
    dead = recording.rss.copy()
    dead[:, 1] = 0.0
    print_health(calibrator.calibrate(dead,
                                      channel_names=recording.channel_names))

    print("[3/4] same board with P3 staring into direct sun...")
    blinded = recording.rss.copy()
    blinded[:, 2] = 1023.0
    print_health(calibrator.calibrate(
        blinded, channel_names=recording.channel_names))

    # ------------------------------------------------------------------
    # 4. recognition on the surviving channels
    # ------------------------------------------------------------------
    print("[4/4] recognition with one stuck photodiode...")
    generator = CampaignGenerator(CampaignConfig(
        n_users=3, n_sessions=2, repetitions=5, seed=2020))
    corpus = generator.main_campaign()
    detect_only = corpus.filter(lambda s: not s.is_track_aimed)
    detector = DetectAimedRecognizer().fit(
        detect_only.signals(), detect_only.labels)

    sequence = ["click", "circle", "double_click", "rub"]
    healthy_hits = degraded_hits = 0
    n = 0
    for user in range(3):
        stream = generator.stream(user, sequence, idle_s=1.0)
        rec = stream.recording
        truth = [name for name, _, _ in rec.meta["segments"]
                 if name in sequence]
        n += len(truth)
        for degraded in (False, True):
            fed = rec.rss.copy()
            if degraded:
                fed[:, -1] = fed[:64].mean()  # last PD stuck at idle level
            events = AirFinger(detector=detector).feed_recording(
                type(rec)(times_s=rec.times_s, rss=fed,
                          channel_names=rec.channel_names,
                          sample_rate_hz=rec.sample_rate_hz,
                          label=rec.label, meta=rec.meta))
            labels = [e.label for e in events if isinstance(e, GestureEvent)]
            hits = sum(1 for name in truth if name in labels)
            if degraded:
                degraded_hits += hits
            else:
                healthy_hits += hits
    print(f"  healthy board : {healthy_hits}/{n} gestures recognized")
    print(f"  stuck last PD : {degraded_hits}/{n} gestures recognized")
    print("\nDone: faults are isolated at power-on, and even with a stuck "
          "photodiode the\nremaining channels keep recognition usable — "
          "degradation, not failure.")


if __name__ == "__main__":
    main()
