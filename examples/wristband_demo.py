#!/usr/bin/env python
"""Wristband demo: recognition while sitting, standing and walking.

Reproduces the interaction of the paper's Section V-K in simulation: the
sensor board is worn on the wrist, so the whole scene sways with the arm.
A recognizer trained on desk-mounted data is evaluated under each wearing
condition, showing that arm sway barely dents accuracy (the paper reports
97.17% on the wristband).

Run with::

    python examples/wristband_demo.py
"""

from __future__ import annotations

import numpy as np

from repro import CampaignConfig, CampaignGenerator
from repro.core.detector import DetectAimedRecognizer
from repro.noise.motion import WRISTBAND_CONDITIONS


def main() -> None:
    print("=== wristband demo (Section V-K) ===\n")
    generator = CampaignGenerator(CampaignConfig(
        n_users=4, n_sessions=2, repetitions=4, seed=2020))

    print("[1/2] training on desk-mounted recordings...")
    train = generator.main_campaign(
        gestures=("circle", "rub", "click", "double_click"))
    detector = DetectAimedRecognizer().fit(train.signals(), train.labels)
    print(f"      {len(train)} training samples")

    print("[2/2] evaluating on worn-sensor recordings...\n")
    worn = generator.wristband_campaign(
        users=(0, 1, 2, 3), repetitions=4,
        gestures=("circle", "rub", "click", "double_click"))
    labels = worn.labels
    predictions = detector.predict(worn.signals())
    conditions = worn.conditions

    print(f"  {'condition':<12} {'accuracy':>10}   worst gesture")
    print("  " + "-" * 44)
    for condition in WRISTBAND_CONDITIONS:
        mask = conditions == condition
        correct = predictions[mask] == labels[mask]
        per_gesture = {}
        for gesture in sorted(set(labels[mask])):
            g_mask = mask & (labels == gesture)
            per_gesture[gesture] = float(
                np.mean(predictions[g_mask] == labels[g_mask]))
        worst = min(per_gesture, key=per_gesture.get)
        print(f"  {condition:<12} {np.mean(correct):>9.1%}   "
              f"{worst} ({per_gesture[worst]:.0%})")

    overall = float(np.mean(predictions == labels))
    print(f"\n  overall worn accuracy: {overall:.1%} "
          f"(paper: 97.17% across sitting/standing/walking)")
    print("\ndone.")


if __name__ == "__main__":
    main()
