#!/usr/bin/env python
"""Feature-importance exploration: how Table I was selected.

Section IV-C1 of the paper extracts a large tsfresh candidate pool, ranks
features by Random-Forest importance feedback, and keeps the 25 most useful
kinds.  This example reruns that workflow on simulated data: it extracts
the full registry, prints the family ranking, and shows how accuracy varies
with the number of selected families — the justification for the paper's
choice.

Run with::

    python examples/feature_ranking.py
"""

from __future__ import annotations

import numpy as np

from repro import CampaignConfig, CampaignGenerator, FeatureExtractor
from repro.eval.protocols import compute_features, overall_detect_performance
from repro.eval.report import format_ranking
from repro.features.selection import FeatureSelector, rank_families


def main() -> None:
    print("=== feature importance workflow (Section IV-C1) ===\n")
    generator = CampaignGenerator(CampaignConfig(
        n_users=4, n_sessions=2, repetitions=4, seed=2020))
    corpus = generator.main_campaign(
        gestures=("circle", "double_circle", "rub", "double_rub",
                  "click", "double_click"))
    print(f"collected {len(corpus)} detect-aimed samples")

    extractor = FeatureExtractor.full()
    X = compute_features(corpus, extractor)
    print(f"extracted {X.shape[1]} candidate features "
          f"({len(set(extractor.families))} Table-I families)\n")

    ranking = rank_families(X, extractor.names, extractor.families,
                            corpus.labels, n_estimators=40)
    print(format_ranking(ranking, title="Family importance ranking", top=12))

    print("\naccuracy vs number of selected families "
          "(3-fold CV, Random Forest):")
    for k in (3, 6, 10, 15, 25):
        selector = FeatureSelector(top_k_families=k, n_estimators=20)
        selector.fit(X, corpus.labels, extractor)
        Xk = selector.transform(np.asarray(X))
        res = overall_detect_performance(corpus, X=Xk, n_splits=3)
        bar = "#" * int(round(res.accuracy * 40))
        print(f"  top {k:>2} families: {res.accuracy:6.1%} {bar}")

    print("\nthe curve flattens as selection approaches the full Table-I "
          "set,\nmirroring the paper's finding that 25 kinds suffice.")
    print("\ndone.")


if __name__ == "__main__":
    main()
