#!/usr/bin/env python
"""Quickstart: train an airFinger recognizer and run it on a live stream.

This example walks the full pipeline of the paper end to end:

1. simulate a small data-collection campaign (3 users);
2. train the detect-aimed Random Forest and the gesture/non-gesture filter;
3. replay a continuous RSS stream through the real-time engine and print
   every recognition event as it happens.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import AirFinger, CampaignConfig, CampaignGenerator
from repro.core.detector import DetectAimedRecognizer
from repro.core.events import GestureEvent, ScrollUpdate, SegmentEvent
from repro.core.interference import InterferenceFilter


def main() -> None:
    print("=== airFinger quickstart ===\n")

    # ------------------------------------------------------------------
    # 1. simulated data collection (Section V-B, scaled down)
    # ------------------------------------------------------------------
    print("[1/3] collecting training data (simulated campaign)...")
    generator = CampaignGenerator(CampaignConfig(
        n_users=3, n_sessions=2, repetitions=5, seed=2020))
    corpus = generator.main_campaign()
    print(f"      {len(corpus)} labelled samples "
          f"({len(set(corpus.labels))} gestures, "
          f"{len(set(corpus.users))} users)")

    # ------------------------------------------------------------------
    # 2. train the recognition stack
    # ------------------------------------------------------------------
    print("[2/3] training the detect-aimed recognizer (Random Forest)...")
    detect_corpus = corpus.filter(lambda s: not s.is_track_aimed)
    detector = DetectAimedRecognizer().fit(
        detect_corpus.signals(), detect_corpus.labels)

    print("      training the interference filter (bold-9 features)...")
    interference = generator.interference_campaign(
        users=(0, 1, 2), sessions=(0,),
        gestures_per_session=12, nongestures_per_session=12)
    inter_filter = InterferenceFilter().fit(
        interference.signals(), [s.is_gesture for s in interference])

    # ------------------------------------------------------------------
    # 3. run the real-time engine on a fresh stream
    # ------------------------------------------------------------------
    print("[3/3] streaming a live session through the engine...\n")
    stream = generator.stream(
        user_id=1,
        gesture_sequence=["click", "circle", "scroll_up", "scratch",
                          "double_click", "scroll_down"],
        idle_s=1.0)
    truth = [name for name, _, _ in stream.recording.meta["segments"]
             if name != "idle"]
    print(f"      ground truth: {truth}\n")

    engine = AirFinger(detector=detector, interference_filter=inter_filter)
    for event in engine.feed_recording(stream.recording):
        if isinstance(event, SegmentEvent):
            print(f"  t={event.start_time_s:6.2f}s  segment "
                  f"[{event.start_index}, {event.end_index})")
        elif isinstance(event, GestureEvent):
            status = "gesture " if event.accepted else "REJECTED"
            print(f"                   -> {status} {event.label!r} "
                  f"(confidence {event.confidence:.0%})")
        elif isinstance(event, ScrollUpdate) and event.final:
            print(f"                   -> scroll {event.direction_name} "
                  f"at {event.velocity_mm_s:.0f} mm/s, "
                  f"displacement {event.displacement_mm:+.0f} mm")

    print("\ndone.")


if __name__ == "__main__":
    main()
