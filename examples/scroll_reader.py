#!/usr/bin/env python
"""News-reader scrolling demo: live finger tracking drives a scroll bar.

The paper's Section V-G demo maps track-aimed gestures onto a news page on
a tablet and asks users to rate the fluency.  This example reproduces the
interaction loop in the terminal: a simulated user scrolls up and down
through a list of headlines, the ZEBRA tracker estimates direction,
velocity and displacement in real time, and a text viewport follows.

Run with::

    python examples/scroll_reader.py
"""

from __future__ import annotations

from repro import AirFinger, CampaignConfig, CampaignGenerator
from repro.core.events import ScrollUpdate
from repro.eval.rating import ScrollObservation, rate_tracking_session

HEADLINES = [
    "NIR sensing brings micro gestures to smartwatches",
    "Photodiode arrays cheaper than ever, say suppliers",
    "Otsu thresholding: a 1979 idea that keeps on giving",
    "Random forests still competitive on embedded devices",
    "How a 3D-printed shield fixed our noise problem",
    "ZEBRA algorithm tracks fingers with two LEDs",
    "Wearables that read your thumb: privacy implications",
    "The 940 nm sweet spot: why skin reflects NIR",
    "Arduino at 100 Hz: real-time gesture pipelines",
    "From RSS to UX: mapping displacement to pixels",
    "Energy budgets of always-on optical sensing",
    "Field test: gesturing while walking works fine",
]

VIEWPORT = 4          # headlines visible at once
PIXELS_PER_MM = 0.35  # display gain: how far one millimetre scrolls


def render(offset: float) -> None:
    top = int(max(0, min(offset, len(HEADLINES) - VIEWPORT)))
    print("      +" + "-" * 56 + "+")
    for line in HEADLINES[top:top + VIEWPORT]:
        print(f"      | {line:<54} |")
    print("      +" + "-" * 56 + "+")


def main() -> None:
    print("=== scroll reader demo (Section V-G) ===\n")
    generator = CampaignGenerator(CampaignConfig(
        n_users=2, n_sessions=1, repetitions=3, seed=7))

    sequence = ["scroll_down", "scroll_down", "scroll_up", "scroll_down",
                "scroll_up", "scroll_up"]
    stream = generator.stream(user_id=0, gesture_sequence=sequence,
                              idle_s=1.2)
    segments = stream.recording.meta["segments"]
    segment_meta = stream.recording.meta["segment_meta"]
    truth = [(name, start, end, meta)
             for (name, start, end), meta in zip(segments, segment_meta)
             if name.startswith("scroll")]

    def truth_for(event: ScrollUpdate):
        """Ground-truth scroll overlapping this event's extent."""
        best, best_overlap = None, 0
        for name, start, end, meta in truth:
            overlap = (min(end, event.segment.end_index)
                       - max(start, event.segment.start_index))
            if overlap > best_overlap:
                best, best_overlap = (name, meta), overlap
        return best

    engine = AirFinger(live_update_every=4)
    offset = float(len(HEADLINES) // 2)
    observations = []
    print("starting position:")
    render(offset)

    scroll_idx = 0
    for event in engine.feed_recording(stream.recording):
        if not isinstance(event, ScrollUpdate) or not event.final:
            continue
        matched = truth_for(event)
        if matched is None:
            continue
        name, meta = matched
        scroll_idx += 1
        # scrolling up moves the viewport towards earlier headlines
        offset -= event.displacement_mm * PIXELS_PER_MM
        offset = max(0.0, min(offset, float(len(HEADLINES) - VIEWPORT)))
        print(f"\n  scroll #{scroll_idx}: tracked {event.direction_name} "
              f"at {event.velocity_mm_s:.0f} mm/s "
              f"(truth: {name} over {meta.get('travel_mm', 0):.0f} mm)")
        render(offset)

        observations.append(ScrollObservation(
            estimated_direction=event.direction,
            true_direction=+1 if name == "scroll_up" else -1,
            estimated_displacement_mm=abs(event.displacement_mm),
            true_displacement_mm=float(meta.get("travel_mm", 40.0))))

    if observations:
        rating = rate_tracking_session(observations)
        print(f"\nfluency rating: {rating['average_rating']:.1f} / 3.0 "
              f"({rating['fraction_matched']:.0%} matched scrolling; "
              f"the paper reports 2.6 / 3.0 and 90%)")
    print("\ndone.")


if __name__ == "__main__":
    main()
