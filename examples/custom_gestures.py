#!/usr/bin/env python
"""User-defined custom gestures — the paper's Section VI vision, working.

"It is an interesting option to enable user-self-defined gestures ...
customized gestures can provide more space for users to interact with
their smart devices and somehow preserve both personality and privacy."

This example invents two personal gestures that airFinger's stock set does
not contain — a slow *wave* (side-to-side above the sensor) and a *bounce*
(three quick vertical hops) — enrols each from four repetitions using DTW
template matching, and then recognizes fresh performances, including
open-set rejection of stock gestures that were never enrolled.

Run with::

    python examples/custom_gestures.py
"""

from __future__ import annotations

import numpy as np

from repro.acquisition import SensorSampler
from repro.core.config import AirFingerConfig
from repro.core.sbc import prefilter, sbc_transform
from repro.core.templates import TemplateRecognizer
from repro.hand.finger import scene_for_trajectory
from repro.hand.gestures import GestureSpec, synthesize_gesture
from repro.hand.trajectory import Trajectory
from repro.noise.ambient import indoor_ambient
from repro.optics.array import airfinger_array


def _custom_trajectory(kind: str, seed: int,
                       distance_mm: float = 20.0) -> Trajectory:
    """Hand-authored kinematics for gestures outside the stock set."""
    rng = np.random.default_rng(seed)
    rate = 100.0
    if kind == "wave":
        # two slow, wide side-to-side sweeps of the whole hand
        n = int(1.6 * rate)
        t = np.arange(n) / rate
        x = 9.0 * np.sin(2 * np.pi * 1.2 * t + rng.uniform(-0.2, 0.2))
        z = distance_mm + 1.5 * np.sin(2 * np.pi * 0.6 * t)
        positions = np.stack([x, np.zeros(n), z], axis=1)
    elif kind == "bounce":
        # three quick vertical hops
        n = int(1.1 * rate)
        t = np.arange(n) / rate
        hops = np.abs(np.sin(2 * np.pi * 2.7 * t)) ** 2
        z = distance_mm - 6.0 * hops
        positions = np.stack([np.zeros(n), np.zeros(n), z], axis=1)
    else:
        raise ValueError(kind)
    positions = positions + rng.normal(0, 0.25, positions.shape)
    return Trajectory(
        times_s=np.arange(len(positions)) / rate,
        positions_mm=positions,
        normals=np.array([0.0, 0.0, -1.0]),
        label=f"custom_{kind}")


def _capture_signal(trajectory: Trajectory, sampler: SensorSampler,
                    seed: int, config: AirFingerConfig) -> np.ndarray:
    amb = indoor_ambient().irradiance(trajectory.times_s, rng=seed)
    scene = scene_for_trajectory(trajectory, ambient_mw_mm2=amb, rng=seed)
    recording = sampler.record(scene, rng=seed)
    filtered = prefilter(recording.rss, config.prefilter_samples)
    return sbc_transform(filtered.sum(axis=1), config.sbc_window_samples)


def main() -> None:
    print("=== user-defined custom gestures (Section VI) ===\n")
    sampler = SensorSampler(array=airfinger_array())
    config = AirFingerConfig()

    recognizer = TemplateRecognizer()
    print("[1/3] enrolling two personal gestures from 4 repetitions each...")
    for kind in ("wave", "bounce"):
        signals = [
            _capture_signal(_custom_trajectory(kind, seed), sampler,
                            seed, config)
            for seed in range(4)]
        template = recognizer.enroll(kind, signals)
        print(f"      enrolled {kind!r} "
              f"(rejection distance {template.rejection_distance:.3f})")

    print("\n[2/3] recognizing fresh performances...")
    correct = total = 0
    for kind in ("wave", "bounce"):
        for seed in range(20, 28):
            signal = _capture_signal(_custom_trajectory(kind, seed),
                                     sampler, seed, config)
            name, distance = recognizer.recognize(signal)
            total += 1
            correct += name == kind
    print(f"      closed-set accuracy: {correct}/{total} "
          f"({correct / total:.0%})")

    print("\n[3/3] open-set test: stock gestures were never enrolled...")
    rejected = 0
    for seed, stock in enumerate(("circle", "rub", "click", "double_click")):
        traj = synthesize_gesture(
            GestureSpec(name=stock, distance_mm=20.0), rng=seed)
        signal = _capture_signal(traj, sampler, seed + 50, config)
        name, distance = recognizer.recognize(signal)
        verdict = "rejected" if name is None else f"matched {name!r}"
        rejected += name is None
        print(f"      {stock:<13} -> {verdict}")
    print(f"      open-set rejection: {rejected}/4")

    print("\ndone.")


if __name__ == "__main__":
    main()
