#!/usr/bin/env python
"""Hardware bridge demo: the wire protocol feeding the live engine.

`docs/TUTORIAL.md` section 3 shows how to connect a real board over a
serial port.  This example runs the exact same receive path offline: the
"board" is the simulator streaming protocol frames (with realistic chunking
and a few corrupted bytes), and the host side is byte-for-byte the code
you would run against hardware — `FrameDecoder` -> per-sample
`AirFinger.feed`.

Run with::

    python examples/hardware_bridge.py
"""

from __future__ import annotations

import numpy as np

from repro import AirFinger, CampaignConfig, CampaignGenerator
from repro.acquisition import FrameDecoder, encode_recording
from repro.acquisition.protocol import DEFAULT_QUANTUM
from repro.acquisition.stream import RssFrame
from repro.core.detector import DetectAimedRecognizer
from repro.core.events import GestureEvent, ScrollUpdate, SegmentEvent


class FakeSerialPort:
    """Replays a wire stream in irregular chunks, with line noise."""

    def __init__(self, data: bytes, seed: int = 0,
                 corrupt_every: int = 4000) -> None:
        self._data = bytearray(data)
        rng = np.random.default_rng(seed)
        for pos in range(corrupt_every, len(self._data), corrupt_every):
            self._data[pos] ^= 0xFF  # a flipped byte on the line
        self._cursor = 0
        self._rng = rng

    def read(self) -> bytes:
        """Whatever arrived since the last read (8-96 bytes)."""
        if self._cursor >= len(self._data):
            return b""
        n = int(self._rng.integers(8, 96))
        chunk = bytes(self._data[self._cursor:self._cursor + n])
        self._cursor += n
        return chunk


def main() -> None:
    print("=== hardware bridge demo (wire protocol -> live engine) ===\n")

    generator = CampaignGenerator(CampaignConfig(
        n_users=3, n_sessions=2, repetitions=4, seed=2020))

    print("[1/3] training the recognizer and interference filter...")
    corpus = generator.main_campaign(
        gestures=("circle", "click", "double_click"))
    detector = DetectAimedRecognizer().fit(corpus.signals(), corpus.labels)
    from repro.core.interference import InterferenceFilter
    inter = generator.interference_campaign(
        users=(0, 1, 2), sessions=(0,),
        gestures_per_session=12, nongestures_per_session=12)
    inter_filter = InterferenceFilter().fit(
        inter.signals(), [s.is_gesture for s in inter])

    print("[2/3] the 'board' captures a session and streams it...")
    stream = generator.stream(
        0, ["click", "scroll_up", "circle", "double_click"], idle_s=1.0)
    wire = encode_recording(stream.recording)
    port = FakeSerialPort(wire, seed=1)
    print(f"      {stream.recording.n_samples} frames -> "
          f"{len(wire)} bytes on the wire (plus injected corruption)")

    print("[3/3] host side: decode frames, feed the engine sample by "
          "sample...\n")
    decoder = FrameDecoder()
    engine = AirFinger(detector=detector, interference_filter=inter_filter)
    n_fed = 0
    while True:
        chunk = port.read()
        if not chunk:
            break
        for seq, values in decoder.push(chunk):
            frame = RssFrame(
                index=n_fed, time_s=n_fed / 100.0,
                values=tuple(v * DEFAULT_QUANTUM for v in values))
            n_fed += 1
            for event in engine.feed(frame):
                if isinstance(event, SegmentEvent):
                    print(f"  t={event.start_time_s:6.2f}s segment "
                          f"[{event.start_index}, {event.end_index})")
                elif isinstance(event, GestureEvent) and event.accepted:
                    print(f"      -> gesture {event.label!r} "
                          f"({event.confidence:.0%})")
                elif isinstance(event, ScrollUpdate) and event.final:
                    print(f"      -> {event.direction_name} at "
                          f"{event.velocity_mm_s:.0f} mm/s")
    for event in engine.flush():
        if isinstance(event, SegmentEvent):
            print(f"  t={event.start_time_s:6.2f}s segment (flush)")

    stats = decoder.stats
    print(f"\nlink health: {stats.frames_ok} frames ok, "
          f"{stats.crc_errors} CRC errors, {stats.resyncs} resyncs, "
          f"{stats.dropped_frames} dropped")
    print(f"fed {n_fed} samples "
          f"({n_fed / stream.recording.n_samples:.0%} of the capture "
          f"despite line noise)")
    print("\ndone.")


if __name__ == "__main__":
    main()
